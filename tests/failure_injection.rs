//! Failure injection: corrupted, degenerate and adversarial inputs must be
//! rejected or survived gracefully — never silently mis-learned.

use deepod_core::{DeepOdConfig, EmbeddingInit, FeatureContext, TrainOptions, Trainer};
use deepod_roadnet::{CityProfile, EdgeId, Point};
use deepod_traj::{
    DatasetBuilder, DatasetConfig, HmmMapMatcher, MapMatchConfig, MatchedTrajectory, RawGpsPoint,
    RawTrajectory, SpatioTemporalStep,
};

fn tiny_cfg() -> DeepOdConfig {
    DeepOdConfig {
        init: EmbeddingInit::Random,
        ds: 6,
        dt_dim: 6,
        d1m: 8,
        d2m: 6,
        d3m: 8,
        d4m: 6,
        d5m: 8,
        d6m: 6,
        d7m: 8,
        d9m: 8,
        dh: 8,
        dtraf: 4,
        epochs: 1,
        batch_size: 8,
        ..DeepOdConfig::default()
    }
}

#[test]
fn corrupt_trajectories_fail_validation() {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 30));
    let mut t = ds.train[0].trajectory.clone();
    // Time going backwards.
    t.path[0].exit = t.path[0].enter - 100.0;
    assert!(t.validate().is_err());

    let mut t = ds.train[0].trajectory.clone();
    // Ratio out of range.
    t.r_start = 2.0;
    assert!(t.validate().is_err());
}

#[test]
fn encoder_drops_orders_with_off_network_endpoints() {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 40));
    let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");
    let mut bad = ds.train[0].clone();
    bad.od.origin = Point::new(-1e9, -1e9);
    let encoded = ctx.encode_orders(&ds.net, &[bad]);
    assert!(
        encoded.is_empty(),
        "off-network order must be dropped, not encoded"
    );
}

#[test]
fn empty_trajectory_order_dropped_by_encoder() {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 40));
    let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");
    let mut bad = ds.train[0].clone();
    bad.trajectory = MatchedTrajectory {
        path: vec![],
        r_start: 0.0,
        r_end: 0.0,
    };
    assert!(ctx.encode_order(&ds.net, &bad).is_none());
}

#[test]
fn training_survives_extreme_labels() {
    // A handful of absurd labels (data-entry style errors) must not produce
    // NaNs or a diverged model.
    let mut ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 200));
    for o in ds.train.iter_mut().step_by(29) {
        o.travel_time = 50_000.0; // ~14 hours
    }
    let mut trainer = Trainer::new(&ds, tiny_cfg(), TrainOptions::default()).expect("trainer");
    let report = trainer.train();
    assert!(report.best_val_mae.is_finite(), "training diverged to NaN");
    let pred = trainer.predict_od(&ds.test[0].od);
    assert!(pred.unwrap_or(f32::NAN).is_finite());
}

#[test]
fn map_matcher_survives_heavy_noise_or_rejects() {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 20));
    let grid = deepod_roadnet::SpatialGrid::build(&ds.net, 250.0);
    let matcher = HmmMapMatcher::new(&ds.net, &grid, MapMatchConfig::default());
    // Garbage trace: random points far apart in space, tight in time.
    let mut rng = deepod_tensor::rng_from_seed(13);
    let (min, max) = ds.net.bounding_box();
    let points: Vec<RawGpsPoint> = (0..20)
        .map(|i| RawGpsPoint {
            pos: Point::new(
                rand::Rng::gen_range(&mut rng, min.x..max.x),
                rand::Rng::gen_range(&mut rng, min.y..max.y),
            ),
            t: i as f64 * 3.0,
        })
        .collect();
    let raw = RawTrajectory { points };
    // Either None or a structurally valid trajectory — never a panic or an
    // invalid structure.
    if let Some(m) = matcher.match_trajectory(&raw) {
        m.validate()
            .expect("matcher output must be structurally valid");
    }
}

#[test]
fn single_point_and_empty_traces_rejected() {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 10));
    let grid = deepod_roadnet::SpatialGrid::build(&ds.net, 250.0);
    let matcher = HmmMapMatcher::new(&ds.net, &grid, MapMatchConfig::default());
    assert!(matcher
        .match_trajectory(&RawTrajectory { points: vec![] })
        .is_none());
    let one = RawTrajectory {
        points: vec![RawGpsPoint {
            pos: ds.net.node(deepod_roadnet::NodeId(0)).pos,
            t: 0.0,
        }],
    };
    assert!(matcher.match_trajectory(&one).is_none());
}

#[test]
fn zero_duration_steps_tolerated_end_to_end() {
    // Degenerate steps (enter == exit) occur for tiny partial segments;
    // the whole pipeline must accept them.
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
    let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");
    let mut order = ds.train[0].clone();
    let first = order.trajectory.path[0];
    order.trajectory.path.insert(
        0,
        SpatioTemporalStep {
            edge: first.edge,
            enter: first.enter,
            exit: first.enter,
        },
    );
    let sample = ctx.encode_order(&ds.net, &order).expect("still encodable");
    let mut trainer = Trainer::new(&ds, tiny_cfg(), TrainOptions::default()).expect("trainer");
    let (loss, grads) = trainer.model().sample_gradients(&sample);
    assert!(loss.is_finite());
    assert!(!grads.is_empty());
}

#[test]
fn prediction_for_unroutable_edge_ids_out_of_range_guarded() {
    // Gather with an out-of-range edge index must panic loudly (assert),
    // not read out of bounds.
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 40));
    let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");
    let mut sample = ctx.encode_order(&ds.net, &ds.train[0]).expect("encodable");
    sample.steps[0].edge = usize::MAX;
    let mut trainer = Trainer::new(&ds, tiny_cfg(), TrainOptions::default()).expect("trainer");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        trainer.model().sample_gradients(&sample)
    }));
    assert!(result.is_err(), "out-of-range edge index must be rejected");
}

#[test]
fn line_graph_ignores_trajectories_with_unknown_transitions() {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 20));
    // A "trajectory" jumping between unrelated edges contributes nothing.
    let bogus = vec![EdgeId(0), EdgeId((ds.net.num_edges() - 1) as u32)];
    let lg =
        deepod_roadnet::LineGraph::from_trajectories(&ds.net, [bogus.as_slice()].into_iter(), 1.0);
    // Still structurally intact.
    assert_eq!(lg.num_nodes(), ds.net.num_edges());
}

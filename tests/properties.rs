//! Property-based tests over cross-crate invariants: routing optimality,
//! trajectory structure, metric identities, and time-slot arithmetic.

use deepod_eval::{mae, mape, mare, PredPair};
use deepod_roadnet::{
    dijkstra_shortest_path, CityConfig, CityProfile, EdgeId, NodeId, Point, RoadClass, RoadNetwork,
};
use proptest::prelude::*;

/// Small random road network generator for routing properties.
fn arb_network() -> impl Strategy<Value = RoadNetwork> {
    (4usize..12, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = deepod_tensor::rng_from_seed(seed);
        let mut net = RoadNetwork::new();
        let nodes: Vec<NodeId> = (0..n)
            .map(|_| {
                net.add_node(Point::new(
                    rand::Rng::gen_range(&mut rng, 0.0..5000.0),
                    rand::Rng::gen_range(&mut rng, 0.0..5000.0),
                ))
            })
            .collect();
        // Ring to guarantee strong connectivity, plus random chords.
        for i in 0..n {
            net.add_edge(nodes[i], nodes[(i + 1) % n], RoadClass::Local);
        }
        for _ in 0..n {
            let a = nodes[rand::Rng::gen_range(&mut rng, 0..n)];
            let b = nodes[rand::Rng::gen_range(&mut rng, 0..n)];
            if a != b {
                net.add_edge(a, b, RoadClass::Arterial);
            }
        }
        net
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dijkstra's triangle inequality: d(a,c) ≤ d(a,b) + d(b,c).
    #[test]
    fn routing_triangle_inequality(net in arb_network(), ai in 0usize..12, bi in 0usize..12, ci in 0usize..12) {
        let n = net.num_nodes();
        let (a, b, c) = (NodeId((ai % n) as u32), NodeId((bi % n) as u32), NodeId((ci % n) as u32));
        let d = |x, y| dijkstra_shortest_path(&net, x, y, |e| net.edge(e).length).map(|p| p.cost);
        if let (Ok(ab), Ok(bc), Ok(ac)) = (d(a, b), d(b, c), d(a, c)) {
            prop_assert!(ac <= ab + bc + 1e-6, "ac {ac} > ab {ab} + bc {bc}");
        }
    }

    /// A route's reported cost equals the sum of its edge lengths, and the
    /// edges are consecutive.
    #[test]
    fn route_cost_consistent(net in arb_network(), ai in 0usize..12, bi in 0usize..12) {
        let n = net.num_nodes();
        let (a, b) = (NodeId((ai % n) as u32), NodeId((bi % n) as u32));
        if let Ok(p) = dijkstra_shortest_path(&net, a, b, |e| net.edge(e).length) {
            let sum: f64 = p.edges.iter().map(|&e| net.edge(e).length).sum();
            prop_assert!((sum - p.cost).abs() < 1e-6);
            for w in p.edges.windows(2) {
                prop_assert!(net.edges_are_consecutive(w[0], w[1]));
            }
            if let Some(first) = p.edges.first() {
                prop_assert_eq!(net.edge(*first).from, a);
            }
            if let Some(last) = p.edges.last() {
                prop_assert_eq!(net.edge(*last).to, b);
            }
        }
    }

    /// Metric identities: MAE scales linearly; MAPE/MARE are
    /// scale-invariant under proportional scaling of both columns.
    #[test]
    fn metric_scaling_identities(
        base in proptest::collection::vec((50.0f32..2000.0, -0.5f32..0.5), 3..40),
        k in 0.5f32..4.0,
    ) {
        let pairs: Vec<PredPair> = base
            .iter()
            .map(|&(y, rel)| PredPair { actual: y, predicted: y * (1.0 + rel) })
            .collect();
        let scaled: Vec<PredPair> = pairs
            .iter()
            .map(|p| PredPair { actual: p.actual * k, predicted: p.predicted * k })
            .collect();
        // Actuals are drawn from [50, 2000), so none of these can hit the
        // typed empty-set / degenerate-denominator errors.
        let mae_base = mae(&pairs).unwrap();
        prop_assert!((mae(&scaled).unwrap() - k * mae_base).abs() <= 1e-2 * mae_base.max(1.0));
        prop_assert!((mape(&scaled).unwrap() - mape(&pairs).unwrap()).abs() < 1e-4);
        prop_assert!((mare(&scaled).unwrap() - mare(&pairs).unwrap()).abs() < 1e-4);
        // MARE ≤ max APE and ≥ min APE.
        let apes: Vec<f32> = pairs.iter().map(|p| p.ape()).collect();
        let max_ape = apes.iter().cloned().fold(0.0f32, f32::max);
        prop_assert!(mare(&pairs).unwrap() <= max_ape + 1e-5);
    }

    /// Spatial grid: the nearest edge returned is genuinely the nearest
    /// among all edges (brute force cross-check).
    #[test]
    fn nearest_edge_is_truly_nearest(seed in any::<u64>(), qx in 0.0f64..4000.0, qy in 0.0f64..4000.0) {
        let mut cfg = CityConfig::profile(CityProfile::SynthChengdu);
        cfg.grid_x = 5;
        cfg.grid_y = 5;
        cfg.seed = seed;
        let net = cfg.generate();
        let grid = deepod_roadnet::SpatialGrid::build(&net, 200.0);
        let q = Point::new(qx, qy);
        if let Some((id, pr)) = grid.nearest_edge(&net, &q, 800.0) {
            // Brute-force check.
            let mut best = f64::INFINITY;
            for i in 0..net.num_edges() {
                let e = net.edge(EdgeId(i as u32));
                let a = net.node(e.from).pos;
                let b = net.node(e.to).pos;
                let d = Point::dist(
                    &q,
                    &{
                        // inline projection
                        let (abx, aby) = (b.x - a.x, b.y - a.y);
                        let len2 = abx * abx + aby * aby;
                        let t = if len2 <= f64::EPSILON { 0.0 } else {
                            (((q.x - a.x) * abx + (q.y - a.y) * aby) / len2).clamp(0.0, 1.0)
                        };
                        a.lerp(&b, t)
                    },
                );
                best = best.min(d);
            }
            prop_assert!((pr.distance - best).abs() < 1e-6, "grid {:?} dist {} vs brute {}", id, pr.distance, best);
        }
    }
}

#[test]
fn simulated_trajectory_times_strictly_increase() {
    use deepod_traj::{DatasetBuilder, DatasetConfig};
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
    for o in ds.train.iter().chain(&ds.test) {
        let mut prev_exit = f64::NEG_INFINITY;
        for s in &o.trajectory.path {
            assert!(s.enter >= prev_exit - 1e-9, "overlapping intervals");
            assert!(s.exit >= s.enter);
            prev_exit = s.exit;
        }
    }
}

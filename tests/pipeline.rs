//! Cross-crate integration: city generation → traffic → simulation → GPS →
//! map matching → feature encoding, exercising every substrate together.

use deepod_core::{FeatureContext, TimeSlots};
use deepod_roadnet::{CityConfig, CityProfile, SpatialGrid};
use deepod_traj::{
    sample_gps, DatasetBuilder, DatasetConfig, GpsNoise, HmmMapMatcher, MapMatchConfig,
};

#[test]
fn full_data_pipeline_produces_consistent_dataset() {
    let cfg = DatasetConfig::for_profile(CityProfile::SynthChengdu, 150);
    let ds = DatasetBuilder::build(&cfg);

    // Dataset invariants.
    assert!(ds.train.len() + ds.validation.len() + ds.test.len() >= 120);
    for split in [&ds.train, &ds.validation, &ds.test] {
        for o in split.iter() {
            o.trajectory
                .validate()
                .expect("invalid trajectory in dataset");
            // Travel time consistent with its own path.
            assert!((o.trajectory.travel_time() - o.travel_time).abs() < 1e-6);
            // Path edges belong to the network.
            for e in o.trajectory.edges() {
                assert!(e.idx() < ds.net.num_edges());
            }
        }
    }

    // Feature encoding over the whole dataset.
    let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");
    let train_enc = ctx.encode_orders(&ds.net, &ds.train);
    assert!(train_enc.len() * 10 >= ds.train.len() * 9);

    // Slot nodes round-trip through the shared discretization.
    let slots = TimeSlots::new(0.0, 300.0).expect("valid slot size");
    for (enc, raw) in train_enc.iter().zip(&ds.train) {
        assert_eq!(enc.od.depart_node, slots.week_node_of(raw.od.depart));
    }
}

#[test]
fn map_matching_recovers_simulated_paths_end_to_end() {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 30));
    let grid = SpatialGrid::build(&ds.net, 250.0);
    let matcher = HmmMapMatcher::new(&ds.net, &grid, MapMatchConfig::default());
    let mut rng = deepod_tensor::rng_from_seed(99);

    let mut matched = 0;
    let mut tried = 0;
    for order in ds.train.iter().take(10) {
        tried += 1;
        let raw = sample_gps(
            &ds.net,
            &order.trajectory,
            3.0,
            GpsNoise { sigma: 6.0 },
            &mut rng,
        );
        if let Some(m) = matcher.match_trajectory(&raw) {
            matched += 1;
            m.validate().expect("matched trajectory invalid");
            // Duration recovered within one GPS period.
            assert!((m.travel_time() - order.travel_time).abs() <= 3.0 + 1e-6);
        }
    }
    assert!(matched * 4 >= tried * 3, "only {matched}/{tried} matched");
}

#[test]
fn beijing_profile_differs_structurally() {
    let crn = CityConfig::profile(CityProfile::SynthChengdu).generate();
    let brn = CityConfig::profile(CityProfile::SynthBeijing).generate();
    assert!(brn.num_edges() > crn.num_edges() * 2);
    assert!(brn.total_length() > crn.total_length() * 2.0);
}

#[test]
fn speed_matrices_reflect_congestion() {
    // The traffic-condition feature should show lower speeds at rush hour
    // than overnight, averaged over the grid.
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 400));
    let ctx = FeatureContext::build(&ds, 300.0).expect("valid slot size");

    // Use encoded orders' speed matrices, averaged over ALL weekday
    // rush-hour vs overnight departures — each order's matrix covers its
    // own OD region, so a single pair would confound location with time
    // of day.
    let enc = ctx.encode_orders(&ds.net, &ds.train);
    let day = 86_400.0;
    let mut rush = Vec::new();
    let mut night = Vec::new();
    for (e, o) in enc.iter().zip(&ds.train) {
        let dow = ((o.od.depart / day) as usize) % 7;
        let hour = (o.od.depart % day) / 3600.0;
        // Evening rush: the window with the most probe data (and the
        // simulator's strongest congestion) — the morning peak is too
        // thinly observed at this dataset size to be a stable signal.
        if dow < 5 && (16.5..19.0).contains(&hour) {
            rush.push(e.od.speed_matrix.mean());
        }
        if (2.0..5.0).contains(&hour) {
            night.push(e.od.speed_matrix.mean());
        }
    }
    if !rush.is_empty() && !night.is_empty() {
        let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            avg(&night) > avg(&rush),
            "overnight speeds {:.2} (n={}) should exceed rush speeds {:.2} (n={})",
            avg(&night),
            night.len(),
            avg(&rush),
            rush.len()
        );
    }
}

//! End-to-end model quality: DeepOD must train, predict, beat the
//! trivial mean predictor, and its headline ablation (the trajectory
//! encoder) must matter. These are the repository's "does the paper's
//! story hold" smoke tests; the bench binaries run the full-scale
//! versions.

use deepod_core::{DeepOdConfig, EmbeddingInit, TrainOptions, Trainer, Variant};
use deepod_eval::{mae, Metrics, PredPair};
use deepod_roadnet::CityProfile;
use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};

/// The validated tuned recipe (same dims as `deepod_bench::tuned_config`),
/// scaled to a few-minute test run.
fn small_cfg() -> DeepOdConfig {
    DeepOdConfig {
        init: EmbeddingInit::Node2Vec,
        ds: 32,
        dt_dim: 16,
        d1m: 32,
        d2m: 16,
        d3m: 32,
        d4m: 32,
        d5m: 16,
        d6m: 8,
        d7m: 64,
        d9m: 64,
        dh: 32,
        dtraf: 8,
        epochs: 10,
        batch_size: 16,
        loss_weight: 0.3,
        stcode_supervision: false, // headline recipe (DESIGN.md §2.1 item 7)
        ..DeepOdConfig::default()
    }
}

fn test_pairs(trainer: &mut Trainer, ds: &CityDataset) -> Vec<PredPair> {
    trainer
        .predict_orders(&ds.test)
        .into_iter()
        .zip(&ds.test)
        .filter_map(|(p, o)| {
            p.map(|pred| PredPair {
                actual: o.travel_time as f32,
                predicted: pred,
            })
        })
        .collect()
}

#[test]
fn deepod_beats_mean_predictor() {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 800));
    let mut trainer = Trainer::new(&ds, small_cfg(), TrainOptions::default()).expect("trainer");
    trainer.train();
    let pairs = test_pairs(&mut trainer, &ds);
    assert!(!pairs.is_empty());

    let mean_y = ds.mean_train_travel_time() as f32;
    let mean_pairs: Vec<PredPair> = pairs
        .iter()
        .map(|p| PredPair {
            actual: p.actual,
            predicted: mean_y,
        })
        .collect();
    let m_model = mae(&pairs).expect("non-empty pairs");
    let m_mean = mae(&mean_pairs).expect("non-empty pairs");
    assert!(
        m_model < m_mean * 0.9,
        "DeepOD MAE {m_model:.1} should clearly beat the mean predictor {m_mean:.1}"
    );

    let metrics = Metrics::from_pairs(&pairs).expect("non-empty pairs");
    assert!(metrics.mape_pct > 0.0 && metrics.mape_pct < 100.0);
    assert!(metrics.mare_pct > 0.0 && metrics.mare_pct < 100.0);
}

#[test]
fn predictions_respond_to_departure_time() {
    // The Fig. 1 story: same OD pair, rush hour vs overnight, the trained
    // model should predict a longer time at rush hour for a cross-town
    // weekday trip.
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 800));
    let mut trainer = Trainer::new(&ds, small_cfg(), TrainOptions::default()).expect("trainer");
    trainer.train();

    // Take several longish test trips and compare the same OD at 8 am vs
    // 3 am on the same weekday; require the majority to go the right way.
    let day = 86_400.0;
    let mut right = 0;
    let mut total = 0;
    let longish: Vec<_> = ds
        .test
        .iter()
        .filter(|o| o.travel_time > ds.mean_train_travel_time())
        .take(12)
        .cloned()
        .collect();
    for o in &longish {
        let base_day = (o.od.depart / day).floor();
        // Force a Tuesday within the test window to dodge weekends.
        let mut rush = o.od;
        rush.depart = base_day * day + 8.25 * 3600.0;
        let mut night = rush;
        night.depart = base_day * day + 3.0 * 3600.0;
        let model = trainer.model();
        // (context borrows handled through trainer helper)
        let _ = model;
        let p_rush = trainer.predict_od(&rush);
        let p_night = trainer.predict_od(&night);
        if let (Some(r), Some(n)) = (p_rush, p_night) {
            total += 1;
            if r > n {
                right += 1;
            }
        }
    }
    assert!(total >= 6, "not enough comparable trips");
    assert!(
        right * 3 >= total * 2,
        "only {right}/{total} trips predicted slower at rush hour"
    );
}

#[test]
fn trajectory_ablation_changes_the_model() {
    // N-st removes the paper's central mechanism; with the same budget the
    // full model should not be worse (Table 4's key comparison, relaxed to
    // "not worse" at this tiny scale to stay robust).
    // 1100 orders: the trajectory branch needs more trips than the other
    // end-to-end tests to converge; below ~1k its extra capacity is still
    // underfit and the comparison is dominated by noise.
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 1100));

    let full_cfg = small_cfg();
    let mut full = Trainer::new(&ds, full_cfg, TrainOptions::default()).expect("trainer");
    full.train();
    let full_mae = mae(&test_pairs(&mut full, &ds)).expect("non-empty pairs");

    let mut nst_cfg = small_cfg();
    nst_cfg.variant = Variant::NoTrajectory;
    let mut nst = Trainer::new(&ds, nst_cfg, TrainOptions::default()).expect("trainer");
    nst.train();
    let nst_mae = mae(&test_pairs(&mut nst, &ds)).expect("non-empty pairs");

    assert!(full_mae.is_finite() && nst_mae.is_finite());
    // Allow 15 % tolerance: at this scale the signal is noisy, but the full
    // model must not collapse relative to N-st.
    assert!(
        full_mae <= nst_mae * 1.15,
        "full model {full_mae:.1} much worse than N-st {nst_mae:.1}"
    );
}

#[test]
fn model_survives_serde_round_trip_after_training() {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 120));
    let mut cfg = small_cfg();
    cfg.epochs = 1;
    let mut trainer = Trainer::new(&ds, cfg, TrainOptions::default()).expect("trainer");
    trainer.train();

    let od = ds.test.first().unwrap_or(&ds.train[0]).od;
    let before = trainer.predict_od(&od);
    let json = trainer.model().save_json().expect("serializable model");
    let loaded = deepod_core::DeepOdModel::load_json(&json).unwrap();
    let (ctx, net) = trainer.context();
    let after = loaded
        .estimate_batch(ctx, net, &[deepod_core::PredictRequest::Raw(od)], 1)
        .remove(0)
        .ok()
        .map(|resp| resp.eta_seconds);
    assert_eq!(before, after);
}

//! City-scale dataset assembly: orders simulated across a multi-week
//! horizon, split chronologically train/validation/test with the paper's
//! 42:7:12 day ratio (§6.1: 6 weeks train, 1 week validation, ~12 days
//! test).

use crate::simulate::{OrderSimulator, SimConfig};
use crate::types::TaxiOrder;
use deepod_roadnet::{CityConfig, CityProfile, RoadNetwork};
use deepod_traffic::{
    CongestionModel, IncidentModel, TrafficModel, WeatherProcess, SECONDS_PER_DAY,
};
use serde::{Deserialize, Serialize};

/// Which split a record belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Split {
    /// Training days (with trajectories).
    Train,
    /// Validation days (hyper-parameter tuning).
    Validation,
    /// Test days (trajectories withheld at prediction time).
    Test,
}

/// Parameters of a full city dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// City profile to generate.
    pub profile: CityProfile,
    /// Total number of orders.
    pub num_orders: usize,
    /// Days of train data.
    pub train_days: usize,
    /// Days of validation data.
    pub val_days: usize,
    /// Days of test data.
    pub test_days: usize,
    /// Simulator parameters.
    pub sim: SimConfig,
    /// Average traffic incidents per day (0 = none); incidents are the
    /// unpredictable traffic component only observable through the live
    /// speed matrices.
    pub incidents_per_day: f64,
}

impl DatasetConfig {
    /// A laptop-scale config for a profile, mirroring the paper's relative
    /// dataset sizes (Chengdu densest, Beijing most orders and the sparsest
    /// GPS sampling) while keeping wall-clock time per experiment small.
    pub fn for_profile(profile: CityProfile, num_orders: usize) -> Self {
        let mut sim = SimConfig::default();
        match profile {
            CityProfile::SynthChengdu => {
                sim.gps_period = 3.0;
                sim.seed = 0x0C4E;
            }
            CityProfile::SynthXian => {
                sim.gps_period = 3.0;
                sim.seed = 0x071A;
                sim.num_hotspots = 5;
            }
            CityProfile::SynthBeijing => {
                sim.gps_period = 60.0;
                sim.seed = 0x0BE1;
                sim.num_hotspots = 9;
                sim.min_trip_dist = 1500.0; // Beijing trips are longer
            }
        }
        // Paper ratio 42:7:12 compressed to 14 days + 3 + 4 by default to
        // keep simulation cheap; the ratio is preserved approximately and
        // configurable.
        DatasetConfig {
            profile,
            num_orders,
            train_days: 14,
            val_days: 3,
            test_days: 4,
            sim,
            incidents_per_day: 6.0,
        }
    }

    /// The paper's exact 42:7:12 day split.
    pub fn with_paper_days(mut self) -> Self {
        self.train_days = 42;
        self.val_days = 7;
        self.test_days = 12;
        self
    }
}

/// A fully materialized city dataset.
pub struct CityDataset {
    /// The road network.
    pub net: RoadNetwork,
    /// Ground-truth traffic (kept for evaluation and speed matrices).
    pub traffic: TrafficModel,
    /// Train orders (chronologically first).
    pub train: Vec<TaxiOrder>,
    /// Validation orders.
    pub validation: Vec<TaxiOrder>,
    /// Test orders.
    pub test: Vec<TaxiOrder>,
    /// The config that produced this dataset.
    pub config: DatasetConfig,
}

impl CityDataset {
    /// Total horizon in seconds.
    pub fn horizon(&self) -> f64 {
        (self.config.train_days + self.config.val_days + self.config.test_days) as f64
            * SECONDS_PER_DAY
    }

    /// All orders of one split.
    pub fn split(&self, s: Split) -> &[TaxiOrder] {
        match s {
            Split::Train => &self.train,
            Split::Validation => &self.validation,
            Split::Test => &self.test,
        }
    }

    /// Mean travel time of the training split (baseline sanity metric).
    pub fn mean_train_travel_time(&self) -> f64 {
        if self.train.is_empty() {
            return 0.0;
        }
        self.train.iter().map(|o| o.travel_time).sum::<f64>() / self.train.len() as f64
    }
}

/// Builds [`CityDataset`]s.
pub struct DatasetBuilder;

impl DatasetBuilder {
    /// Generates the network, traffic model and orders for `cfg`,
    /// splitting chronologically by departure day.
    pub fn build(cfg: &DatasetConfig) -> CityDataset {
        let net = CityConfig::profile(cfg.profile).generate();
        let total_days = cfg.train_days + cfg.val_days + cfg.test_days;
        let horizon = total_days as f64 * SECONDS_PER_DAY;

        let mut rng = deepod_tensor::rng_from_seed(cfg.sim.seed ^ 0xA5A5_5A5A);
        let weather = WeatherProcess::sample(horizon + SECONDS_PER_DAY, 1800.0, &mut rng);
        let incidents = if cfg.incidents_per_day > 0.0 {
            IncidentModel::sample(&net, horizon, cfg.incidents_per_day, &mut rng)
        } else {
            IncidentModel::none()
        };
        let traffic = TrafficModel::new(&net, CongestionModel::default(), weather, &mut rng)
            .with_incidents(incidents);

        let mut sim = OrderSimulator::new(&net, &traffic, cfg.sim.clone());
        let mut orders = sim.simulate_orders(cfg.num_orders, 0.0, total_days);
        orders.sort_by(|a, b| a.od.depart.total_cmp(&b.od.depart));

        let train_end = cfg.train_days as f64 * SECONDS_PER_DAY;
        let val_end = (cfg.train_days + cfg.val_days) as f64 * SECONDS_PER_DAY;
        let mut train = Vec::new();
        let mut validation = Vec::new();
        let mut test = Vec::new();
        for o in orders {
            if o.od.depart < train_end {
                train.push(o);
            } else if o.od.depart < val_end {
                validation.push(o);
            } else {
                test.push(o);
            }
        }

        CityDataset {
            net,
            traffic,
            train,
            validation,
            test,
            config: cfg.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_chronological_splits() {
        let cfg = DatasetConfig::for_profile(CityProfile::SynthChengdu, 120);
        let ds = DatasetBuilder::build(&cfg);
        assert!(ds.train.len() > ds.validation.len());
        assert!(ds.train.len() > ds.test.len());
        assert!(!ds.validation.is_empty());
        assert!(!ds.test.is_empty());

        let train_end = cfg.train_days as f64 * SECONDS_PER_DAY;
        assert!(ds.train.iter().all(|o| o.od.depart < train_end));
        let val_end = (cfg.train_days + cfg.val_days) as f64 * SECONDS_PER_DAY;
        assert!(ds
            .validation
            .iter()
            .all(|o| (train_end..val_end).contains(&o.od.depart)));
        assert!(ds.test.iter().all(|o| o.od.depart >= val_end));
    }

    #[test]
    fn split_accessor_consistent() {
        let cfg = DatasetConfig::for_profile(CityProfile::SynthChengdu, 60);
        let ds = DatasetBuilder::build(&cfg);
        assert_eq!(ds.split(Split::Train).len(), ds.train.len());
        assert_eq!(ds.split(Split::Validation).len(), ds.validation.len());
        assert_eq!(ds.split(Split::Test).len(), ds.test.len());
    }

    #[test]
    fn paper_day_ratio_builder() {
        let cfg = DatasetConfig::for_profile(CityProfile::SynthXian, 10).with_paper_days();
        assert_eq!((cfg.train_days, cfg.val_days, cfg.test_days), (42, 7, 12));
    }

    #[test]
    fn beijing_profile_sparser_gps_and_longer_trips() {
        let c = DatasetConfig::for_profile(CityProfile::SynthChengdu, 10);
        let b = DatasetConfig::for_profile(CityProfile::SynthBeijing, 10);
        assert!(b.sim.gps_period > c.sim.gps_period);
        assert!(b.sim.min_trip_dist > c.sim.min_trip_dist);
    }

    #[test]
    fn mean_travel_time_positive() {
        let cfg = DatasetConfig::for_profile(CityProfile::SynthChengdu, 50);
        let ds = DatasetBuilder::build(&cfg);
        assert!(ds.mean_train_travel_time() > 30.0);
    }
}

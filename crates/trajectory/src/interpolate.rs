//! Linear interpolation of per-segment entry/exit timestamps from a raw
//! GPS trace, as prescribed in §2: "we use the linear interpolation
//! technique to calculate t_i[1] and t_i[-1]".
//!
//! Given the matched edge sequence and the raw points (each point assigned
//! to an edge by the matcher), the boundary crossing time between two
//! consecutive edges is interpolated from the surrounding fixes in
//! proportion to distance traveled.

use crate::types::{RawTrajectory, SpatioTemporalStep};
use deepod_roadnet::{EdgeId, RoadNetwork};

/// Builds the spatio-temporal path from a matched edge sequence and the
/// per-point edge assignment produced by the map matcher.
///
/// `assignment[i]` is the index into `edges` of the edge GPS point `i` was
/// matched to; assignments must be non-decreasing (the Viterbi path is).
pub fn interpolate_intervals(
    net: &RoadNetwork,
    raw: &RawTrajectory,
    edges: &[EdgeId],
    assignment: &[usize],
) -> Vec<SpatioTemporalStep> {
    assert_eq!(
        raw.points.len(),
        assignment.len(),
        "assignment length mismatch"
    );
    assert!(!edges.is_empty(), "empty edge sequence");
    debug_assert!(
        assignment.windows(2).all(|w| w[0] <= w[1]),
        "assignment not monotone"
    );

    let t_start = raw.points.first().map(|p| p.t).unwrap_or(0.0);
    let t_end = raw.points.last().map(|p| p.t).unwrap_or(0.0);

    // Boundary k sits between edges[k] and edges[k+1]. Find, for each
    // boundary, the last point on an edge ≤ k and the first point on an
    // edge > k, then interpolate the crossing time by the distance from
    // each point to the shared vertex.
    let mut boundaries = Vec::with_capacity(edges.len().saturating_sub(1));
    for k in 0..edges.len() - 1 {
        let before = assignment.iter().rposition(|&a| a <= k);
        let after = assignment.iter().position(|&a| a > k);
        let t = match (before, after) {
            (Some(bi), Some(ai)) => {
                let pb = &raw.points[bi];
                let pa = &raw.points[ai];
                // Shared vertex between edge k and k+1.
                let v = net.node(net.edge(edges[k]).to).pos;
                let db = pb.pos.dist(&v);
                let da = pa.pos.dist(&v);
                if db + da < 1e-9 {
                    0.5 * (pb.t + pa.t)
                } else {
                    pb.t + (pa.t - pb.t) * db / (db + da)
                }
            }
            // Degenerate traces (all points on one side): spread uniformly.
            _ => t_start + (t_end - t_start) * (k + 1) as f64 / edges.len() as f64,
        };
        boundaries.push(t);
    }

    // Enforce monotonicity (noise can locally invert interpolations).
    let mut prev = t_start;
    for b in &mut boundaries {
        if *b < prev {
            *b = prev;
        }
        if *b > t_end {
            *b = t_end;
        }
        prev = *b;
    }

    let mut steps = Vec::with_capacity(edges.len());
    let mut enter = t_start;
    for (k, &e) in edges.iter().enumerate() {
        let exit = if k < boundaries.len() {
            boundaries[k]
        } else {
            t_end
        };
        steps.push(SpatioTemporalStep {
            edge: e,
            enter,
            exit,
        });
        enter = exit;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RawGpsPoint;
    use deepod_roadnet::{Point, RoadClass, RoadNetwork};

    /// Two 100 m edges in a straight line along x.
    fn line_net() -> (RoadNetwork, Vec<EdgeId>) {
        let mut g = RoadNetwork::new();
        let a = g.add_node(Point::new(0.0, 0.0));
        let b = g.add_node(Point::new(100.0, 0.0));
        let c = g.add_node(Point::new(200.0, 0.0));
        let e0 = g.add_edge(a, b, RoadClass::Local);
        let e1 = g.add_edge(b, c, RoadClass::Local);
        (g, vec![e0, e1])
    }

    fn pt(x: f64, t: f64) -> RawGpsPoint {
        RawGpsPoint {
            pos: Point::new(x, 0.0),
            t,
        }
    }

    #[test]
    fn midpoint_crossing_interpolated() {
        let (net, edges) = line_net();
        // Points at x = 50 (t=0, edge 0) and x = 150 (t=10, edge 1): the
        // boundary at x = 100 is equidistant → crossing at t = 5.
        let raw = RawTrajectory {
            points: vec![pt(50.0, 0.0), pt(150.0, 10.0)],
        };
        let steps = interpolate_intervals(&net, &raw, &edges, &[0, 1]);
        assert_eq!(steps.len(), 2);
        assert!((steps[0].exit - 5.0).abs() < 1e-9);
        assert_eq!(steps[0].enter, 0.0);
        assert_eq!(steps[1].exit, 10.0);
        assert_eq!(steps[1].enter, steps[0].exit);
    }

    #[test]
    fn asymmetric_crossing() {
        let (net, edges) = line_net();
        // Point at x = 90 (10 m before boundary) and x = 130 (30 m after):
        // crossing at t = 0 + 10/(10+30) * 8 = 2.
        let raw = RawTrajectory {
            points: vec![pt(90.0, 0.0), pt(130.0, 8.0)],
        };
        let steps = interpolate_intervals(&net, &raw, &edges, &[0, 1]);
        assert!((steps[0].exit - 2.0).abs() < 1e-9);
    }

    #[test]
    fn many_points_per_edge() {
        let (net, edges) = line_net();
        let raw = RawTrajectory {
            points: vec![
                pt(10.0, 0.0),
                pt(60.0, 4.0),
                pt(95.0, 8.0),
                pt(110.0, 10.0),
                pt(190.0, 20.0),
            ],
        };
        let steps = interpolate_intervals(&net, &raw, &edges, &[0, 0, 0, 1, 1]);
        // Crossing between t=8 (5 m away) and t=10 (10 m away): 8 + 2*5/15.
        assert!((steps[0].exit - (8.0 + 2.0 * 5.0 / 15.0)).abs() < 1e-9);
        assert_eq!(steps[1].exit, 20.0);
    }

    #[test]
    fn degenerate_all_points_on_first_edge() {
        let (net, edges) = line_net();
        let raw = RawTrajectory {
            points: vec![pt(10.0, 0.0), pt(50.0, 10.0)],
        };
        let steps = interpolate_intervals(&net, &raw, &edges, &[0, 0]);
        assert_eq!(steps.len(), 2);
        // Uniform fallback puts the boundary mid-trace.
        assert!((steps[0].exit - 5.0).abs() < 1e-9);
        // Intervals remain contiguous and monotone.
        assert!(steps[0].exit <= steps[1].exit);
    }

    #[test]
    fn monotonicity_enforced_under_noise() {
        let (net, edges) = line_net();
        // Badly noisy: second point apparently *behind* the first.
        let raw = RawTrajectory {
            points: vec![pt(99.0, 0.0), pt(101.0, 0.1), pt(190.0, 20.0)],
        };
        let steps = interpolate_intervals(&net, &raw, &edges, &[0, 1, 1]);
        assert!(steps[0].exit >= steps[0].enter);
        assert!(steps[1].exit >= steps[1].enter);
    }
}

//! Core data types mirroring §2 of the paper: raw trajectories,
//! spatio-temporal paths, position ratios, OD inputs and taxi orders.

use deepod_roadnet::{EdgeId, Point};
use deepod_traffic::WeatherType;
use serde::{Deserialize, Serialize};

/// One raw GPS fix: position plus timestamp (seconds in the city epoch).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RawGpsPoint {
    /// Planar position.
    pub pos: Point,
    /// Timestamp in seconds.
    pub t: f64,
}

/// A raw trajectory: the GPS point sequence of one trip.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RawTrajectory {
    /// GPS fixes in time order.
    pub points: Vec<RawGpsPoint>,
}

impl RawTrajectory {
    /// Trip duration in seconds (0 for < 2 points).
    pub fn duration(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Sum of straight-line distances between consecutive fixes.
    pub fn approx_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].pos.dist(&w[1].pos))
            .sum()
    }
}

/// One element of a spatio-temporal path: a road segment and the time
/// interval `[t[1], t[-1]]` during which the trip occupied it (Def. 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpatioTemporalStep {
    /// The road segment.
    pub edge: EdgeId,
    /// Entry timestamp.
    pub enter: f64,
    /// Exit timestamp.
    pub exit: f64,
}

impl SpatioTemporalStep {
    /// Occupancy duration on this segment.
    pub fn duration(&self) -> f64 {
        self.exit - self.enter
    }
}

/// A trajectory matched to the road network: a spatio-temporal path plus
/// the two position ratios `⟨r[1], r[-1]⟩` locating the true origin and
/// destination within the first and last segment (Def. 1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MatchedTrajectory {
    /// The spatio-temporal path SP.
    pub path: Vec<SpatioTemporalStep>,
    /// Position ratio of the origin on the first segment.
    pub r_start: f64,
    /// Position ratio of the destination on the last segment (measured from
    /// the far end, as in the paper: `|g[-1] → v⁻¹₋₁| / |segment|`).
    pub r_end: f64,
}

impl MatchedTrajectory {
    /// The edge sequence of the path.
    pub fn edges(&self) -> Vec<EdgeId> {
        self.path.iter().map(|s| s.edge).collect()
    }

    /// Total travel time: last exit minus first entry.
    pub fn travel_time(&self) -> f64 {
        match (self.path.first(), self.path.last()) {
            (Some(a), Some(b)) => b.exit - a.enter,
            _ => 0.0,
        }
    }

    /// Checks structural invariants: non-empty, time-monotone, contiguous
    /// intervals, ratios in [0, 1]. Returns a description of the first
    /// violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.path.is_empty() {
            return Err("empty spatio-temporal path".into());
        }
        if !(0.0..=1.0).contains(&self.r_start) || !(0.0..=1.0).contains(&self.r_end) {
            return Err(format!(
                "ratios out of range: {} / {}",
                self.r_start, self.r_end
            ));
        }
        for (i, s) in self.path.iter().enumerate() {
            if s.exit < s.enter {
                return Err(format!("step {i} exits before entering"));
            }
        }
        for (i, w) in self.path.windows(2).enumerate() {
            if (w[1].enter - w[0].exit).abs() > 1.0 {
                return Err(format!("gap between steps {i} and {} exceeds 1 s", i + 1));
            }
        }
        Ok(())
    }
}

/// The OD input of Def. 2: origin, destination, departure time, and the
/// external weather feature (the traffic-condition matrix is looked up from
/// the departure time at encoding time).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OdInput {
    /// Origin point g\[1\].
    pub origin: Point,
    /// Destination point g[-1].
    pub destination: Point,
    /// Departure timestamp t (seconds in the city epoch).
    pub depart: f64,
    /// Weather at departure.
    pub weather: WeatherType,
}

/// One historical trip record: the OD input, its affiliated trajectory, and
/// the ground-truth travel time (the label).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaxiOrder {
    /// The OD input available at prediction time.
    pub od: OdInput,
    /// The trajectory, available only during training.
    pub trajectory: MatchedTrajectory,
    /// Actual travel time in seconds.
    pub travel_time: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(e: u32, a: f64, b: f64) -> SpatioTemporalStep {
        SpatioTemporalStep {
            edge: EdgeId(e),
            enter: a,
            exit: b,
        }
    }

    #[test]
    fn raw_trajectory_stats() {
        let t = RawTrajectory {
            points: vec![
                RawGpsPoint {
                    pos: Point::new(0.0, 0.0),
                    t: 100.0,
                },
                RawGpsPoint {
                    pos: Point::new(30.0, 40.0),
                    t: 110.0,
                },
                RawGpsPoint {
                    pos: Point::new(30.0, 100.0),
                    t: 125.0,
                },
            ],
        };
        assert_eq!(t.duration(), 25.0);
        assert!((t.approx_length() - 110.0).abs() < 1e-9);
        assert_eq!(RawTrajectory::default().duration(), 0.0);
    }

    #[test]
    fn matched_trajectory_travel_time_and_edges() {
        let m = MatchedTrajectory {
            path: vec![step(3, 0.0, 10.0), step(5, 10.0, 25.0)],
            r_start: 0.2,
            r_end: 0.7,
        };
        assert_eq!(m.travel_time(), 25.0);
        assert_eq!(m.edges(), vec![EdgeId(3), EdgeId(5)]);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn validation_catches_violations() {
        let empty = MatchedTrajectory {
            path: vec![],
            r_start: 0.0,
            r_end: 0.0,
        };
        assert!(empty.validate().is_err());

        let bad_ratio = MatchedTrajectory {
            path: vec![step(0, 0.0, 1.0)],
            r_start: 1.5,
            r_end: 0.0,
        };
        assert!(bad_ratio.validate().is_err());

        let backwards = MatchedTrajectory {
            path: vec![step(0, 5.0, 1.0)],
            r_start: 0.0,
            r_end: 0.0,
        };
        assert!(backwards.validate().is_err());

        let gap = MatchedTrajectory {
            path: vec![step(0, 0.0, 1.0), step(1, 5.0, 6.0)],
            r_start: 0.0,
            r_end: 0.0,
        };
        assert!(gap.validate().is_err());
    }

    #[test]
    fn step_duration() {
        assert_eq!(step(0, 2.0, 7.5).duration(), 5.5);
    }
}

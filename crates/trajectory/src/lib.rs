//! Trajectories over road networks: the data substrate of the DeepOD
//! reproduction.
//!
//! Implements the paper's §2 data model — raw GPS trajectories,
//! spatio-temporal paths (`⟨edge, [t₁, t₋₁]⟩` sequences), position ratios —
//! plus everything needed to *produce* such data without the proprietary
//! Didi/Beijing datasets (DESIGN.md §2):
//!
//! * [`OrderSimulator`] samples taxi orders against the ground-truth
//!   traffic model, routes them with per-driver perturbed time-dependent
//!   shortest paths, and integrates per-segment traversal times.
//! * [`sample_gps`] emits raw GPS points along a trip at a configurable
//!   period with position noise (3 s for the Chengdu/Xi'an analogues,
//!   60 s for Beijing, like the paper's Table 2).
//! * [`HmmMapMatcher`] recovers the edge sequence from raw GPS (standing in
//!   for Valhalla) and [`interpolate_intervals`] assigns entry/exit
//!   timestamps per edge by linear interpolation, as §2 prescribes.
//! * [`DatasetBuilder`] assembles whole city datasets with the paper's
//!   42:7:12 train/validation/test split.

mod dataset;
mod interpolate;
mod mapmatch;
mod simulate;
mod types;

pub use dataset::{CityDataset, DatasetBuilder, DatasetConfig, Split};
pub use interpolate::interpolate_intervals;
pub use mapmatch::{HmmMapMatcher, MapMatchConfig};
pub use simulate::{sample_gps, GpsNoise, OrderSimulator, SimConfig};
pub use types::{
    MatchedTrajectory, OdInput, RawGpsPoint, RawTrajectory, SpatioTemporalStep, TaxiOrder,
};

//! Taxi-order simulator: the stand-in for the Didi/Beijing trip records
//! (DESIGN.md §2).
//!
//! Orders are sampled from hotspot-weighted origin/destination
//! distributions with a departure-time profile that peaks at rush hours.
//! Each driver routes with a time-dependent shortest path whose edge costs
//! are perturbed per driver, so the *same OD pair at the same hour* can
//! still take different routes — and at different hours systematically
//! does (the paper's Fig. 1 motivation). Per-segment traversal times are
//! integrated from the ground-truth traffic model.

use crate::types::{
    MatchedTrajectory, OdInput, RawGpsPoint, RawTrajectory, SpatioTemporalStep, TaxiOrder,
};
use deepod_roadnet::{time_dependent_route, EdgeId, NodeId, Point, RoadNetwork, SpatialGrid};
use deepod_traffic::{TrafficModel, SECONDS_PER_DAY};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// GPS noise model for raw-point emission.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GpsNoise {
    /// Std-dev of the position error in meters.
    pub sigma: f64,
}

/// Simulation parameters for one city.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of hotspots (business districts, stations, …).
    pub num_hotspots: usize,
    /// Probability that an endpoint is drawn from a hotspot (vs. uniform).
    pub hotspot_prob: f64,
    /// Std-dev of positions around a hotspot, meters.
    pub hotspot_sigma: f64,
    /// Per-driver multiplicative cost-perturbation std-dev (route
    /// diversity; 0 = everyone takes the optimal route).
    pub route_noise: f64,
    /// Minimum trip network distance in meters (too-short trips dropped).
    pub min_trip_dist: f64,
    /// GPS sampling period in seconds.
    pub gps_period: f64,
    /// GPS position noise.
    pub gps_noise: GpsNoise,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_hotspots: 6,
            hotspot_prob: 0.7,
            hotspot_sigma: 500.0,
            route_noise: 0.25,
            min_trip_dist: 800.0,
            gps_period: 3.0,
            gps_noise: GpsNoise { sigma: 8.0 },
            seed: 0xD1D1,
        }
    }
}

/// Samples taxi orders against a network + traffic model.
pub struct OrderSimulator<'a> {
    net: &'a RoadNetwork,
    traffic: &'a TrafficModel,
    grid: SpatialGrid,
    hotspots: Vec<Point>,
    cfg: SimConfig,
    rng: StdRng,
}

impl<'a> OrderSimulator<'a> {
    /// Creates a simulator; hotspot locations are sampled from the seed.
    pub fn new(net: &'a RoadNetwork, traffic: &'a TrafficModel, cfg: SimConfig) -> Self {
        let mut rng = deepod_tensor::rng_from_seed(cfg.seed);
        let (min, max) = net.bounding_box();
        let hotspots = (0..cfg.num_hotspots)
            .map(|_| Point::new(rng.gen_range(min.x..max.x), rng.gen_range(min.y..max.y)))
            .collect();
        let grid = SpatialGrid::build(net, 250.0);
        OrderSimulator {
            net,
            traffic,
            grid,
            hotspots,
            cfg,
            rng,
        }
    }

    /// The spatial grid (shared with map matching in tests).
    pub fn grid(&self) -> &SpatialGrid {
        &self.grid
    }

    fn sample_endpoint(&mut self) -> Point {
        let (min, max) = self.net.bounding_box();
        if self.rng.gen_bool(self.cfg.hotspot_prob) && !self.hotspots.is_empty() {
            let h = self.hotspots[self.rng.gen_range(0..self.hotspots.len())];
            let sigma = self.cfg.hotspot_sigma.max(0.0);
            let Ok(n) = Normal::new(0.0, sigma) else {
                unreachable!("Normal::new cannot fail for clamped sigma {sigma}")
            };
            Point::new(
                (h.x + n.sample(&mut self.rng)).clamp(min.x, max.x),
                (h.y + n.sample(&mut self.rng)).clamp(min.y, max.y),
            )
        } else {
            Point::new(
                self.rng.gen_range(min.x..max.x),
                self.rng.gen_range(min.y..max.y),
            )
        }
    }

    /// Samples a departure time within `[day_start, day_start + days)`,
    /// weighted toward daytime with rush-hour peaks.
    fn sample_departure(&mut self, day_start: f64, days: usize) -> f64 {
        loop {
            let day = self.rng.gen_range(0..days) as f64;
            let hour: f64 = self.rng.gen_range(0.0..24.0);
            // Acceptance weight: base 0.15, peaks at 8 and 18, midday shelf.
            let w = 0.15
                + 0.9 * (-(hour - 8.0) * (hour - 8.0) / 4.0).exp()
                + 1.0 * (-(hour - 18.0) * (hour - 18.0) / 5.0).exp()
                + 0.4 * (-(hour - 13.0) * (hour - 13.0) / 18.0).exp();
            if self.rng.gen_range(0.0..2.1) < w {
                return day_start + day * SECONDS_PER_DAY + hour * 3600.0;
            }
        }
    }

    /// Simulates one taxi order departing within `[day_start, day_start +
    /// days)`; `None` when the sampled OD pair is unroutable or too short.
    pub fn simulate_order(&mut self, day_start: f64, days: usize) -> Option<TaxiOrder> {
        let origin = self.sample_endpoint();
        let destination = self.sample_endpoint();
        let depart = self.sample_departure(day_start, days);

        // Snap endpoints to road segments (the paper map-matches OD points).
        let (oe, opr) = self.grid.nearest_edge(self.net, &origin, 600.0)?;
        let (de, dpr) = self.grid.nearest_edge(self.net, &destination, 600.0)?;
        if oe == de {
            return None; // same-segment micro trip
        }

        // Route from the head of the origin edge to the tail of the
        // destination edge, then complete both ends.
        let from: NodeId = self.net.edge(oe).to;
        let to: NodeId = self.net.edge(de).from;

        // Per-driver route preference: a fixed multiplicative perturbation
        // per edge id (hashed), scaled by route_noise.
        let noise = self.cfg.route_noise;
        let driver_salt: u64 = self.rng.gen();
        let perturb = move |e: EdgeId| -> f64 {
            if noise <= 0.0 {
                return 1.0;
            }
            // Cheap deterministic hash -> [1-noise, 1+noise].
            let h = (e.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ driver_salt;
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            1.0 + noise * (2.0 * u - 1.0)
        };

        let net = self.net;
        let traffic = self.traffic;
        let mid_route = time_dependent_route(net, from, to, depart, |e, t| {
            traffic.traversal_time(net, e, t) * perturb(e)
        })
        .ok()?;

        // Assemble full edge sequence: origin edge, middle, destination edge.
        let mut edges = Vec::with_capacity(mid_route.edges.len() + 2);
        edges.push(oe);
        edges.extend_from_slice(&mid_route.edges);
        if edges.last() != Some(&de) {
            edges.push(de);
        }

        // Integrate ground-truth traversal times; the partial first/last
        // edges contribute proportionally to the fraction traveled.
        let mut path = Vec::with_capacity(edges.len());
        let mut now = depart;
        let last_idx = edges.len() - 1;
        let mut dist = 0.0;
        for (i, &e) in edges.iter().enumerate() {
            let full = self.traffic.traversal_time(self.net, e, now);
            let frac = if i == 0 {
                1.0 - opr.t // origin enters mid-segment
            } else if i == last_idx {
                dpr.t // destination leaves mid-segment
            } else {
                1.0
            };
            let dt = full * frac.clamp(0.02, 1.0);
            path.push(SpatioTemporalStep {
                edge: e,
                enter: now,
                exit: now + dt,
            });
            dist += self.net.edge(e).length * frac.clamp(0.02, 1.0);
            now += dt;
        }

        if dist < self.cfg.min_trip_dist {
            return None;
        }

        // Position ratios per Def. 1: r[1] measures |v¹→g[1]| on the first
        // segment; r[-1] measures |g[-1]→v⁻¹| on the last.
        let r_start = opr.t;
        let r_end = 1.0 - dpr.t;

        let trajectory = MatchedTrajectory {
            path,
            r_start,
            r_end,
        };
        let travel_time = trajectory.travel_time();
        let weather = self.traffic.weather().at(depart);
        Some(TaxiOrder {
            od: OdInput {
                origin,
                destination,
                depart,
                weather,
            },
            trajectory,
            travel_time,
        })
    }

    /// Simulates until `n` valid orders have been produced (or the attempt
    /// budget `10 n + 100` is exhausted).
    pub fn simulate_orders(&mut self, n: usize, day_start: f64, days: usize) -> Vec<TaxiOrder> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < 10 * n + 100 {
            attempts += 1;
            if let Some(o) = self.simulate_order(day_start, days) {
                out.push(o);
            }
        }
        out
    }
}

/// Emits raw GPS points for a trip by walking its spatio-temporal path at
/// `period`-second intervals, adding Gaussian position noise.
pub fn sample_gps(
    net: &RoadNetwork,
    traj: &MatchedTrajectory,
    period: f64,
    noise: GpsNoise,
    rng: &mut StdRng,
) -> RawTrajectory {
    assert!(period > 0.0, "GPS period must be positive");
    let mut points = Vec::new();
    let start = traj.path.first().map(|s| s.enter).unwrap_or(0.0);
    let end = traj.path.last().map(|s| s.exit).unwrap_or(0.0);
    let sigma = noise.sigma.max(0.0);
    let Ok(n) = Normal::new(0.0, sigma) else {
        unreachable!("Normal::new cannot fail for clamped sigma {sigma}")
    };
    let mut t = start;
    let mut step_idx = 0;
    while t <= end + 1e-9 {
        while step_idx + 1 < traj.path.len() && traj.path[step_idx].exit < t {
            step_idx += 1;
        }
        let s = &traj.path[step_idx];
        let frac = if s.duration() <= 1e-9 {
            0.5
        } else {
            ((t - s.enter) / s.duration()).clamp(0.0, 1.0)
        };
        let mut p = net.point_on_edge(s.edge, frac);
        p.x += n.sample(rng);
        p.y += n.sample(rng);
        points.push(RawGpsPoint { pos: p, t });
        t += period;
    }
    RawTrajectory { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::{CityConfig, CityProfile};
    use deepod_tensor::rng_from_seed;
    use deepod_traffic::{CongestionModel, WeatherProcess, SECONDS_PER_WEEK};

    fn setup() -> (RoadNetwork, TrafficModel) {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut rng = rng_from_seed(77);
        let weather = WeatherProcess::sample(9.0 * SECONDS_PER_WEEK, 1800.0, &mut rng);
        let tm = TrafficModel::new(&net, CongestionModel::default(), weather, &mut rng);
        (net, tm)
    }

    #[test]
    fn orders_are_valid() {
        let (net, tm) = setup();
        let mut sim = OrderSimulator::new(&net, &tm, SimConfig::default());
        let orders = sim.simulate_orders(25, 0.0, 7);
        assert!(orders.len() >= 20, "only {} orders", orders.len());
        for o in &orders {
            o.trajectory.validate().expect("invalid trajectory");
            assert!(o.travel_time > 0.0);
            assert!(o.od.depart >= 0.0);
            assert!((o.trajectory.travel_time() - o.travel_time).abs() < 1e-6);
            // Consecutive edges must connect on the network.
            let edges = o.trajectory.edges();
            for w in edges.windows(2) {
                assert!(net.edges_are_consecutive(w[0], w[1]), "disconnected path");
            }
        }
    }

    #[test]
    fn rush_hour_orders_slower_on_average() {
        let (net, tm) = setup();
        let cfg = SimConfig {
            route_noise: 0.0,
            hotspot_prob: 0.0,
            ..SimConfig::default()
        };
        let mut sim = OrderSimulator::new(&net, &tm, cfg);
        // Manufacture matched OD pairs at 8am vs 3am of day 1 by sampling
        // many orders and comparing normalized speed (dist / time).
        let orders = sim.simulate_orders(150, 0.0, 5);
        let mut rush_speed = vec![];
        let mut night_speed = vec![];
        for o in &orders {
            let hour = (o.od.depart % SECONDS_PER_DAY) / 3600.0;
            let day = ((o.od.depart % SECONDS_PER_WEEK) / SECONDS_PER_DAY) as usize;
            if day >= 5 {
                continue;
            }
            let dist: f64 = o
                .trajectory
                .edges()
                .iter()
                .map(|&e| net.edge(e).length)
                .sum();
            let v = dist / o.travel_time;
            if (7.0..9.5).contains(&hour) {
                rush_speed.push(v);
            } else if !(6.0..22.0).contains(&hour) {
                night_speed.push(v);
            }
        }
        if rush_speed.len() >= 3 && night_speed.len() >= 3 {
            let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
            assert!(
                avg(&night_speed) > avg(&rush_speed),
                "night {:.2} should beat rush {:.2}",
                avg(&night_speed),
                avg(&rush_speed)
            );
        }
    }

    #[test]
    fn same_od_different_time_different_duration() {
        // The Fig. 1 motivation: identical OD, different departure hour →
        // different travel time on congested networks.
        let (net, tm) = setup();
        let from = NodeId(5);
        let to = NodeId((net.num_nodes() - 5) as u32);
        let route_at = |depart: f64| {
            time_dependent_route(&net, from, to, depart, |e, t| tm.traversal_time(&net, e, t))
                .expect("routable")
        };
        let rush = route_at(SECONDS_PER_DAY + 8.0 * 3600.0);
        let night = route_at(SECONDS_PER_DAY + 3.0 * 3600.0);
        assert!(
            rush.cost > night.cost * 1.1,
            "rush {:.0}s vs night {:.0}s",
            rush.cost,
            night.cost
        );
    }

    #[test]
    fn gps_sampling_covers_trip() {
        let (net, tm) = setup();
        let mut sim = OrderSimulator::new(&net, &tm, SimConfig::default());
        let order = sim
            .simulate_orders(1, 0.0, 3)
            .into_iter()
            .next()
            .expect("one order");
        let mut rng = rng_from_seed(1);
        let raw = sample_gps(
            &net,
            &order.trajectory,
            3.0,
            GpsNoise { sigma: 5.0 },
            &mut rng,
        );
        assert!(raw.points.len() as f64 >= order.travel_time / 3.0 - 2.0);
        // Duration of the GPS trace ≈ travel time.
        assert!((raw.duration() - order.travel_time).abs() <= 3.0 + 1e-6);
        // Points near the trip's roads: each within ~5 sigma + block size.
        let grid = SpatialGrid::build(&net, 250.0);
        for p in raw.points.iter().step_by(7) {
            assert!(grid.nearest_edge(&net, &p.pos, 120.0).is_some());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, tm) = setup();
        let mut s1 = OrderSimulator::new(&net, &tm, SimConfig::default());
        let mut s2 = OrderSimulator::new(&net, &tm, SimConfig::default());
        let a = s1.simulate_orders(5, 0.0, 3);
        let b = s2.simulate_orders(5, 0.0, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.travel_time, y.travel_time);
            assert_eq!(x.od.depart, y.od.depart);
        }
    }

    #[test]
    fn departure_profile_prefers_daytime() {
        let (net, tm) = setup();
        let mut sim = OrderSimulator::new(&net, &tm, SimConfig::default());
        let orders = sim.simulate_orders(200, 0.0, 7);
        let day = orders
            .iter()
            .filter(|o| {
                let h = (o.od.depart % SECONDS_PER_DAY) / 3600.0;
                (7.0..21.0).contains(&h)
            })
            .count();
        assert!(
            day * 10 >= orders.len() * 6,
            "only {day}/{} daytime orders",
            orders.len()
        );
    }
}

//! HMM map matching — the stand-in for the Valhalla matcher the paper uses
//! to align GPS points and OD inputs with road networks (§6.1).
//!
//! Standard formulation (Newson–Krumme style): candidate road segments per
//! GPS point come from the spatial index; emission probability decays with
//! the point-to-segment distance; transition probability decays with the
//! difference between the straight-line distance of consecutive fixes and
//! the network distance between their candidate projections. Viterbi
//! decoding yields the most likely edge sequence, which
//! [`interpolate_intervals`](crate::interpolate_intervals) then converts
//! into a spatio-temporal path.

use crate::interpolate::interpolate_intervals;
use crate::types::{MatchedTrajectory, RawTrajectory};
use deepod_roadnet::{dijkstra_shortest_path, EdgeId, RoadNetwork, SegmentProjection, SpatialGrid};
use serde::{Deserialize, Serialize};

/// Map-matching parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MapMatchConfig {
    /// Candidate search radius in meters.
    pub radius: f64,
    /// Max candidates per point.
    pub max_candidates: usize,
    /// Emission sigma (GPS noise scale), meters.
    pub sigma: f64,
    /// Transition beta (route-vs-line distance tolerance), meters.
    pub beta: f64,
    /// Points are thinned so consecutive matched fixes are at least this
    /// far apart (meters); dense 3-s traces don't need every fix.
    pub min_point_spacing: f64,
}

impl Default for MapMatchConfig {
    fn default() -> Self {
        MapMatchConfig {
            radius: 120.0,
            max_candidates: 5,
            sigma: 15.0,
            beta: 40.0,
            min_point_spacing: 60.0,
        }
    }
}

struct Candidate {
    edge: EdgeId,
    proj: SegmentProjection,
    emission_logp: f64,
}

/// Hidden-Markov-model map matcher.
pub struct HmmMapMatcher<'a> {
    net: &'a RoadNetwork,
    grid: &'a SpatialGrid,
    cfg: MapMatchConfig,
}

impl<'a> HmmMapMatcher<'a> {
    /// Creates a matcher over a network and its spatial index.
    pub fn new(net: &'a RoadNetwork, grid: &'a SpatialGrid, cfg: MapMatchConfig) -> Self {
        HmmMapMatcher { net, grid, cfg }
    }

    /// Network distance from a position on `from` (fraction `ft`) to a
    /// position on `to` (fraction `tt`), bounded to keep Viterbi cheap.
    fn route_distance(&self, from: EdgeId, ft: f64, to: EdgeId, tt: f64, bound: f64) -> f64 {
        if from == to {
            return ((tt - ft) * self.net.edge(from).length).abs();
        }
        let fe = self.net.edge(from);
        let te = self.net.edge(to);
        let head = fe.length * (1.0 - ft); // remaining on the first edge
        let tail = te.length * tt; // consumed on the last edge
        if fe.to == te.from {
            return head + tail;
        }
        let net = self.net;
        let mid = dijkstra_shortest_path(net, fe.to, te.from, |e| net.edge(e).length)
            .map(|p| p.cost)
            .unwrap_or(f64::INFINITY);
        (head + mid + tail).min(bound * 4.0 + 1.0)
    }

    /// Matches a raw trajectory. Returns `None` when fewer than two points
    /// have candidates or Viterbi finds no connected hypothesis.
    pub fn match_trajectory(&self, raw: &RawTrajectory) -> Option<MatchedTrajectory> {
        if raw.points.len() < 2 {
            return None;
        }

        // Thin dense traces (keeping first and last points).
        let mut kept: Vec<usize> = vec![0];
        let mut last_kept = 0usize;
        for i in 1..raw.points.len() - 1 {
            let last = &raw.points[last_kept];
            if raw.points[i].pos.dist(&last.pos) >= self.cfg.min_point_spacing {
                kept.push(i);
                last_kept = i;
            }
        }
        kept.push(raw.points.len() - 1);

        // Candidates per kept point.
        let mut all_cands: Vec<Vec<Candidate>> = Vec::with_capacity(kept.len());
        for &i in &kept {
            let p = &raw.points[i];
            let cands: Vec<Candidate> = self
                .grid
                .k_nearest_edges(self.net, &p.pos, self.cfg.radius, self.cfg.max_candidates)
                .into_iter()
                .map(|(edge, proj)| {
                    let z = proj.distance / self.cfg.sigma;
                    Candidate {
                        edge,
                        proj,
                        emission_logp: -0.5 * z * z,
                    }
                })
                .collect();
            if cands.is_empty() {
                return None; // off-network point
            }
            all_cands.push(cands);
        }

        // Viterbi.
        let n = all_cands.len();
        let mut score: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(n);
        score.push(all_cands[0].iter().map(|c| c.emission_logp).collect());
        back.push(vec![0; all_cands[0].len()]);

        for step in 1..n {
            let gps_dist = raw.points[kept[step]]
                .pos
                .dist(&raw.points[kept[step - 1]].pos)
                .max(1.0);
            let mut row = vec![f64::NEG_INFINITY; all_cands[step].len()];
            let mut brow = vec![0usize; all_cands[step].len()];
            for (j, cj) in all_cands[step].iter().enumerate() {
                for (i, ci) in all_cands[step - 1].iter().enumerate() {
                    if score[step - 1][i] == f64::NEG_INFINITY {
                        continue;
                    }
                    let rd = self.route_distance(
                        ci.edge,
                        ci.proj.t,
                        cj.edge,
                        cj.proj.t,
                        gps_dist + 4.0 * self.cfg.beta,
                    );
                    let trans = -(rd - gps_dist).abs() / self.cfg.beta;
                    let s = score[step - 1][i] + trans + cj.emission_logp;
                    if s > row[j] {
                        row[j] = s;
                        brow[j] = i;
                    }
                }
            }
            score.push(row);
            back.push(brow);
        }

        // Backtrack the best terminal candidate.
        let (mut best_j, best_s) = score[n - 1]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, &s)| (j, s))?;
        if best_s == f64::NEG_INFINITY {
            return None;
        }
        let mut chosen = vec![0usize; n];
        for step in (0..n).rev() {
            chosen[step] = best_j;
            if step > 0 {
                best_j = back[step][best_j];
            }
        }

        // Expand candidate edges into a connected edge sequence, filling
        // gaps with shortest paths; build the per-point assignment.
        let mut edges: Vec<EdgeId> = Vec::new();
        let mut assignment_kept: Vec<usize> = Vec::with_capacity(n);
        for (step, &jc) in chosen.iter().enumerate() {
            let e = all_cands[step][jc].edge;
            match edges.last().copied() {
                None => edges.push(e),
                Some(last) if last == e => {}
                Some(last) if self.net.edges_are_consecutive(last, e) => edges.push(e),
                Some(last) => {
                    let net = self.net;
                    let gap =
                        dijkstra_shortest_path(net, net.edge(last).to, net.edge(e).from, |x| {
                            net.edge(x).length
                        })
                        .ok()?;
                    for ge in gap.edges {
                        edges.push(ge);
                    }
                    edges.push(e);
                }
            }
            assignment_kept.push(edges.len() - 1);
        }

        // Spread kept-point assignments back over all raw points.
        let mut assignment = vec![0usize; raw.points.len()];
        for (w, pair) in kept.windows(2).enumerate() {
            assignment[pair[0]..pair[1]].fill(assignment_kept[w]);
        }
        if let Some(&last_assign) = assignment_kept.last() {
            assignment[raw.points.len() - 1] = last_assign;
        }

        let path = interpolate_intervals(self.net, raw, &edges, &assignment);
        let r_start = all_cands[0][chosen[0]].proj.t;
        let r_end = 1.0 - all_cands[n - 1][chosen[n - 1]].proj.t;
        Some(MatchedTrajectory {
            path,
            r_start,
            r_end,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{sample_gps, GpsNoise, OrderSimulator, SimConfig};
    use deepod_roadnet::{CityConfig, CityProfile};
    use deepod_tensor::rng_from_seed;
    use deepod_traffic::{CongestionModel, TrafficModel, WeatherProcess, SECONDS_PER_WEEK};

    #[test]
    fn recovers_simulated_routes() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut rng = rng_from_seed(42);
        let weather = WeatherProcess::constant_clear(2.0 * SECONDS_PER_WEEK, 300.0);
        let tm = TrafficModel::new(&net, CongestionModel::default(), weather, &mut rng);
        let mut sim = OrderSimulator::new(&net, &tm, SimConfig::default());
        let orders = sim.simulate_orders(8, 0.0, 3);
        assert!(!orders.is_empty());

        let grid = SpatialGrid::build(&net, 250.0);
        let matcher = HmmMapMatcher::new(&net, &grid, MapMatchConfig::default());

        let mut gps_rng = rng_from_seed(7);
        let mut jaccard_sum = 0.0;
        let mut matched = 0;
        for o in &orders {
            let raw = sample_gps(
                &net,
                &o.trajectory,
                3.0,
                GpsNoise { sigma: 6.0 },
                &mut gps_rng,
            );
            let Some(m) = matcher.match_trajectory(&raw) else {
                continue;
            };
            matched += 1;
            m.validate().expect("matched trajectory invalid");
            // Edge-set overlap with ground truth.
            let truth: std::collections::HashSet<_> = o.trajectory.edges().into_iter().collect();
            let got: std::collections::HashSet<_> = m.edges().into_iter().collect();
            let inter = truth.intersection(&got).count() as f64;
            let union = truth.union(&got).count() as f64;
            jaccard_sum += inter / union;
            // Travel time preserved up to the GPS period.
            assert!((m.travel_time() - o.travel_time).abs() <= 6.0 + 1e-6);
        }
        assert!(matched >= orders.len() * 3 / 4, "only {matched} matched");
        let avg_jaccard = jaccard_sum / matched as f64;
        assert!(avg_jaccard > 0.6, "avg edge-set Jaccard {avg_jaccard:.2}");
    }

    #[test]
    fn too_few_points_rejected() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let grid = SpatialGrid::build(&net, 250.0);
        let matcher = HmmMapMatcher::new(&net, &grid, MapMatchConfig::default());
        let raw = RawTrajectory { points: vec![] };
        assert!(matcher.match_trajectory(&raw).is_none());
    }

    #[test]
    fn off_network_points_rejected() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let grid = SpatialGrid::build(&net, 250.0);
        let matcher = HmmMapMatcher::new(&net, &grid, MapMatchConfig::default());
        let raw = RawTrajectory {
            points: vec![
                crate::types::RawGpsPoint {
                    pos: deepod_roadnet::Point::new(-9e5, -9e5),
                    t: 0.0,
                },
                crate::types::RawGpsPoint {
                    pos: deepod_roadnet::Point::new(-9e5, -9e5 + 10.0),
                    t: 3.0,
                },
            ],
        };
        assert!(matcher.match_trajectory(&raw).is_none());
    }
}

//! Unsupervised graph embeddings used to *initialize* DeepOD's road-segment
//! and time-slot embedding matrices (§4.1, §4.2, Alg. 1 lines 1–4), plus an
//! exact t-SNE used to render the Fig. 14b time-slot heat map.
//!
//! Three methods, as evaluated in the paper (§5 notes node2vec worked
//! best): [`DeepWalk`] (uniform random walks), [`Node2Vec`] (p/q-biased
//! walks), and [`Line`] (edge-sampled first/second-order proximity). All
//! three train a skip-gram model with negative sampling over a generic
//! weighted directed graph supplied as adjacency lists, so the same code
//! embeds both the road-segment line graph and the temporal graph.

mod graph;
mod skipgram;
mod tsne;
#[cfg(test)]
mod tsne2d_test;
mod walks;

pub use graph::EmbedGraph;
pub use skipgram::{SkipGramConfig, SkipGramModel};
pub use tsne::{tsne, tsne_1d, TsneConfig};
pub use walks::{DeepWalk, Line, Node2Vec, WalkConfig};

use deepod_tensor::Tensor;
use rand::rngs::StdRng;

/// Common interface: produce a `[num_nodes, dim]` embedding matrix.
pub trait GraphEmbedder {
    /// Trains embeddings for every node of `graph`.
    fn embed(&self, graph: &EmbedGraph, dim: usize, rng: &mut StdRng) -> Tensor;
}

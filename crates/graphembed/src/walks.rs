//! Random-walk and edge-sampling front ends over the SGNS core: DeepWalk,
//! node2vec (with p/q biases), and LINE.

use crate::graph::EmbedGraph;
use crate::skipgram::{SkipGramConfig, SkipGramModel};
use crate::GraphEmbedder;
use deepod_tensor::parallel::{configured_threads, map_ranges};
use deepod_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shared random-walk parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WalkConfig {
    /// Walks started per node.
    pub walks_per_node: usize,
    /// Walk length in nodes.
    pub walk_length: usize,
    /// Skip-gram window size.
    pub window: usize,
    /// SGNS training parameters.
    pub sgns: SkipGramConfig,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks_per_node: 8,
            walk_length: 20,
            window: 4,
            sgns: SkipGramConfig::default(),
        }
    }
}

/// Weighted choice among out-links scaled by a per-link bias.
fn weighted_step(
    graph: &EmbedGraph,
    u: usize,
    bias: impl Fn(usize) -> f64,
    rng: &mut StdRng,
) -> Option<usize> {
    let links = graph.neighbors(u);
    if links.is_empty() {
        return None;
    }
    let total: f64 = links.iter().map(|&(v, w)| w * bias(v)).sum();
    if total <= 0.0 {
        return None;
    }
    let mut r = rng.gen_range(0.0..total);
    for &(v, w) in links {
        r -= w * bias(v);
        if r <= 0.0 {
            return Some(v);
        }
    }
    // Floating-point underflow can leave `r` slightly positive after the
    // loop; the last link is then the correct pick.
    links.last().map(|&(v, _)| v)
}

/// Golden-ratio stride decorrelating per-walk seeds (SplitMix64's constant).
const WALK_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Generates all `walks_per_node * num_nodes` walks, fanned across the
/// configured worker threads.
///
/// Walk `w` starts at node `w % num_nodes` and draws from its own RNG
/// seeded by `master ^ w·stride`, where `master` is a single draw from the
/// caller's RNG. The walk set is therefore a pure function of the incoming
/// RNG state — identical for every thread count — and each walk's stream
/// is independent of every other's. Dead-end walks of length ≤ 1 are
/// dropped, as in the serial formulation.
fn parallel_walks(
    graph: &EmbedGraph,
    walks_per_node: usize,
    rng: &mut StdRng,
    walk_of: impl Fn(usize, &mut StdRng) -> Vec<usize> + Sync,
) -> Vec<Vec<usize>> {
    walks_with_threads(graph, walks_per_node, rng, configured_threads(), walk_of)
}

/// [`parallel_walks`] with an explicit worker count (tests pin it to prove
/// thread-count independence).
fn walks_with_threads(
    graph: &EmbedGraph,
    walks_per_node: usize,
    rng: &mut StdRng,
    threads: usize,
    walk_of: impl Fn(usize, &mut StdRng) -> Vec<usize> + Sync,
) -> Vec<Vec<usize>> {
    let num_nodes = graph.num_nodes();
    let total = walks_per_node * num_nodes;
    let master = rng.next_u64();
    if total == 0 {
        return Vec::new();
    }
    let threads = threads.min(total).max(1);
    map_ranges(total, threads, |span| {
        let mut out = Vec::with_capacity(span.len());
        for w in span {
            let seed = master ^ (w as u64).wrapping_mul(WALK_SEED_STRIDE);
            let mut wrng = StdRng::seed_from_u64(seed);
            let walk = walk_of(w % num_nodes, &mut wrng);
            if walk.len() > 1 {
                out.push(walk);
            }
        }
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Converts a set of walks into skip-gram (center, context) pairs. Walks
/// are windowed independently across the worker threads; per-span pair
/// lists are concatenated in span order, so the output matches the serial
/// walk-by-walk traversal exactly.
fn walks_to_pairs(walks: &[Vec<usize>], window: usize) -> Vec<(usize, usize)> {
    if walks.is_empty() {
        return Vec::new();
    }
    let threads = configured_threads().min(walks.len());
    map_ranges(walks.len(), threads, |span| {
        let mut pairs = Vec::new();
        for walk in &walks[span] {
            for (i, &c) in walk.iter().enumerate() {
                let lo = i.saturating_sub(window);
                let hi = (i + window + 1).min(walk.len());
                for (j, &x) in walk.iter().enumerate().take(hi).skip(lo) {
                    if i != j {
                        pairs.push((c, x));
                    }
                }
            }
        }
        pairs
    })
    .into_iter()
    .flatten()
    .collect()
}

fn shuffle<T>(v: &mut [T], rng: &mut StdRng) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

fn train_on_walks(
    graph: &EmbedGraph,
    walks: &[Vec<usize>],
    dim: usize,
    cfg: &WalkConfig,
    rng: &mut StdRng,
) -> Tensor {
    let mut pairs = walks_to_pairs(walks, cfg.window);
    shuffle(&mut pairs, rng);
    let mut model = SkipGramModel::new(graph, dim, cfg.sgns.clone(), rng);
    model.train_pairs(&pairs, rng);
    model.embeddings()
}

/// DeepWalk: uniform (weight-proportional) random walks.
#[derive(Clone, Debug, Default)]
pub struct DeepWalk {
    /// Walk parameters.
    pub cfg: WalkConfig,
}

impl GraphEmbedder for DeepWalk {
    fn embed(&self, graph: &EmbedGraph, dim: usize, rng: &mut StdRng) -> Tensor {
        let walks = parallel_walks(graph, self.cfg.walks_per_node, rng, |start, wrng| {
            let mut walk = vec![start];
            let mut cur = start;
            for _ in 1..self.cfg.walk_length {
                match weighted_step(graph, cur, |_| 1.0, wrng) {
                    Some(v) => {
                        walk.push(v);
                        cur = v;
                    }
                    None => break,
                }
            }
            walk
        });
        train_on_walks(graph, &walks, dim, &self.cfg, rng)
    }
}

/// node2vec: second-order biased walks with return parameter `p` and
/// in-out parameter `q` (Grover & Leskovec). `p` penalizes immediate
/// returns; `q` trades off BFS-like vs DFS-like exploration.
#[derive(Clone, Debug)]
pub struct Node2Vec {
    /// Walk parameters.
    pub cfg: WalkConfig,
    /// Return parameter p.
    pub p: f64,
    /// In-out parameter q.
    pub q: f64,
}

impl Default for Node2Vec {
    fn default() -> Self {
        Node2Vec {
            cfg: WalkConfig::default(),
            p: 1.0,
            q: 0.5,
        }
    }
}

impl GraphEmbedder for Node2Vec {
    fn embed(&self, graph: &EmbedGraph, dim: usize, rng: &mut StdRng) -> Tensor {
        let walks = parallel_walks(graph, self.cfg.walks_per_node, rng, |start, wrng| {
            let mut walk = vec![start];
            let mut prev: Option<usize> = None;
            let mut cur = start;
            for _ in 1..self.cfg.walk_length {
                let step = match prev {
                    None => weighted_step(graph, cur, |_| 1.0, wrng),
                    Some(pr) => weighted_step(
                        graph,
                        cur,
                        |v| {
                            if v == pr {
                                1.0 / self.p
                            } else if graph.has_link(pr, v) {
                                1.0
                            } else {
                                1.0 / self.q
                            }
                        },
                        wrng,
                    ),
                };
                match step {
                    Some(v) => {
                        walk.push(v);
                        prev = Some(cur);
                        cur = v;
                    }
                    None => break,
                }
            }
            walk
        });
        train_on_walks(graph, &walks, dim, &self.cfg, rng)
    }
}

/// LINE: first/second-order proximity via direct edge sampling (no walks);
/// each sampled link is a positive skip-gram pair.
#[derive(Clone, Debug)]
pub struct Line {
    /// Number of link samples per link in the graph.
    pub samples_per_link: usize,
    /// SGNS parameters.
    pub sgns: SkipGramConfig,
}

impl Default for Line {
    fn default() -> Self {
        Line {
            samples_per_link: 40,
            sgns: SkipGramConfig::default(),
        }
    }
}

impl GraphEmbedder for Line {
    fn embed(&self, graph: &EmbedGraph, dim: usize, rng: &mut StdRng) -> Tensor {
        // Alias-free weighted edge sampling: cumulative weights.
        let links: Vec<(usize, usize, f64)> = graph.links().collect();
        if links.is_empty() {
            return Tensor::zeros(&[graph.num_nodes(), dim]);
        }
        let mut cum = Vec::with_capacity(links.len());
        let mut acc = 0.0;
        for &(_, _, w) in &links {
            acc += w;
            cum.push(acc);
        }
        let total = acc;
        let n_samples = self.samples_per_link * links.len();
        let mut pairs = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let r = rng.gen_range(0.0..total);
            let idx = cum.partition_point(|&c| c < r).min(links.len() - 1);
            let (u, v, _) = links[idx];
            pairs.push((u, v));
        }
        let mut model = SkipGramModel::new(graph, dim, self.sgns.clone(), rng);
        model.train_pairs(&pairs, rng);
        model.embeddings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_tensor::rng_from_seed;

    /// Ring of 12 nodes: neighbors should embed closer than antipodes.
    fn ring(n: usize) -> EmbedGraph {
        let mut g = EmbedGraph::with_nodes(n);
        for i in 0..n {
            g.add_link(i, (i + 1) % n, 1.0);
            g.add_link((i + 1) % n, i, 1.0);
        }
        g
    }

    fn cosine(e: &Tensor, a: usize, b: usize) -> f32 {
        let (ra, rb) = (e.row(a), e.row(b));
        let dot: f32 = ra.iter().zip(rb).map(|(&x, &y)| x * y).sum();
        let na: f32 = ra.iter().map(|&x| x * x).sum::<f32>().sqrt();
        let nb: f32 = rb.iter().map(|&x| x * x).sum::<f32>().sqrt();
        dot / (na * nb).max(1e-12)
    }

    fn neighbors_closer_than_antipodes(e: &Tensor, n: usize) -> bool {
        let mut near = 0.0;
        let mut far = 0.0;
        for i in 0..n {
            near += cosine(e, i, (i + 1) % n);
            far += cosine(e, i, (i + n / 2) % n);
        }
        near / n as f32 > far / n as f32 + 0.1
    }

    #[test]
    fn deepwalk_ring_structure() {
        let g = ring(12);
        let mut rng = rng_from_seed(1);
        let e = DeepWalk::default().embed(&g, 8, &mut rng);
        assert_eq!(e.dims(), &[12, 8]);
        assert!(neighbors_closer_than_antipodes(&e, 12));
    }

    #[test]
    fn node2vec_ring_structure() {
        let g = ring(12);
        let mut rng = rng_from_seed(2);
        let e = Node2Vec::default().embed(&g, 8, &mut rng);
        assert!(neighbors_closer_than_antipodes(&e, 12));
    }

    #[test]
    fn line_ring_structure() {
        // LINE only sees direct links (first-order proximity), so the ring
        // signal is weaker than for walk-based methods; give it more
        // samples and require a smaller margin.
        let g = ring(12);
        let mut rng = rng_from_seed(3);
        let line = Line {
            samples_per_link: 150,
            sgns: SkipGramConfig::default(),
        };
        let e = line.embed(&g, 8, &mut rng);
        let n = 12;
        let mut near = 0.0;
        let mut far = 0.0;
        for i in 0..n {
            near += cosine(&e, i, (i + 1) % n);
            far += cosine(&e, i, (i + n / 2) % n);
        }
        assert!(
            near / n as f32 > far / n as f32,
            "near {} vs far {}",
            near / n as f32,
            far / n as f32
        );
    }

    #[test]
    fn walks_respect_weights() {
        // Node 0 links to 1 (weight 99) and 2 (weight 1): walks must pick 1
        // overwhelmingly.
        let mut g = EmbedGraph::with_nodes(3);
        g.add_link(0, 1, 99.0);
        g.add_link(0, 2, 1.0);
        let mut rng = rng_from_seed(4);
        let mut to1 = 0;
        for _ in 0..500 {
            if weighted_step(&g, 0, |_| 1.0, &mut rng) == Some(1) {
                to1 += 1;
            }
        }
        assert!(to1 > 450, "only {to1}/500 steps to the heavy neighbor");
    }

    #[test]
    fn pairs_window() {
        let walks = vec![vec![0, 1, 2, 3]];
        let pairs = walks_to_pairs(&walks, 1);
        assert!(pairs.contains(&(1, 0)));
        assert!(pairs.contains(&(1, 2)));
        assert!(!pairs.contains(&(0, 2)));
        assert_eq!(pairs.len(), 6);
    }

    #[test]
    fn walks_are_thread_count_independent() {
        // The walk set must be a pure function of the incoming RNG state,
        // regardless of how many workers generate it.
        let g = ring(12);
        let walk_of = |start: usize, wrng: &mut StdRng| {
            let mut walk = vec![start];
            let mut cur = start;
            for _ in 1..10 {
                match weighted_step(&g, cur, |_| 1.0, wrng) {
                    Some(v) => {
                        walk.push(v);
                        cur = v;
                    }
                    None => break,
                }
            }
            walk
        };
        let walks_at = |threads: usize| {
            let mut rng = rng_from_seed(9);
            walks_with_threads(&g, 4, &mut rng, threads, walk_of)
        };
        let one = walks_at(1);
        assert_eq!(one.len(), 48);
        for threads in [2, 3, 7] {
            assert_eq!(one, walks_at(threads), "threads={threads}");
        }
    }

    #[test]
    fn dead_end_walks_truncate() {
        let mut g = EmbedGraph::with_nodes(3);
        g.add_link(0, 1, 1.0); // 1 and 2 are sinks
        let mut rng = rng_from_seed(5);
        let e = DeepWalk::default().embed(&g, 4, &mut rng);
        assert_eq!(e.dims(), &[3, 4]);
    }

    #[test]
    fn node2vec_bias_avoids_backtracking() {
        // Path graph 0-1-2; from 1 arriving from 0, high p discourages
        // returning to 0.
        let mut g = EmbedGraph::with_nodes(3);
        g.add_link(1, 0, 1.0);
        g.add_link(1, 2, 1.0);
        let n2v = Node2Vec {
            cfg: WalkConfig::default(),
            p: 100.0,
            q: 1.0,
        };
        let mut rng = rng_from_seed(6);
        let mut returns = 0;
        for _ in 0..300 {
            let step = weighted_step(
                &g,
                1,
                |v| {
                    if v == 0 {
                        1.0 / n2v.p
                    } else if g.has_link(0, v) {
                        1.0
                    } else {
                        1.0 / n2v.q
                    }
                },
                &mut rng,
            );
            if step == Some(0) {
                returns += 1;
            }
        }
        assert!(returns < 30, "{returns}/300 backtracks despite p=100");
    }
}

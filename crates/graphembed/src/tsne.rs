//! Exact 1-D t-SNE, used to project the 2016 time-slot embeddings into the
//! Fig. 14b heat map. At ~2000 points the exact O(n²) algorithm runs in
//! well under a second, so no Barnes–Hut approximation is needed.

use deepod_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// t-SNE hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub lr: f64,
    /// Early-exaggeration factor applied for the first quarter of training.
    pub exaggeration: f64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 30.0,
            iterations: 300,
            lr: 50.0,
            exaggeration: 4.0,
        }
    }
}

/// Binary-searches the Gaussian bandwidth for one point so the conditional
/// distribution hits the target perplexity; returns the row of p_{j|i}.
fn conditional_probs(d2_row: &[f64], i: usize, perplexity: f64) -> Vec<f64> {
    let n = d2_row.len();
    let target_entropy = perplexity.ln();
    let (mut beta_lo, mut beta_hi) = (1e-12f64, 1e12f64);
    let mut beta = 1.0f64;
    let mut probs = vec![0.0; n];
    for _ in 0..64 {
        let mut sum = 0.0;
        for j in 0..n {
            probs[j] = if j == i {
                0.0
            } else {
                (-beta * d2_row[j]).exp()
            };
            sum += probs[j];
        }
        if sum <= 0.0 {
            beta_hi = beta;
            beta = 0.5 * (beta_lo + beta_hi);
            continue;
        }
        let mut entropy = 0.0;
        for p in probs.iter_mut() {
            *p /= sum;
            if *p > 1e-12 {
                entropy -= *p * p.ln();
            }
        }
        if (entropy - target_entropy).abs() < 1e-4 {
            break;
        }
        if entropy > target_entropy {
            beta_lo = beta;
            beta = if beta_hi >= 1e12 {
                beta * 2.0
            } else {
                0.5 * (beta_lo + beta_hi)
            };
        } else {
            beta_hi = beta;
            beta = 0.5 * (beta_lo + beta_hi);
        }
    }
    probs
}

/// Projects the rows of a `[n, d]` embedding matrix onto `dim`-D with
/// t-SNE. Returns row-major coordinates (`n × dim`).
pub fn tsne(embeddings: &Tensor, dim: usize, cfg: &TsneConfig, rng: &mut StdRng) -> Vec<f64> {
    assert!(dim >= 1, "target dimension must be >= 1");
    run_tsne(embeddings, dim, cfg, rng)
}

/// Projects the rows of a `[n, d]` embedding matrix onto 1-D with t-SNE.
/// Returns one coordinate per row.
pub fn tsne_1d(embeddings: &Tensor, cfg: &TsneConfig, rng: &mut StdRng) -> Vec<f64> {
    run_tsne(embeddings, 1, cfg, rng)
}

fn run_tsne(embeddings: &Tensor, odim: usize, cfg: &TsneConfig, rng: &mut StdRng) -> Vec<f64> {
    assert_eq!(embeddings.rank(), 2, "tsne input must be [n, d]");
    let n = embeddings.dim(0);
    if n <= 1 {
        return vec![0.0; n * odim];
    }
    let d = embeddings.dim(1);
    let x = embeddings.as_slice();

    // Pairwise squared distances in the high-dimensional space.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let mut s = 0.0f64;
            for k in 0..d {
                let diff = (x[i * d + k] - x[j * d + k]) as f64;
                s += diff * diff;
            }
            d2[i * n + j] = s;
            d2[j * n + i] = s;
        }
    }

    // Symmetrized joint probabilities.
    let perplexity = cfg.perplexity.min((n as f64 - 1.0) / 3.0).max(2.0);
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let row = conditional_probs(&d2[i * n..(i + 1) * n], i, perplexity);
        for j in 0..n {
            p[i * n + j] = row[j];
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let v = (p[i * n + j] + p[j * n + i]) / (2.0 * n as f64);
            p[i * n + j] = v.max(1e-12);
            p[j * n + i] = p[i * n + j];
        }
        p[i * n + i] = 0.0;
    }

    // odim-D embedding, gradient descent with momentum.
    let mut y: Vec<f64> = (0..n * odim).map(|_| rng.gen_range(-1e-2..1e-2)).collect();
    let mut vel = vec![0.0f64; n * odim];
    let exag_end = cfg.iterations / 4;

    for iter in 0..cfg.iterations {
        let exag = if iter < exag_end {
            cfg.exaggeration
        } else {
            1.0
        };
        // Student-t affinities.
        let mut qnum = vec![0.0f64; n * n];
        let mut qsum = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let mut d2 = 0.0;
                for k in 0..odim {
                    let diff = y[i * odim + k] - y[j * odim + k];
                    d2 += diff * diff;
                }
                let v = 1.0 / (1.0 + d2);
                qnum[i * n + j] = v;
                qnum[j * n + i] = v;
                qsum += 2.0 * v;
            }
        }
        let qsum = qsum.max(1e-12);

        let momentum = if iter < 40 { 0.5 } else { 0.8 };
        for i in 0..n {
            let mut grad = vec![0.0f64; odim];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = (qnum[i * n + j] / qsum).max(1e-12);
                let mult = (exag * p[i * n + j] - q) * qnum[i * n + j];
                for k in 0..odim {
                    grad[k] += 4.0 * mult * (y[i * odim + k] - y[j * odim + k]);
                }
            }
            for k in 0..odim {
                vel[i * odim + k] = momentum * vel[i * odim + k] - cfg.lr * grad[k];
            }
        }
        for (yv, v) in y.iter_mut().zip(&vel) {
            *yv += v;
        }
        // Re-center per output dimension.
        for k in 0..odim {
            let mean = (0..n).map(|i| y[i * odim + k]).sum::<f64>() / n as f64;
            for i in 0..n {
                y[i * odim + k] -= mean;
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_tensor::rng_from_seed;

    #[test]
    fn separates_two_gaussian_clusters() {
        let mut rng = rng_from_seed(1);
        let n_per = 20;
        let mut data = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                for k in 0..4 {
                    let center = if c == 0 { 0.0 } else { 8.0 };
                    let jitter: f32 = rng.gen_range(-0.5..0.5);
                    data.push(center + jitter + k as f32 * 0.0);
                }
            }
        }
        let emb = Tensor::from_vec(data, &[2 * n_per, 4]);
        let y = tsne_1d(
            &emb,
            &TsneConfig {
                iterations: 250,
                ..Default::default()
            },
            &mut rng,
        );

        let m0: f64 = y[..n_per].iter().sum::<f64>() / n_per as f64;
        let m1: f64 = y[n_per..].iter().sum::<f64>() / n_per as f64;
        let spread0 =
            (y[..n_per].iter().map(|v| (v - m0).powi(2)).sum::<f64>() / n_per as f64).sqrt();
        let spread1 =
            (y[n_per..].iter().map(|v| (v - m1).powi(2)).sum::<f64>() / n_per as f64).sqrt();
        assert!(
            (m0 - m1).abs() > 2.0 * (spread0 + spread1),
            "clusters overlap: means {m0:.2}/{m1:.2}, spreads {spread0:.2}/{spread1:.2}"
        );
    }

    #[test]
    fn output_centered_and_sized() {
        let mut rng = rng_from_seed(2);
        let emb = Tensor::rand_uniform(&[15, 3], -1.0, 1.0, &mut rng);
        let y = tsne_1d(&emb, &TsneConfig::default(), &mut rng);
        assert_eq!(y.len(), 15);
        let mean = y.iter().sum::<f64>() / 15.0;
        assert!(mean.abs() < 1e-6, "not centered: {mean}");
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = rng_from_seed(3);
        assert_eq!(
            tsne_1d(&Tensor::zeros(&[1, 4]), &TsneConfig::default(), &mut rng),
            vec![0.0]
        );
        let y = tsne_1d(&Tensor::zeros(&[0, 4]), &TsneConfig::default(), &mut rng);
        assert!(y.is_empty());
    }

    #[test]
    fn perplexity_search_returns_distribution() {
        let d2 = vec![0.0, 1.0, 4.0, 9.0, 16.0];
        let p = conditional_probs(&d2, 0, 2.0);
        assert_eq!(p[0], 0.0);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "not normalized: {sum}");
        assert!(p[1] > p[4], "closer points must get higher probability");
    }
}

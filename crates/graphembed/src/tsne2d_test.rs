//! 2-D t-SNE cluster separation test (the N-D generalization).

use crate::tsne::{tsne, TsneConfig};
use deepod_tensor::{rng_from_seed, Tensor};
use rand::Rng;

#[test]
fn tsne_2d_separates_three_clusters() {
    let mut rng = rng_from_seed(5);
    let n_per = 15;
    let mut data = Vec::new();
    for c in 0..3 {
        for _ in 0..n_per {
            for _ in 0..4 {
                let center = c as f32 * 9.0;
                data.push(center + rng.gen_range(-0.5..0.5));
            }
        }
    }
    let emb = Tensor::from_vec(data, &[3 * n_per, 4]);
    let y = tsne(
        &emb,
        2,
        &TsneConfig {
            iterations: 250,
            ..Default::default()
        },
        &mut rng,
    );
    assert_eq!(y.len(), 3 * n_per * 2);

    // Cluster centroids must be pairwise farther apart than the mean
    // intra-cluster spread.
    let centroid = |c: usize| -> (f64, f64) {
        let xs: f64 = (0..n_per).map(|i| y[(c * n_per + i) * 2]).sum();
        let ys: f64 = (0..n_per).map(|i| y[(c * n_per + i) * 2 + 1]).sum();
        (xs / n_per as f64, ys / n_per as f64)
    };
    let spread = |c: usize| -> f64 {
        let (cx, cy) = centroid(c);
        ((0..n_per)
            .map(|i| {
                let dx = y[(c * n_per + i) * 2] - cx;
                let dy = y[(c * n_per + i) * 2 + 1] - cy;
                dx * dx + dy * dy
            })
            .sum::<f64>()
            / n_per as f64)
            .sqrt()
    };
    for a in 0..3 {
        for b in (a + 1)..3 {
            let (ax, ay) = centroid(a);
            let (bx, by) = centroid(b);
            let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
            assert!(
                dist > 1.5 * (spread(a) + spread(b)),
                "clusters {a}/{b} overlap: dist {dist:.2}, spreads {:.2}/{:.2}",
                spread(a),
                spread(b)
            );
        }
    }
}

//! Skip-gram with negative sampling (SGNS): the shared training core of
//! DeepWalk, node2vec and LINE.
//!
//! Two embedding tables (input and output vectors) trained by logistic
//! loss over (center, context) pairs with `k` negative samples each; the
//! input table is returned as the node embedding. Plain SGD, as in the
//! original word2vec formulation — no autograd needed at this scale.

use crate::graph::EmbedGraph;
use deepod_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// SGNS hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SkipGramConfig {
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate (linearly decayed to 10 %).
    pub lr: f32,
    /// Training epochs over the supplied pair stream.
    pub epochs: usize,
}

impl Default for SkipGramConfig {
    fn default() -> Self {
        SkipGramConfig {
            negatives: 5,
            lr: 0.025,
            epochs: 3,
        }
    }
}

/// The two-table SGNS model.
pub struct SkipGramModel {
    input: Vec<f32>,
    output: Vec<f32>,
    dim: usize,
    n: usize,
    neg_table: Vec<usize>,
    cfg: SkipGramConfig,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl SkipGramModel {
    /// Initializes tables for `graph` with small random input vectors.
    pub fn new(graph: &EmbedGraph, dim: usize, cfg: SkipGramConfig, rng: &mut StdRng) -> Self {
        let n = graph.num_nodes();
        let mut input = vec![0.0f32; n * dim];
        for v in &mut input {
            *v = (rng.gen::<f32>() - 0.5) / dim as f32;
        }
        let output = vec![0.0f32; n * dim];
        let neg_table = graph.negative_sampling_table(100_000.min(50 * n + 1000));
        SkipGramModel {
            input,
            output,
            dim,
            n,
            neg_table,
            cfg,
        }
    }

    /// One SGD update on a positive (center, context) pair plus sampled
    /// negatives. Returns the pair loss (for monitoring).
    pub fn train_pair(&mut self, center: usize, context: usize, lr: f32, rng: &mut StdRng) -> f32 {
        debug_assert!(center < self.n && context < self.n);
        let d = self.dim;
        let ci = center * d;
        let mut grad_center = vec![0.0f32; d];
        let mut loss = 0.0f32;

        // Positive + negatives share the same inner loop; label 1 then 0s.
        let update = |this: &mut Self, target: usize, label: f32, grad_center: &mut [f32]| {
            let ti = target * d;
            let dot: f32 = (0..d)
                .map(|k| this.input[ci + k] * this.output[ti + k])
                .sum();
            let p = sigmoid(dot);
            let g = (p - label) * lr;
            for (k, gc) in grad_center.iter_mut().enumerate() {
                *gc += g * this.output[ti + k];
                this.output[ti + k] -= g * this.input[ci + k];
            }
            -(if label > 0.5 { p } else { 1.0 - p }).max(1e-7).ln()
        };

        loss += update(self, context, 1.0, &mut grad_center);
        for _ in 0..self.cfg.negatives {
            let neg = self.neg_table[rng.gen_range(0..self.neg_table.len())];
            if neg == context {
                continue;
            }
            loss += update(self, neg, 0.0, &mut grad_center);
        }
        for (k, &gc) in grad_center.iter().enumerate() {
            self.input[ci + k] -= gc;
        }
        loss
    }

    /// Trains over a stream of positive pairs for the configured number of
    /// epochs with linear LR decay; `pairs` is re-iterated per epoch.
    pub fn train_pairs(&mut self, pairs: &[(usize, usize)], rng: &mut StdRng) {
        let total = (pairs.len() * self.cfg.epochs).max(1);
        let mut seen = 0usize;
        for _ in 0..self.cfg.epochs {
            for &(c, x) in pairs {
                let progress = seen as f32 / total as f32;
                let lr = self.cfg.lr * (1.0 - 0.9 * progress);
                self.train_pair(c, x, lr, rng);
                seen += 1;
            }
        }
    }

    /// The input-table embeddings as a `[n, dim]` tensor.
    pub fn embeddings(&self) -> Tensor {
        Tensor::from_vec(self.input.clone(), &[self.n, self.dim])
    }

    /// Cosine similarity between two node embeddings.
    pub fn cosine(&self, a: usize, b: usize) -> f32 {
        let d = self.dim;
        let (ai, bi) = (a * d, b * d);
        let dot: f32 = (0..d)
            .map(|k| self.input[ai + k] * self.input[bi + k])
            .sum();
        let na: f32 = (0..d)
            .map(|k| self.input[ai + k].powi(2))
            .sum::<f32>()
            .sqrt();
        let nb: f32 = (0..d)
            .map(|k| self.input[bi + k].powi(2))
            .sum::<f32>()
            .sqrt();
        dot / (na * nb).max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_tensor::rng_from_seed;

    /// Two 4-cliques joined by a single weak link: SGNS on co-occurrence
    /// pairs must place same-clique nodes closer than cross-clique nodes.
    fn two_cliques() -> (EmbedGraph, Vec<(usize, usize)>) {
        let mut g = EmbedGraph::with_nodes(8);
        let mut pairs = Vec::new();
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        g.add_link(base + i, base + j, 1.0);
                        for _ in 0..40 {
                            pairs.push((base + i, base + j));
                        }
                    }
                }
            }
        }
        g.add_link(3, 4, 1.0);
        g.add_link(4, 3, 1.0);
        pairs.push((3, 4));
        pairs.push((4, 3));
        (g, pairs)
    }

    #[test]
    fn clusters_separate_cliques() {
        let (g, mut pairs) = two_cliques();
        let mut rng = rng_from_seed(1);
        // Shuffle pairs so updates interleave.
        for i in (1..pairs.len()).rev() {
            let j = rng.gen_range(0..=i);
            pairs.swap(i, j);
        }
        let mut m = SkipGramModel::new(&g, 8, SkipGramConfig::default(), &mut rng);
        m.train_pairs(&pairs, &mut rng);

        let within = (m.cosine(0, 1) + m.cosine(1, 2) + m.cosine(5, 6)) / 3.0;
        let across = (m.cosine(0, 5) + m.cosine(1, 6) + m.cosine(2, 7)) / 3.0;
        assert!(
            within > across + 0.2,
            "within {within:.3} should exceed across {across:.3}"
        );
    }

    #[test]
    fn embeddings_shape() {
        let (g, _) = two_cliques();
        let mut rng = rng_from_seed(2);
        let m = SkipGramModel::new(&g, 16, SkipGramConfig::default(), &mut rng);
        let e = m.embeddings();
        assert_eq!(e.dims(), &[8, 16]);
    }

    #[test]
    fn loss_decreases_on_repeated_pair() {
        let (g, _) = two_cliques();
        let mut rng = rng_from_seed(3);
        let mut m = SkipGramModel::new(&g, 8, SkipGramConfig::default(), &mut rng);
        let first = m.train_pair(0, 1, 0.05, &mut rng);
        for _ in 0..200 {
            m.train_pair(0, 1, 0.05, &mut rng);
        }
        let last = m.train_pair(0, 1, 0.05, &mut rng);
        assert!(last < first, "loss should shrink: {first} -> {last}");
    }
}

//! Generic weighted directed graph consumed by the embedding methods.
//!
//! Both inputs DeepOD embeds — the road-segment line graph (§4.1) and the
//! temporal graph (§4.2) — are converted into this adjacency-list form.

use serde::{Deserialize, Serialize};

/// A weighted directed graph with `usize` node ids `0..n`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EmbedGraph {
    /// `adj[u]` = list of `(v, weight)` out-links.
    adj: Vec<Vec<(usize, f64)>>,
}

impl EmbedGraph {
    /// Creates an empty graph with `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        EmbedGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds a weighted directed link.
    pub fn add_link(&mut self, u: usize, v: usize, weight: f64) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        assert!(weight > 0.0, "weights must be positive");
        self.adj[u].push((v, weight));
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Out-links of `u`.
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Out-degree (link count) of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Total out-weight of `u`.
    pub fn out_weight(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|&(_, w)| w).sum()
    }

    /// All links as `(u, v, w)` triples (LINE's edge sampling).
    pub fn links(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, ls)| ls.iter().map(move |&(v, w)| (u, v, w)))
    }

    /// True if a link `u -> v` exists (used by node2vec's return bias).
    pub fn has_link(&self, u: usize, v: usize) -> bool {
        self.adj[u].iter().any(|&(x, _)| x == v)
    }

    /// Unigram node distribution ∝ (total out-weight)^0.75, the standard
    /// negative-sampling distribution.
    pub fn negative_sampling_table(&self, table_size: usize) -> Vec<usize> {
        let pow: Vec<f64> = (0..self.num_nodes())
            .map(|u| self.out_weight(u).max(1e-3).powf(0.75))
            .collect();
        let total: f64 = pow.iter().sum();
        let mut table = Vec::with_capacity(table_size);
        for (u, &p) in pow.iter().enumerate() {
            let count = deepod_tensor::ceil_count((p / total) * table_size as f64);
            for _ in 0..count {
                if table.len() >= table_size {
                    break;
                }
                table.push(u);
            }
        }
        while table.len() < table_size {
            table.push(table.len() % self.num_nodes());
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> EmbedGraph {
        let mut g = EmbedGraph::with_nodes(3);
        g.add_link(0, 1, 1.0);
        g.add_link(1, 2, 2.0);
        g.add_link(2, 0, 3.0);
        g
    }

    #[test]
    fn construction() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_links(), 3);
        assert_eq!(g.neighbors(1), &[(2, 2.0)]);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_weight(2), 3.0);
        assert!(g.has_link(0, 1));
        assert!(!g.has_link(1, 0));
    }

    #[test]
    fn links_iterator() {
        let g = triangle();
        let links: Vec<_> = g.links().collect();
        assert_eq!(links.len(), 3);
        assert!(links.contains(&(1, 2, 2.0)));
    }

    #[test]
    fn negative_table_covers_all_nodes() {
        let g = triangle();
        let t = g.negative_sampling_table(1000);
        assert_eq!(t.len(), 1000);
        for u in 0..3 {
            assert!(t.contains(&u), "node {u} missing from table");
        }
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let mut g = EmbedGraph::with_nodes(2);
        g.add_link(0, 1, 0.0);
    }
}

//! Time-of-week congestion and the combined ground-truth traffic model.
//!
//! The congestion profile reproduces the structure of the paper's Fig. 5a:
//! weekday mornings and evenings have pronounced rush-hour peaks, weekends
//! a flatter midday bump; the profile repeats weekly. The combined
//! [`TrafficModel`] multiplies free-flow speed by congestion, weather and a
//! fixed per-road factor, plus smooth per-road noise so two roads of the
//! same class still differ — exactly the variation DeepOD's road-segment
//! embeddings are supposed to absorb.

use crate::incidents::IncidentModel;
use crate::weather::WeatherProcess;
use deepod_roadnet::{EdgeId, RoadNetwork};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Seconds in one day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;
/// Seconds in one week.
pub const SECONDS_PER_WEEK: f64 = 7.0 * SECONDS_PER_DAY;

/// Deterministic time-of-week congestion profile: a speed multiplier in
/// `(0, 1]` as a function of the time of week.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CongestionModel {
    /// Depth of the weekday morning rush (0 = none).
    pub morning_depth: f64,
    /// Depth of the weekday evening rush.
    pub evening_depth: f64,
    /// Depth of the weekend midday bump.
    pub weekend_depth: f64,
    /// Depth of the overnight near-free-flow "negative congestion" bonus.
    pub night_bonus: f64,
}

impl Default for CongestionModel {
    fn default() -> Self {
        CongestionModel {
            morning_depth: 0.45,
            evening_depth: 0.50,
            weekend_depth: 0.25,
            night_bonus: 0.05,
        }
    }
}

fn gaussian_bump(hour: f64, center: f64, width: f64) -> f64 {
    let d = hour - center;
    (-(d * d) / (2.0 * width * width)).exp()
}

impl CongestionModel {
    /// Speed multiplier at absolute time `t` seconds (period: one week,
    /// week starts Monday 00:00).
    pub fn speed_factor(&self, t: f64) -> f64 {
        let tow = t.rem_euclid(SECONDS_PER_WEEK);
        let day = (tow / SECONDS_PER_DAY) as usize; // 0 = Monday
        let hour = (tow % SECONDS_PER_DAY) / 3600.0;
        let weekend = day >= 5;

        let mut slowdown = 0.0;
        if weekend {
            slowdown += self.weekend_depth * gaussian_bump(hour, 13.0, 3.0);
            // Milder evening activity on weekends.
            slowdown += 0.5 * self.weekend_depth * gaussian_bump(hour, 19.0, 2.0);
        } else {
            slowdown += self.morning_depth * gaussian_bump(hour, 8.0, 1.3);
            slowdown += self.evening_depth * gaussian_bump(hour, 18.0, 1.6);
            // Fridays bleed into a longer evening peak.
            if day == 4 {
                slowdown += 0.15 * self.evening_depth * gaussian_bump(hour, 20.5, 1.5);
            }
        }
        // Overnight bonus: slightly faster than nominal free flow.
        let night = gaussian_bump(hour, 3.0, 2.0);
        let factor = (1.0 - slowdown) * (1.0 + self.night_bonus * night);
        factor.clamp(0.15, 1.1)
    }
}

/// The full ground-truth traffic model used by the trip simulator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrafficModel {
    congestion: CongestionModel,
    weather: WeatherProcess,
    incidents: IncidentModel,
    /// Per-road static speed factor in `[0.8, 1.2]` (quality, lanes, …).
    road_factor: Vec<f64>,
    /// Per-road phase for smooth temporal noise.
    road_phase: Vec<f64>,
    /// Amplitude of the per-road temporal noise.
    noise_amp: f64,
}

impl TrafficModel {
    /// Builds a model for `net` with sampled per-road heterogeneity.
    pub fn new(
        net: &RoadNetwork,
        congestion: CongestionModel,
        weather: WeatherProcess,
        rng: &mut StdRng,
    ) -> Self {
        let n = net.num_edges();
        let road_factor = (0..n).map(|_| rng.gen_range(0.8..1.2)).collect();
        let road_phase = (0..n)
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect();
        TrafficModel {
            congestion,
            weather,
            incidents: IncidentModel::none(),
            road_factor,
            road_phase,
            noise_amp: 0.06,
        }
    }

    /// Attaches a stochastic incident timeline (accidents/closures) to the
    /// model; see [`IncidentModel`].
    pub fn with_incidents(mut self, incidents: IncidentModel) -> Self {
        self.incidents = incidents;
        self
    }

    /// Ground-truth speed (m/s) on edge `e` at absolute time `t`.
    pub fn speed(&self, net: &RoadNetwork, e: EdgeId, t: f64) -> f64 {
        let edge = net.edge(e);
        let base = edge.class.free_flow_speed();
        let sens = edge.class.congestion_sensitivity();
        let cong = self.congestion.speed_factor(t);
        // Sensitivity interpolates between full congestion and none.
        let cong = 1.0 - sens * (1.0 - cong);
        let wea = self.weather.speed_factor(t);
        // Smooth pseudo-random temporal ripple, period ~35 min, per-road phase.
        let ripple = 1.0
            + self.noise_amp
                * (t / 2100.0 * std::f64::consts::TAU + self.road_phase[e.idx()]).sin();
        let inc = if self.incidents.is_empty() {
            1.0
        } else {
            self.incidents.factor_at(&net.edge_midpoint(e), t)
        };
        (base * self.road_factor[e.idx()] * cong * wea * ripple * inc).max(0.5)
    }

    /// The incident timeline backing this model.
    pub fn incidents(&self) -> &IncidentModel {
        &self.incidents
    }

    /// Ground-truth traversal time (s) of edge `e` when entered at `t`,
    /// integrated across speed changes at 60 s resolution (speeds change
    /// smoothly, so piecewise-constant integration at 1 min is accurate to
    /// well under a percent).
    pub fn traversal_time(&self, net: &RoadNetwork, e: EdgeId, t: f64) -> f64 {
        let mut remaining = net.edge(e).length;
        let mut now = t;
        let step = 60.0;
        let mut total = 0.0;
        // Hard cap to keep pathological configurations finite.
        for _ in 0..10_000 {
            let v = self.speed(net, e, now);
            let can = v * step;
            if can >= remaining {
                total += remaining / v;
                return total;
            }
            remaining -= can;
            total += step;
            now += step;
        }
        total
    }

    /// The weather process backing this model.
    pub fn weather(&self) -> &WeatherProcess {
        &self.weather
    }

    /// The congestion profile backing this model.
    pub fn congestion(&self) -> &CongestionModel {
        &self.congestion
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::{CityConfig, CityProfile};
    use deepod_tensor::rng_from_seed;

    fn hour_on(day: usize, hour: f64) -> f64 {
        day as f64 * SECONDS_PER_DAY + hour * 3600.0
    }

    #[test]
    fn rush_hours_slower_than_night() {
        let c = CongestionModel::default();
        let rush = c.speed_factor(hour_on(1, 8.0)); // Tuesday 8 am
        let night = c.speed_factor(hour_on(1, 3.0)); // Tuesday 3 am
        let evening = c.speed_factor(hour_on(1, 18.0));
        assert!(rush < 0.7, "morning rush factor {rush}");
        assert!(evening < 0.7, "evening rush factor {evening}");
        assert!(night > 0.95, "night factor {night}");
    }

    #[test]
    fn weekly_periodicity_exact() {
        let c = CongestionModel::default();
        for h in [0.0, 8.0, 13.5, 18.0, 23.0] {
            let a = c.speed_factor(hour_on(2, h));
            let b = c.speed_factor(hour_on(2, h) + SECONDS_PER_WEEK);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn weekday_weekend_differ() {
        let c = CongestionModel::default();
        let tue_8 = c.speed_factor(hour_on(1, 8.0));
        let sat_8 = c.speed_factor(hour_on(5, 8.0));
        assert!(sat_8 > tue_8 + 0.1, "Saturday 8 am should be much freer");
        let sat_13 = c.speed_factor(hour_on(5, 13.0));
        assert!(sat_13 < sat_8, "weekend midday bump missing");
    }

    #[test]
    fn traffic_model_speed_bounds_and_determinism() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut rng = rng_from_seed(5);
        let weather = WeatherProcess::constant_clear(SECONDS_PER_WEEK, 300.0);
        let tm = TrafficModel::new(&net, CongestionModel::default(), weather, &mut rng);
        for i in (0..net.num_edges()).step_by(37) {
            let e = EdgeId(i as u32);
            for t in [0.0, hour_on(1, 8.0), hour_on(6, 14.0)] {
                let v = tm.speed(&net, e, t);
                assert!((0.5..=35.0).contains(&v), "speed {v}");
                assert_eq!(v, tm.speed(&net, e, t), "speed must be deterministic");
            }
        }
    }

    #[test]
    fn traversal_time_close_to_length_over_speed_for_short_edges() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut rng = rng_from_seed(6);
        let weather = WeatherProcess::constant_clear(SECONDS_PER_WEEK, 300.0);
        let tm = TrafficModel::new(&net, CongestionModel::default(), weather, &mut rng);
        let e = EdgeId(0);
        let t0 = hour_on(2, 11.0);
        let tt = tm.traversal_time(&net, e, t0);
        let approx = net.edge(e).length / tm.speed(&net, e, t0);
        assert!(
            (tt - approx).abs() / approx < 0.1,
            "tt {tt} vs approx {approx}"
        );
        assert!(tt > 0.0);
    }

    #[test]
    fn rush_hour_trip_takes_longer() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut rng = rng_from_seed(7);
        let weather = WeatherProcess::constant_clear(SECONDS_PER_WEEK, 300.0);
        let tm = TrafficModel::new(&net, CongestionModel::default(), weather, &mut rng);
        // Pick an arterial edge: most congestion-sensitive after highways.
        let e = (0..net.num_edges())
            .map(|i| EdgeId(i as u32))
            .find(|&e| net.edge(e).class == deepod_roadnet::RoadClass::Arterial)
            .unwrap();
        let rush = tm.traversal_time(&net, e, hour_on(1, 8.0));
        let night = tm.traversal_time(&net, e, hour_on(1, 3.0));
        assert!(rush > night * 1.3, "rush {rush} vs night {night}");
    }
}

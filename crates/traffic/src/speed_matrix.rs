//! Grid speed matrices — the "current traffic condition" external feature
//! of §4.5: the city is split into fixed-size grid cells and the average
//! observed speed per cell is recorded every Δt minutes; the matrix nearest
//! before a trip's departure time is fed to the External Features Encoder.

use deepod_roadnet::{Point, RoadNetwork};
use deepod_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Accumulates speed observations into per-(slot, cell) averages.
#[derive(Clone, Debug)]
pub struct SpeedMatrixBuilder {
    min: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    slot_len: f64,
    num_slots: usize,
    sums: Vec<f64>,
    counts: Vec<u32>,
}

impl SpeedMatrixBuilder {
    /// Creates a builder over the network's bounding box with `cell`-meter
    /// cells, `slot_len`-second slots, covering `[0, horizon)` seconds.
    pub fn new(net: &RoadNetwork, cell: f64, slot_len: f64, horizon: f64) -> Self {
        assert!(cell > 0.0 && slot_len > 0.0 && horizon > 0.0);
        let (min, max) = net.bounding_box();
        let nx = deepod_tensor::ceil_count((max.x - min.x) / cell).max(1);
        let ny = deepod_tensor::ceil_count((max.y - min.y) / cell).max(1);
        let num_slots = deepod_tensor::ceil_count(horizon / slot_len);
        SpeedMatrixBuilder {
            min,
            cell,
            nx,
            ny,
            slot_len,
            num_slots,
            sums: vec![0.0; nx * ny * num_slots],
            counts: vec![0; nx * ny * num_slots],
        }
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Records one speed observation (m/s) at position `p`, time `t`.
    /// Observations outside the horizon are ignored.
    pub fn observe(&mut self, p: &Point, t: f64, speed: f64) {
        if t < 0.0 {
            return;
        }
        let slot = (t / self.slot_len) as usize;
        if slot >= self.num_slots {
            return;
        }
        let cx = (((p.x - self.min.x) / self.cell).max(0.0) as usize).min(self.nx - 1);
        let cy = (((p.y - self.min.y) / self.cell).max(0.0) as usize).min(self.ny - 1);
        let idx = (slot * self.ny + cy) * self.nx + cx;
        self.sums[idx] += speed;
        self.counts[idx] += 1;
    }

    /// Finalizes into a store of per-slot matrices. Empty cells get the
    /// city-wide per-slot average (falling back to the global average), so
    /// the CNN input has no holes.
    pub fn build(self) -> SpeedMatrixStore {
        let cells = self.nx * self.ny;
        let global_sum: f64 = self.sums.iter().sum();
        let global_cnt: u32 = self.counts.iter().sum();
        let global_avg = if global_cnt > 0 {
            global_sum / global_cnt as f64
        } else {
            10.0
        };

        let mut matrices = Vec::with_capacity(self.num_slots);
        for s in 0..self.num_slots {
            let base = s * cells;
            let slot_sum: f64 = self.sums[base..base + cells].iter().sum();
            let slot_cnt: u32 = self.counts[base..base + cells].iter().sum();
            let slot_avg = if slot_cnt > 0 {
                slot_sum / slot_cnt as f64
            } else {
                global_avg
            };
            let mut data = Vec::with_capacity(cells);
            for c in 0..cells {
                let v = if self.counts[base + c] > 0 {
                    self.sums[base + c] / self.counts[base + c] as f64
                } else {
                    slot_avg
                };
                data.push(v as f32);
            }
            matrices.push(Tensor::from_vec(data, &[self.ny, self.nx]));
        }
        SpeedMatrixStore {
            slot_len: self.slot_len,
            matrices,
            nx: self.nx,
            ny: self.ny,
        }
    }
}

/// Finalized per-slot speed matrices for one city.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedMatrixStore {
    slot_len: f64,
    matrices: Vec<Tensor>,
    nx: usize,
    ny: usize,
}

impl SpeedMatrixStore {
    /// The matrix nearest *before* time `t` (the paper picks the closest
    /// matrix before the departure time). Clamps to the covered range.
    pub fn nearest_before(&self, t: f64) -> &Tensor {
        let slot = if t <= 0.0 {
            0
        } else {
            (t / self.slot_len) as usize
        };
        &self.matrices[slot.min(self.matrices.len() - 1)]
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of time slots covered.
    pub fn num_slots(&self) -> usize {
        self.matrices.len()
    }

    /// Slot length in seconds.
    pub fn slot_len(&self) -> f64 {
        self.slot_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::{CityConfig, CityProfile};

    #[test]
    fn observe_and_average() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut b = SpeedMatrixBuilder::new(&net, 1000.0, 300.0, 1200.0);
        let p = net.node(deepod_roadnet::NodeId(0)).pos;
        b.observe(&p, 10.0, 10.0);
        b.observe(&p, 20.0, 20.0);
        let store = b.build();
        let m = store.nearest_before(100.0);
        // Cell containing p averaged to 15.
        assert!(m.as_slice().iter().any(|&v| (v - 15.0).abs() < 1e-4));
    }

    #[test]
    fn empty_cells_filled_with_slot_average() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut b = SpeedMatrixBuilder::new(&net, 2000.0, 300.0, 600.0);
        let p = net.node(deepod_roadnet::NodeId(0)).pos;
        b.observe(&p, 10.0, 12.0);
        let store = b.build();
        let m = store.nearest_before(0.0);
        // Every cell is either the observation or the slot average (12.0).
        assert!(m.as_slice().iter().all(|&v| (v - 12.0).abs() < 1e-4));
    }

    #[test]
    fn out_of_range_observations_ignored() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut b = SpeedMatrixBuilder::new(&net, 2000.0, 300.0, 600.0);
        let p = net.node(deepod_roadnet::NodeId(0)).pos;
        b.observe(&p, -5.0, 99.0);
        b.observe(&p, 1e9, 99.0);
        let store = b.build();
        // No observation landed: all cells fall back to the default.
        assert!(store
            .nearest_before(0.0)
            .as_slice()
            .iter()
            .all(|&v| (v - 10.0).abs() < 1e-4));
    }

    #[test]
    fn nearest_before_slot_selection() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut b = SpeedMatrixBuilder::new(&net, 2000.0, 300.0, 900.0);
        let p = net.node(deepod_roadnet::NodeId(0)).pos;
        b.observe(&p, 10.0, 5.0); // slot 0
        b.observe(&p, 400.0, 25.0); // slot 1
        let store = b.build();
        assert_eq!(store.num_slots(), 3);
        let m0 = store.nearest_before(299.0);
        let m1 = store.nearest_before(301.0);
        assert!(m0.as_slice().iter().any(|&v| (v - 5.0).abs() < 1e-4));
        assert!(m1.as_slice().iter().any(|&v| (v - 25.0).abs() < 1e-4));
        // Far future clamps to the last slot.
        let _ = store.nearest_before(1e12);
    }

    #[test]
    fn paper_grid_shape_for_200m_cells() {
        // CRN analogue with 200 m cells: grid dims follow ceil(extent/cell).
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let b = SpeedMatrixBuilder::new(&net, 200.0, 300.0, 600.0);
        let (nx, ny) = b.dims();
        let (min, max) = net.bounding_box();
        assert_eq!(nx, ((max.x - min.x) / 200.0).ceil() as usize);
        assert_eq!(ny, ((max.y - min.y) / 200.0).ceil() as usize);
    }
}

//! Traffic ground truth for the DeepOD reproduction: a congestion model
//! with the daily/weekly periodicity the paper exploits (Fig. 5a), a
//! 16-type weather process (§6.1), and grid speed matrices — the "current
//! traffic condition" external feature of §4.5.
//!
//! This crate is the substitution for the real-world traffic implicit in
//! the Didi/Beijing GPS data (DESIGN.md §2): travel speed on a road
//! segment is `free_flow(class) × congestion(time-of-week) ×
//! weather(t) × per-road factor × noise`, so travel time genuinely depends
//! on the route taken and the clock — the structure DeepOD is designed to
//! learn.

mod congestion;
mod incidents;
mod speed_matrix;
mod weather;

pub use congestion::{CongestionModel, TrafficModel, SECONDS_PER_DAY, SECONDS_PER_WEEK};
pub use incidents::{Incident, IncidentModel};
pub use speed_matrix::{SpeedMatrixBuilder, SpeedMatrixStore};
pub use weather::{WeatherProcess, WeatherType, NUM_WEATHER_TYPES};

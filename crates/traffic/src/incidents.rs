//! Stochastic traffic incidents: accidents, breakdowns and closures that
//! slow a neighborhood of roads for tens of minutes.
//!
//! Incidents are the *unpredictable* component of traffic: they cannot be
//! inferred from the clock or the weather, only observed through the live
//! speed matrices — which is precisely the information channel DeepOD's
//! External Features Encoder consumes (§4.5) and the coordinate/time
//! feature baselines do not.

use deepod_roadnet::{Point, RoadNetwork};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One incident: a localized multiplicative slowdown.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Incident {
    /// Center of the affected area.
    pub center: Point,
    /// Radius of effect in meters.
    pub radius: f64,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
    /// Speed multiplier at the center (e.g. 0.3 = heavy blockage).
    pub severity: f64,
}

impl Incident {
    /// Speed multiplier this incident applies at point `p`, time `t`
    /// (1.0 = no effect). The effect fades linearly with distance.
    pub fn factor_at(&self, p: &Point, t: f64) -> f64 {
        if t < self.start || t >= self.end {
            return 1.0;
        }
        let d = self.center.dist(p);
        if d >= self.radius {
            return 1.0;
        }
        let fade = 1.0 - d / self.radius;
        1.0 - (1.0 - self.severity) * fade
    }
}

/// A pre-sampled incident timeline for one city.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IncidentModel {
    incidents: Vec<Incident>,
}

impl IncidentModel {
    /// No incidents (ablations, deterministic tests).
    pub fn none() -> Self {
        Self::default()
    }

    /// Samples incidents over `[0, horizon)` seconds with an average of
    /// `rate_per_day` incidents per day. Durations are 20–70 minutes,
    /// radii 400–1200 m, severities 0.25–0.6.
    pub fn sample(net: &RoadNetwork, horizon: f64, rate_per_day: f64, rng: &mut StdRng) -> Self {
        let (min, max) = net.bounding_box();
        let days = horizon / 86_400.0;
        let n = deepod_tensor::round_count(days * rate_per_day);
        let incidents = (0..n)
            .map(|_| {
                let start = rng.gen_range(0.0..horizon);
                Incident {
                    center: Point::new(rng.gen_range(min.x..max.x), rng.gen_range(min.y..max.y)),
                    radius: rng.gen_range(400.0..1200.0),
                    start,
                    end: start + rng.gen_range(1200.0..4200.0),
                    severity: rng.gen_range(0.25..0.6),
                }
            })
            .collect();
        IncidentModel { incidents }
    }

    /// Number of sampled incidents.
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// True when the timeline has no incidents.
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Combined speed factor at a point and time (product over overlapping
    /// incidents, floored at 0.15).
    pub fn factor_at(&self, p: &Point, t: f64) -> f64 {
        let mut f = 1.0;
        for i in &self.incidents {
            f *= i.factor_at(p, t);
            if f <= 0.15 {
                return 0.15;
            }
        }
        f
    }

    /// All incidents active at time `t`.
    pub fn active_at(&self, t: f64) -> impl Iterator<Item = &Incident> {
        self.incidents
            .iter()
            .filter(move |i| (i.start..i.end).contains(&t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::{CityConfig, CityProfile};
    use deepod_tensor::rng_from_seed;

    fn incident() -> Incident {
        Incident {
            center: Point::new(1000.0, 1000.0),
            radius: 500.0,
            start: 100.0,
            end: 1000.0,
            severity: 0.4,
        }
    }

    #[test]
    fn factor_zero_outside_time_window() {
        let i = incident();
        let at_center = Point::new(1000.0, 1000.0);
        assert_eq!(i.factor_at(&at_center, 50.0), 1.0);
        assert_eq!(i.factor_at(&at_center, 1000.0), 1.0);
        assert!((i.factor_at(&at_center, 500.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn factor_fades_with_distance() {
        let i = incident();
        let near = i.factor_at(&Point::new(1100.0, 1000.0), 500.0);
        let far = i.factor_at(&Point::new(1450.0, 1000.0), 500.0);
        let outside = i.factor_at(&Point::new(1600.0, 1000.0), 500.0);
        assert!(near < far, "closer point should be slower");
        assert_eq!(outside, 1.0);
    }

    #[test]
    fn model_samples_expected_count() {
        let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
        let mut rng = rng_from_seed(4);
        let m = IncidentModel::sample(&net, 10.0 * 86_400.0, 3.0, &mut rng);
        assert_eq!(m.len(), 30);
        assert!(!m.is_empty());
        assert_eq!(IncidentModel::none().len(), 0);
    }

    #[test]
    fn combined_factor_floored() {
        let mut m = IncidentModel::none();
        for _ in 0..10 {
            m.incidents.push(incident());
        }
        let f = m.factor_at(&Point::new(1000.0, 1000.0), 500.0);
        assert!(f >= 0.15);
    }

    #[test]
    fn active_at_filters() {
        let m = IncidentModel {
            incidents: vec![incident()],
        };
        assert_eq!(m.active_at(500.0).count(), 1);
        assert_eq!(m.active_at(5000.0).count(), 0);
    }
}

//! Weather process: the substitution for the paper's scraped weather
//! records (§6.1 uses N_wea = 16 discrete types).
//!
//! Weather evolves as a first-order Markov chain over 16 types sampled at a
//! fixed period; each type carries a speed multiplier that feeds the ground
//! truth, so the external-feature encoder has real signal to learn.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of discrete weather types (matches the paper's N_wea = 16).
pub const NUM_WEATHER_TYPES: usize = 16;

/// A discrete weather condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct WeatherType(pub u8);

impl WeatherType {
    /// Index into one-hot encodings.
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Ground-truth speed multiplier of this weather type. Types are laid
    /// out from benign (≈1.0) to severe (≈0.55): clear variants first, then
    /// cloud/rain/snow/fog grades.
    pub fn speed_factor(self) -> f64 {
        const FACTORS: [f64; NUM_WEATHER_TYPES] = [
            1.00, 0.99, 0.98, 0.97, // clear / mostly clear
            0.95, 0.93, 0.91, // cloudy grades
            0.88, 0.84, 0.80, // light..moderate rain
            0.75, 0.70, // heavy rain / storm
            0.68, 0.62, // light / heavy snow
            0.60, 0.55, // fog / severe
        ];
        FACTORS[self.idx()]
    }

    /// Human-readable label (diagnostics and example output).
    pub fn label(self) -> &'static str {
        const LABELS: [&str; NUM_WEATHER_TYPES] = [
            "clear",
            "mostly-clear",
            "partly-cloudy",
            "hazy",
            "cloudy",
            "overcast",
            "drizzle",
            "light-rain",
            "rain",
            "moderate-rain",
            "heavy-rain",
            "storm",
            "light-snow",
            "snow",
            "fog",
            "severe",
        ];
        LABELS[self.idx()]
    }
}

/// A pre-sampled weather timeline for one city.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeatherProcess {
    /// Seconds per sample.
    period: f64,
    /// Weather type per sample, covering `[0, period * len)`.
    samples: Vec<WeatherType>,
}

impl WeatherProcess {
    /// Samples a weather timeline of `horizon` seconds with one state per
    /// `period` seconds. The chain is sticky (stays in the current state
    /// with high probability) and drifts between neighboring severities,
    /// which mimics real multi-hour weather episodes.
    pub fn sample(horizon: f64, period: f64, rng: &mut StdRng) -> Self {
        assert!(
            period > 0.0 && horizon > 0.0,
            "invalid weather horizon/period"
        );
        let n = deepod_tensor::ceil_count(horizon / period) + 1;
        let mut samples = Vec::with_capacity(n);
        let mut state: i32 = rng.gen_range(0..4); // start benign
        for _ in 0..n {
            samples.push(WeatherType(state as u8));
            let r: f64 = rng.gen();
            state = if r < 0.80 {
                state // persist
            } else if r < 0.90 {
                (state + 1).min(NUM_WEATHER_TYPES as i32 - 1) // worsen
            } else if r < 0.99 {
                (state - 1).max(0) // improve
            } else {
                rng.gen_range(0..NUM_WEATHER_TYPES as i32) // abrupt change
            };
        }
        WeatherProcess { period, samples }
    }

    /// A constant-clear process (unit tests, ablations with weather off).
    pub fn constant_clear(horizon: f64, period: f64) -> Self {
        let n = deepod_tensor::ceil_count(horizon / period) + 1;
        WeatherProcess {
            period,
            samples: vec![WeatherType(0); n],
        }
    }

    /// Weather at absolute time `t` (clamped to the sampled horizon).
    pub fn at(&self, t: f64) -> WeatherType {
        let i = if t <= 0.0 {
            0
        } else {
            (t / self.period) as usize
        };
        self.samples[i.min(self.samples.len() - 1)]
    }

    /// Ground-truth speed multiplier at time `t`.
    pub fn speed_factor(&self, t: f64) -> f64 {
        self.at(t).speed_factor()
    }

    /// Sampling period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Number of samples in the timeline.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the timeline is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_tensor::rng_from_seed;

    #[test]
    fn factors_monotone_by_severity_groups() {
        // Severe weather must be slower than clear.
        assert!(WeatherType(0).speed_factor() > WeatherType(15).speed_factor());
        for i in 0..NUM_WEATHER_TYPES {
            let f = WeatherType(i as u8).speed_factor();
            assert!((0.5..=1.0).contains(&f), "factor {f} out of range");
        }
    }

    #[test]
    fn timeline_lookup_and_clamp() {
        let w = WeatherProcess::constant_clear(3600.0, 300.0);
        assert_eq!(w.at(0.0), WeatherType(0));
        assert_eq!(w.at(-5.0), WeatherType(0));
        assert_eq!(w.at(1e9), WeatherType(0)); // clamps
        assert!((w.speed_factor(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_chain_is_sticky() {
        let mut rng = rng_from_seed(11);
        let w = WeatherProcess::sample(7.0 * 86_400.0, 1800.0, &mut rng);
        let mut changes = 0;
        let mut total = 0;
        for i in 1..w.len() {
            total += 1;
            if w.samples[i] != w.samples[i - 1] {
                changes += 1;
            }
        }
        let rate = changes as f64 / total as f64;
        assert!(rate < 0.35, "weather flips too often: {rate}");
        assert!(rate > 0.02, "weather never changes: {rate}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut r1 = rng_from_seed(3);
        let mut r2 = rng_from_seed(3);
        let a = WeatherProcess::sample(86_400.0, 600.0, &mut r1);
        let b = WeatherProcess::sample(86_400.0, 600.0, &mut r2);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn labels_unique() {
        let mut set = std::collections::HashSet::new();
        for i in 0..NUM_WEATHER_TYPES {
            set.insert(WeatherType(i as u8).label());
        }
        assert_eq!(set.len(), NUM_WEATHER_TYPES);
    }
}

//! Telemetry bridge out of the tensor layer.
//!
//! `deepod-tensor` sits at the bottom of the crate graph, so it cannot
//! depend on the metrics registry in `deepod_core::obs`. Instead it emits
//! through this narrow sink trait: a higher layer installs a forwarder
//! once per process (see `deepod_core::obs::ensure_init`), and until that
//! happens every record call is a single relaxed atomic load plus a `None`
//! check — cheap enough to leave in release kernels.
//!
//! The split mirrors the registry's determinism contract (DESIGN.md §9):
//! *counters* must be invariant under the thread count, so the parallel
//! primitives only ever report **gauges** and **histogram observations**
//! (span sizes, worker wall time), which are allowed to vary per run.

use std::sync::OnceLock;

/// Receiver for tensor-layer measurements. Implemented by the metrics
/// registry in `deepod-core`; tensor code never sees the implementation.
pub trait TelemetrySink: Sync + Send {
    /// Sets a named gauge to an absolute value.
    fn gauge_set(&self, name: &'static str, value: f64);
    /// Records one observation into a named histogram.
    fn observe(&self, name: &'static str, value: f64);
}

static SINK: OnceLock<&'static dyn TelemetrySink> = OnceLock::new();

/// Installs the process-wide sink. The first caller wins; later calls are
/// ignored so independent init paths (CLI, tests, library embedders) can
/// all race to install the same forwarder safely.
pub fn install(sink: &'static dyn TelemetrySink) {
    let _ = SINK.set(sink);
}

/// The installed sink, if any. Callers should keep measurement *collection*
/// behind this check so un-instrumented processes pay nothing.
pub fn sink() -> Option<&'static dyn TelemetrySink> {
    SINK.get().copied()
}

/// Convenience forwarder: gauge write, dropped when no sink is installed.
pub fn gauge_set(name: &'static str, value: f64) {
    if let Some(s) = sink() {
        s.gauge_set(name, value);
    }
}

/// Convenience forwarder: histogram observation, dropped when no sink is
/// installed.
pub fn observe(name: &'static str, value: f64) {
    if let Some(s) = sink() {
        s.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingSink {
        gauges: AtomicU64,
        observations: AtomicU64,
    }

    impl TelemetrySink for CountingSink {
        fn gauge_set(&self, _name: &'static str, _value: f64) {
            self.gauges.fetch_add(1, Ordering::Relaxed);
        }
        fn observe(&self, _name: &'static str, _value: f64) {
            self.observations.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn uninstalled_sink_is_inert_then_first_install_wins() {
        // Before install (in this process the test sink is the first and
        // only installer), forwarding must be a no-op rather than a panic.
        gauge_set("test.gauge", 1.0);

        static FIRST: CountingSink = CountingSink {
            gauges: AtomicU64::new(0),
            observations: AtomicU64::new(0),
        };
        static SECOND: CountingSink = CountingSink {
            gauges: AtomicU64::new(0),
            observations: AtomicU64::new(0),
        };
        install(&FIRST);
        install(&SECOND); // ignored: first install wins
        gauge_set("test.gauge", 2.0);
        observe("test.hist", 3.0);
        assert_eq!(FIRST.gauges.load(Ordering::Relaxed), 1);
        assert_eq!(FIRST.observations.load(Ordering::Relaxed), 1);
        assert_eq!(SECOND.gauges.load(Ordering::Relaxed), 0);
        assert_eq!(SECOND.observations.load(Ordering::Relaxed), 0);
    }
}

//! Dense `f32` tensors for the DeepOD travel-time-estimation stack.
//!
//! This crate is the numeric substrate every other crate in the workspace
//! builds on: row-major, contiguous, CPU-resident tensors with the exact
//! operation set DeepOD's neural encoders need (element-wise arithmetic,
//! matrix multiplication, reductions, concatenation, 2-D convolution
//! helpers, and random initialization).
//!
//! The design intentionally avoids generic element types and stride tricks:
//! everything in the paper is `f32`, and keeping the storage contiguous makes
//! the backward passes in [`deepod-nn`](../deepod_nn/index.html) simple to
//! verify against finite differences.
//!
//! # Example
//!
//! ```
//! use deepod_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

pub mod failpoint;
pub mod index;
pub mod kernels;
mod ops;
pub mod parallel;
mod random;
mod shape;
pub mod telemetry;
mod tensor;

pub use index::{ceil_count, floor_coord, floor_index, round_count};
pub use ops::Activation;
pub use random::{rng_from_seed, sample_distinct};
pub use shape::Shape;
pub use tensor::Tensor;

/// Numerical tolerance used across the workspace when comparing floats in
/// tests (forward/backward checks, metric assertions).
pub const TEST_EPS: f32 = 1e-4;

/// Asserts two float slices are element-wise close; used by tests in several
/// crates so the tolerance logic lives in one place.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let scale = 1.0f32.max(x.abs()).max(y.abs());
        assert!(
            (x - y).abs() <= tol * scale,
            "element {i} differs: {x} vs {y} (tol {tol})"
        );
    }
}

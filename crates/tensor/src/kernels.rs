//! Cache-aware packed micro-kernels for the matmul/matvec hot loops.
//!
//! This module is the single funnel every dense product in the workspace
//! goes through (DESIGN.md §12): `Tensor::matmul`, the fused
//! `matmul_bias_act` / `matvec_bias_act` primitives (and therefore every
//! `linear_act` node on the autodiff tape, including the LSTM gates), the
//! convolution inner loop (via [`axpy`]), and the int8 inference path.
//!
//! # Layout and dispatch
//!
//! Three kernel families live here:
//!
//! * **Scalar reference** ([`matmul_ref`], [`matvec_ref`]) — the blocked
//!   i-k-j kernel that has always been the workspace's serial path. It is
//!   the bit-reference every other path is measured against.
//! * **Packed SIMD** — A is packed into [`MR`]-row panels (k-major) and B
//!   into [`NR`]-column panels, both sized so one k-block ([`KC`]) of
//!   working set stays in L1/L2; a register-blocked 4×16 AVX micro-kernel
//!   runs over the panels. Matvec packs [`PR`]-row panels and broadcasts
//!   the input vector.
//! * **Int8** — per-row-quantized weights ([`quantize_rows`]) accumulated
//!   in f32, with the `scale`/bias dequantization fused into the epilogue.
//!
//! SIMD paths are selected at runtime via [`active_isa`] (cached
//! `is_x86_feature_detected!` probes); every intrinsic call site sits in a
//! `#[target_feature]` function reached only through that dispatcher — the
//! `no-unchecked-simd` lint rule (DESIGN.md §7) keeps it that way.
//!
//! # Determinism contract
//!
//! Every path — scalar, AVX, AVX2, int8 — accumulates each output element
//! in ascending-`k` order with separate multiply and add (no FMA
//! contraction), so **all paths are bit-identical to the scalar
//! reference** on every machine: 0 ulp, stronger than the ≤1-ulp budget
//! the SIMD path is allowed. Vectorization rides on lane-parallelism
//! across *output* elements (rows for matvec, columns for matmul), never
//! on reassociating a single element's reduction. Activation epilogues
//! are applied by the same scalar [`Activation::apply`] in every path so
//! `exp`/`tanh` never diverge between ISAs.

use crate::ops::Activation;

/// Cache-blocking tile edge for the scalar reference kernel: a 64×64 f32
/// tile is 16 KiB, so one tile each of A, B and C fit in a typical
/// 48–64 KiB L1.
const TILE: usize = 64;

/// Rows per packed A-panel (micro-kernel height).
pub const MR: usize = 4;

/// Columns per packed B-panel (micro-kernel width: two 8-lane AVX
/// vectors).
pub const NR: usize = 16;

/// k-blocking depth: one A panel (`MR`·`KC` f32 = 4 KiB) stays L1-hot
/// while a B strip (`KC`·`NR` f32 = 16 KiB) streams through.
pub const KC: usize = 256;

/// Rows per packed matvec panel (one 8-lane AVX vector of accumulators).
pub const PR: usize = 8;

/// Below this element-product a packed-SIMD matmul does not amortize its
/// packing passes; the scalar reference kernel runs instead. Pure
/// performance policy — both paths produce identical bits.
const SIMD_MIN_MATMUL_ELEMS: usize = 8_192;

/// Below this `rows·k` product the matvec packing pass is not worth it.
const SIMD_MIN_MATVEC_ELEMS: usize = 1_024;

// ---------------------------------------------------------------------------
// Runtime ISA dispatch
// ---------------------------------------------------------------------------

/// Instruction sets the kernels can target, in ascending capability order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Isa {
    /// Portable scalar kernels (the bit-reference).
    Scalar,
    /// AVX f32 kernels (packed matmul/matvec, axpy).
    Avx,
    /// AVX plus the AVX2 int8→f32 widening used by the quantized matvec.
    Avx2,
}

impl Isa {
    /// Stable name for logs and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx => "avx",
            Isa::Avx2 => "avx2",
        }
    }
}

/// Probes CPU features once and caches the result; the probe itself is
/// the *only* gate SIMD kernels are reached through.
pub fn active_isa() -> Isa {
    use std::sync::atomic::{AtomicU8, Ordering};
    static ISA: AtomicU8 = AtomicU8::new(0);
    match ISA.load(Ordering::Relaxed) {
        1 => Isa::Scalar,
        2 => Isa::Avx,
        3 => Isa::Avx2,
        _ => {
            let isa = detect_isa();
            let code = match isa {
                Isa::Scalar => 1,
                Isa::Avx => 2,
                Isa::Avx2 => 3,
            };
            ISA.store(code, Ordering::Relaxed);
            isa
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_isa() -> Isa {
    if std::arch::is_x86_feature_detected!("avx2") {
        Isa::Avx2
    } else if std::arch::is_x86_feature_detected!("avx") {
        Isa::Avx
    } else {
        Isa::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_isa() -> Isa {
    Isa::Scalar
}

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

/// Blocked i-k-j matmul kernel over a contiguous span of output rows:
/// `a` is `[rows, k]`, `b` is `[k, n]`, `out` is `[rows, n]` and must be
/// zeroed (or hold a partial accumulation over a k-prefix).
///
/// Tiles all three loops at [`TILE`] so the working set stays in L1, and
/// unrolls `k` by two inside the tile so each output vector load/store is
/// amortized over two fused rows of `b`. Per output element the additions
/// happen in ascending-`k` order — the same order as the textbook ikj
/// loop — so blocking changes performance, not results. This is the
/// bit-reference for every other matmul path in this module.
pub fn matmul_ref(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if k == 0 || n == 0 {
        return; // out stays zero: an empty accumulation.
    }
    let rows = a.len() / k;
    debug_assert_eq!(out.len(), rows * n);
    for i0 in (0..rows).step_by(TILE) {
        let i1 = (i0 + TILE).min(rows);
        for p0 in (0..k).step_by(TILE) {
            let p1 = (p0 + TILE).min(k);
            for j0 in (0..n).step_by(TILE) {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    let arow = &a[i * k..(i + 1) * k];
                    let orow = &mut out[i * n + j0..i * n + j1];
                    let mut p = p0;
                    while p + 2 <= p1 {
                        let a0 = arow[p];
                        let a1 = arow[p + 1];
                        let b0 = &b[p * n + j0..p * n + j1];
                        let b1 = &b[(p + 1) * n + j0..(p + 1) * n + j1];
                        for ((o, &v0), &v1) in orow.iter_mut().zip(b0).zip(b1) {
                            // Left-to-right adds keep ascending-k order.
                            *o = *o + a0 * v0 + a1 * v1;
                        }
                        p += 2;
                    }
                    if p < p1 {
                        let a0 = arow[p];
                        let b0 = &b[p * n + j0..p * n + j1];
                        for (o, &v0) in orow.iter_mut().zip(b0) {
                            *o += a0 * v0;
                        }
                    }
                }
            }
        }
    }
}

/// Scalar fused matvec: `out[i] = act(Σ_k w[i,k]·x[k] + bias[i])`,
/// accumulated in ascending-`k` order. The bit-reference for
/// [`matvec_bias_act`].
pub fn matvec_ref(w: &[f32], x: &[f32], bias: &[f32], act: Activation, out: &mut [f32]) {
    let k = x.len();
    if k == 0 {
        // Degenerate matvec: every row dot is empty, out = act(bias).
        for (o, &b) in out.iter_mut().zip(bias) {
            *o = act.apply(b);
        }
        return;
    }
    for ((o, row), &b) in out.iter_mut().zip(w.chunks_exact(k)).zip(bias) {
        let mut acc = 0.0f32;
        for (&wv, &xv) in row.iter().zip(x) {
            acc += wv * xv;
        }
        *o = act.apply(acc + b);
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

/// Matrix product over a contiguous span of output rows (`a` `[rows,k]`,
/// `b` `[k,n]`, `out` `[rows,n]` zeroed): dispatches to the packed AVX
/// kernel when the CPU supports it and the product is large enough to
/// amortize packing, otherwise to [`matmul_ref`]. Both paths produce
/// identical bits (see the module docs).
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if k == 0 || n == 0 {
        return;
    }
    let rows = a.len() / k;
    #[cfg(target_arch = "x86_64")]
    if active_isa() >= Isa::Avx && rows * k * n >= SIMD_MIN_MATMUL_ELEMS && n >= PR {
        return matmul_packed(a, b, out, k, n);
    }
    matmul_ref(a, b, out, k, n);
}

/// Fused matvec `out[i] = act(Σ_k w[i,k]·x[k] + bias[i])`: dispatches to
/// the packed AVX kernel or [`matvec_ref`]; identical bits either way.
pub fn matvec_bias_act(w: &[f32], x: &[f32], bias: &[f32], act: Activation, out: &mut [f32]) {
    debug_assert_eq!(w.len(), out.len() * x.len());
    debug_assert_eq!(bias.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if active_isa() >= Isa::Avx && out.len() >= PR && w.len() >= SIMD_MIN_MATVEC_ELEMS {
        return matvec_packed(w, x, bias, act, out);
    }
    matvec_ref(w, x, bias, act, out);
}

/// In-place `y[j] += a·x[j]` — the convolution and gradient-accumulation
/// inner loop. Element-wise, so vector lanes trivially preserve the
/// scalar bits.
pub fn axpy(y: &mut [f32], x: &[f32], a: f32) {
    debug_assert_eq!(y.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    if active_isa() >= Isa::Avx && y.len() >= PR {
        return x86::run_axpy(y, x, a);
    }
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

// ---------------------------------------------------------------------------
// Packed f32 kernels (x86_64)
// ---------------------------------------------------------------------------

/// GotoBLAS-style packed matmul: for each [`KC`] k-block, A is packed once
/// into [`MR`]-row panels and each [`NR`]-column B strip is packed and
/// streamed through the 4×16 register-blocked micro-kernel. `out`
/// accumulates across k-blocks, preserving global ascending-`k` order per
/// element.
#[cfg(target_arch = "x86_64")]
fn matmul_packed(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let rows = a.len() / k;
    let row_blocks = rows.div_ceil(MR);
    let kc_max = KC.min(k);
    let mut apack = vec![0.0f32; row_blocks * MR * kc_max];
    let mut bpack = vec![0.0f32; kc_max * NR];
    let mut acc = [0.0f32; MR * NR];

    for p0 in (0..k).step_by(KC) {
        let kc = (p0 + KC).min(k) - p0;
        pack_a_panels(a, &mut apack, rows, k, p0, kc);
        for j0 in (0..n).step_by(NR) {
            let nr = (j0 + NR).min(n) - j0;
            pack_b_strip(b, &mut bpack, n, p0, kc, j0, nr);
            for (bi, i0) in (0..rows).step_by(MR).enumerate() {
                let mr = (i0 + MR).min(rows) - i0;
                acc.fill(0.0);
                for r in 0..mr {
                    let orow = &out[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr];
                    acc[r * NR..r * NR + nr].copy_from_slice(orow);
                }
                let apanel = &apack[bi * MR * kc..(bi + 1) * MR * kc];
                x86::run_mm4x16(apanel, &bpack[..kc * NR], kc, &mut acc);
                for r in 0..mr {
                    let orow = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr];
                    orow.copy_from_slice(&acc[r * NR..r * NR + nr]);
                }
            }
        }
    }
}

/// Packs all `MR`-row panels of A for one k-block, k-major within each
/// panel (`apack[panel][p·MR + r] = a[i0+r][p0+p]`), zero-padding the
/// ragged final panel so the micro-kernel never branches on row count.
#[cfg(target_arch = "x86_64")]
fn pack_a_panels(a: &[f32], apack: &mut [f32], rows: usize, k: usize, p0: usize, kc: usize) {
    for (bi, i0) in (0..rows).step_by(MR).enumerate() {
        let mr = (i0 + MR).min(rows) - i0;
        let panel = &mut apack[bi * MR * kc..(bi + 1) * MR * kc];
        if mr < MR {
            panel.fill(0.0);
        }
        for r in 0..mr {
            let arow = &a[(i0 + r) * k + p0..(i0 + r) * k + p0 + kc];
            for (p, &v) in arow.iter().enumerate() {
                panel[p * MR + r] = v;
            }
        }
    }
}

/// Packs one `NR`-column strip of B for one k-block, k-major
/// (`bpack[p·NR + c] = b[p0+p][j0+c]`), zero-padding ragged columns.
#[cfg(target_arch = "x86_64")]
fn pack_b_strip(
    b: &[f32],
    bpack: &mut [f32],
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nr: usize,
) {
    if nr < NR {
        bpack[..kc * NR].fill(0.0);
    }
    for p in 0..kc {
        let brow = &b[(p0 + p) * n + j0..(p0 + p) * n + j0 + nr];
        bpack[p * NR..p * NR + nr].copy_from_slice(brow);
    }
}

/// Packed AVX matvec: rows are processed [`PR`] at a time; the panel is
/// k-major so one vector load yields the 8 rows' weights at a given `k`
/// and the input scalar is broadcast. Each accumulator lane sums in
/// ascending-`k` order; the scale/bias/activation epilogue is scalar and
/// identical to [`matvec_ref`]'s.
#[cfg(target_arch = "x86_64")]
fn matvec_packed(w: &[f32], x: &[f32], bias: &[f32], act: Activation, out: &mut [f32]) {
    let m = out.len();
    let k = x.len();
    let mut panel = vec![0.0f32; PR * k];
    let mut accs = [0.0f32; PR];
    for i0 in (0..m).step_by(PR) {
        let pr = (i0 + PR).min(m) - i0;
        if pr < PR {
            panel.fill(0.0);
        }
        for r in 0..pr {
            let row = &w[(i0 + r) * k..(i0 + r + 1) * k];
            for (p, &wv) in row.iter().enumerate() {
                panel[p * PR + r] = wv;
            }
        }
        x86::run_mv8(&panel, x, &mut accs);
        for r in 0..pr {
            out[i0 + r] = act.apply(accs[r] + bias[i0 + r]);
        }
    }
}

// ---------------------------------------------------------------------------
// Int8 quantized inference kernels
// ---------------------------------------------------------------------------

/// A row-major `[rows, cols]` matrix quantized per row to int8.
///
/// Each row stores `q[i][j] = round(w[i][j] / scale[i])` with
/// `scale[i] = max_j |w[i][j]| / 127`, so the dequantized weight
/// `q·scale` is within `scale/2` of the original — the bound the
/// round-trip property test pins down. All-zero rows get scale 1.0.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedRows {
    /// Quantized values, row-major `[rows, cols]`.
    pub q: Vec<i8>,
    /// Per-row dequantization scales.
    pub scales: Vec<f32>,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
}

/// Quantizes a row-major `[rows, cols]` f32 matrix per row to int8.
pub fn quantize_rows(w: &[f32], rows: usize, cols: usize) -> QuantizedRows {
    assert_eq!(w.len(), rows * cols, "quantize_rows shape mismatch");
    let mut q = Vec::with_capacity(rows * cols);
    let mut scales = Vec::with_capacity(rows);
    for row in w.chunks(cols) {
        let absmax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if absmax > 0.0 { absmax / 127.0 } else { 1.0 };
        scales.push(scale);
        for &v in row {
            let r = (v / scale).round().clamp(-127.0, 127.0);
            // deepod-lint: allow(truncating-cast) — value clamped to i8 range above
            q.push(r as i8);
        }
    }
    QuantizedRows {
        q,
        scales,
        rows,
        cols,
    }
}

/// Packs quantized rows into [`PR`]-row panels, k-major
/// (`packed[panel][p·PR + r] = q[i0+r][p]`), zero-padding the ragged
/// final panel. This is the layout [`matvec_i8_bias_act`] consumes; do it
/// once at model-load time, not per request.
pub fn pack_quantized(qr: &QuantizedRows) -> Vec<i8> {
    let blocks = qr.rows.div_ceil(PR);
    let mut packed = vec![0i8; blocks * PR * qr.cols];
    for (bi, i0) in (0..qr.rows).step_by(PR).enumerate() {
        let pr = (i0 + PR).min(qr.rows) - i0;
        let panel = &mut packed[bi * PR * qr.cols..(bi + 1) * PR * qr.cols];
        for r in 0..pr {
            let row = &qr.q[(i0 + r) * qr.cols..(i0 + r + 1) * qr.cols];
            for (p, &v) in row.iter().enumerate() {
                panel[p * PR + r] = v;
            }
        }
    }
    packed
}

/// Quantized fused matvec:
/// `out[i] = act((Σ_k q[i,k]·x[k]) · scale[i] + bias[i])` with the sum
/// accumulated in f32, ascending-`k`. `packed` is the [`pack_quantized`]
/// layout. Dispatches to AVX2 (int8→f32 lane widening) or the scalar
/// loop; identical bits either way.
pub fn matvec_i8_bias_act(
    packed: &[i8],
    scales: &[f32],
    bias: &[f32],
    x: &[f32],
    act: Activation,
    out: &mut [f32],
) {
    let m = out.len();
    let k = x.len();
    debug_assert_eq!(packed.len(), m.div_ceil(PR) * PR * k);
    debug_assert_eq!(scales.len(), m);
    debug_assert_eq!(bias.len(), m);
    #[cfg(target_arch = "x86_64")]
    if active_isa() >= Isa::Avx2 {
        let mut accs = [0.0f32; PR];
        for (bi, i0) in (0..m).step_by(PR).enumerate() {
            let pr = (i0 + PR).min(m) - i0;
            let panel = &packed[bi * PR * k..(bi + 1) * PR * k];
            x86::run_mv8_i8(panel, x, &mut accs);
            for r in 0..pr {
                out[i0 + r] = act.apply(accs[r] * scales[i0 + r] + bias[i0 + r]);
            }
        }
        return;
    }
    for (bi, i0) in (0..m).step_by(PR).enumerate() {
        let pr = (i0 + PR).min(m) - i0;
        let panel = &packed[bi * PR * k..(bi + 1) * PR * k];
        for r in 0..pr {
            let mut acc = 0.0f32;
            for (p, &xv) in x.iter().enumerate() {
                acc += f32::from(panel[p * PR + r]) * xv;
            }
            out[i0 + r] = act.apply(acc * scales[i0 + r] + bias[i0 + r]);
        }
    }
}

// ---------------------------------------------------------------------------
// x86_64 intrinsic micro-kernels
// ---------------------------------------------------------------------------

/// The only module in the workspace allowed to use `unsafe`: raw
/// `std::arch` intrinsics behind `#[target_feature]` functions. Every
/// public wrapper here is reached exclusively through the [`active_isa`]
/// dispatcher (debug-asserted), which is what makes the `unsafe` calls
/// sound: the required CPU features were probed at runtime.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{Isa, MR, NR, PR};
    use core::arch::x86_64::{
        __m128i, __m256, _mm256_add_ps, _mm256_broadcast_ss, _mm256_cvtepi32_ps,
        _mm256_cvtepi8_epi32, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
        _mm_loadl_epi64,
    };

    /// 4×16 register-blocked micro-kernel: `acc[r][c] += Σ_p a[r][p]·b[p][c]`
    /// over packed panels, per-element ascending-`p` with separate
    /// multiply and add (no FMA) so the result is bit-identical to the
    /// scalar reference.
    ///
    /// # Safety
    ///
    /// Requires AVX; `apanel` must hold `kc·MR` floats, `bpanel` `kc·NR`.
    #[target_feature(enable = "avx")]
    unsafe fn mm4x16(apanel: *const f32, bpanel: *const f32, kc: usize, acc: *mut f32) {
        let mut c: [__m256; 8] = [
            _mm256_loadu_ps(acc),
            _mm256_loadu_ps(acc.add(8)),
            _mm256_loadu_ps(acc.add(16)),
            _mm256_loadu_ps(acc.add(24)),
            _mm256_loadu_ps(acc.add(32)),
            _mm256_loadu_ps(acc.add(40)),
            _mm256_loadu_ps(acc.add(48)),
            _mm256_loadu_ps(acc.add(56)),
        ];
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(bpanel.add(p * NR));
            let b1 = _mm256_loadu_ps(bpanel.add(p * NR + 8));
            let ap = apanel.add(p * MR);
            let a0 = _mm256_broadcast_ss(&*ap);
            c[0] = _mm256_add_ps(c[0], _mm256_mul_ps(a0, b0));
            c[1] = _mm256_add_ps(c[1], _mm256_mul_ps(a0, b1));
            let a1 = _mm256_broadcast_ss(&*ap.add(1));
            c[2] = _mm256_add_ps(c[2], _mm256_mul_ps(a1, b0));
            c[3] = _mm256_add_ps(c[3], _mm256_mul_ps(a1, b1));
            let a2 = _mm256_broadcast_ss(&*ap.add(2));
            c[4] = _mm256_add_ps(c[4], _mm256_mul_ps(a2, b0));
            c[5] = _mm256_add_ps(c[5], _mm256_mul_ps(a2, b1));
            let a3 = _mm256_broadcast_ss(&*ap.add(3));
            c[6] = _mm256_add_ps(c[6], _mm256_mul_ps(a3, b0));
            c[7] = _mm256_add_ps(c[7], _mm256_mul_ps(a3, b1));
        }
        for (r, v) in c.into_iter().enumerate() {
            _mm256_storeu_ps(acc.add(r * 8), v);
        }
    }

    /// Safe wrapper for [`mm4x16`]; only reachable once [`super::active_isa`]
    /// has confirmed AVX.
    pub(super) fn run_mm4x16(apanel: &[f32], bpanel: &[f32], kc: usize, acc: &mut [f32; MR * NR]) {
        debug_assert!(super::active_isa() >= Isa::Avx);
        debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
        // SAFETY: AVX presence was established by the runtime probe above;
        // panel bounds are debug-asserted and guaranteed by the packers.
        unsafe { mm4x16(apanel.as_ptr(), bpanel.as_ptr(), kc, acc.as_mut_ptr()) }
    }

    /// 8-row matvec micro-kernel over a k-major packed panel: lane `r`
    /// accumulates row `i0+r` in ascending-`k` order.
    ///
    /// # Safety
    ///
    /// Requires AVX; `panel` must hold `x.len()·PR` floats.
    #[target_feature(enable = "avx")]
    unsafe fn mv8(panel: *const f32, x: *const f32, k: usize, out: *mut f32) {
        let mut acc = _mm256_setzero_ps();
        for p in 0..k {
            let w = _mm256_loadu_ps(panel.add(p * PR));
            let xv = _mm256_broadcast_ss(&*x.add(p));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(w, xv));
        }
        _mm256_storeu_ps(out, acc);
    }

    /// Safe wrapper for [`mv8`]; only reachable via [`super::active_isa`].
    pub(super) fn run_mv8(panel: &[f32], x: &[f32], accs: &mut [f32; PR]) {
        debug_assert!(super::active_isa() >= Isa::Avx);
        debug_assert!(panel.len() >= x.len() * PR);
        // SAFETY: AVX probed at runtime; panel length debug-asserted.
        unsafe { mv8(panel.as_ptr(), x.as_ptr(), x.len(), accs.as_mut_ptr()) }
    }

    /// 8-row int8 matvec micro-kernel: widens 8 packed int8 weights to
    /// f32 lanes (exact conversion) and accumulates like [`mv8`].
    ///
    /// # Safety
    ///
    /// Requires AVX2; `panel` must hold `x.len()·PR` bytes.
    #[target_feature(enable = "avx2")]
    unsafe fn mv8_i8(panel: *const i8, x: *const f32, k: usize, out: *mut f32) {
        let mut acc = _mm256_setzero_ps();
        for p in 0..k {
            let q = _mm_loadl_epi64(panel.add(p * PR).cast::<__m128i>());
            let w = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q));
            let xv = _mm256_broadcast_ss(&*x.add(p));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(w, xv));
        }
        _mm256_storeu_ps(out, acc);
    }

    /// Safe wrapper for [`mv8_i8`]; only reachable via [`super::active_isa`].
    pub(super) fn run_mv8_i8(panel: &[i8], x: &[f32], accs: &mut [f32; PR]) {
        debug_assert!(super::active_isa() >= Isa::Avx2);
        debug_assert!(panel.len() >= x.len() * PR);
        // SAFETY: AVX2 probed at runtime; panel length debug-asserted.
        unsafe { mv8_i8(panel.as_ptr(), x.as_ptr(), x.len(), accs.as_mut_ptr()) }
    }

    /// Vectorized `y += a·x` with a scalar tail; element-wise, so lane
    /// order is irrelevant and the bits match the scalar loop.
    ///
    /// # Safety
    ///
    /// Requires AVX; `y` and `x` must both hold `n` floats.
    #[target_feature(enable = "avx")]
    unsafe fn axpy_avx(y: *mut f32, x: *const f32, a: f32, n: usize) {
        let av = _mm256_broadcast_ss(&a);
        let mut i = 0usize;
        while i + 8 <= n {
            let yv = _mm256_loadu_ps(y.add(i));
            let xv = _mm256_loadu_ps(x.add(i));
            _mm256_storeu_ps(y.add(i), _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
            i += 8;
        }
        while i < n {
            *y.add(i) += a * *x.add(i);
            i += 1;
        }
    }

    /// Safe wrapper for [`axpy_avx`]; only reachable via [`super::active_isa`].
    pub(super) fn run_axpy(y: &mut [f32], x: &[f32], a: f32) {
        debug_assert!(super::active_isa() >= Isa::Avx);
        debug_assert_eq!(y.len(), x.len());
        // SAFETY: AVX probed at runtime; equal lengths asserted above.
        unsafe { axpy_avx(y.as_mut_ptr(), x.as_ptr(), a, y.len()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::rng_from_seed(seed);
        Tensor::rand_uniform(&[len.max(1)], -2.0, 2.0, &mut rng)
            .as_slice()
            .to_vec()
    }

    #[test]
    fn dispatched_matmul_bit_matches_reference() {
        // Shapes straddling panel edges (MR=4, NR=16, KC=256) and the
        // SIMD dispatch threshold.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (4, 16, 16),
            (17, 31, 23),
            (64, 64, 64),
            (65, 300, 66),
            (7, 129, 9),
            (128, 80, 120),
        ] {
            let a = rand_vec(m * k, 100 + m as u64);
            let b = rand_vec(k * n, 200 + n as u64);
            let mut got = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            matmul(&a, &b, &mut got, k, n);
            matmul_ref(&a, &b, &mut want, k, n);
            assert_eq!(got, want, "({m},{k},{n}) isa={}", active_isa().name());
        }
    }

    #[test]
    fn dispatched_matvec_bit_matches_reference() {
        for (m, k) in [(1, 1), (5, 7), (8, 128), (33, 67), (64, 200)] {
            let w = rand_vec(m * k, 300 + m as u64);
            let x = rand_vec(k, 400 + k as u64);
            let bias = rand_vec(m, 500 + m as u64);
            for act in [
                Activation::Identity,
                Activation::Relu,
                Activation::Sigmoid,
                Activation::Tanh,
            ] {
                let mut got = vec![0.0f32; m];
                let mut want = vec![0.0f32; m];
                matvec_bias_act(&w, &x, &bias, act, &mut got);
                matvec_ref(&w, &x, &bias, act, &mut want);
                assert_eq!(got, want, "({m},{k}) {act:?}");
            }
        }
    }

    #[test]
    fn axpy_bit_matches_scalar_loop() {
        for n in [1, 7, 8, 9, 64, 1000] {
            let x = rand_vec(n, 600 + n as u64);
            let mut got = rand_vec(n, 700 + n as u64);
            let mut want = got.clone();
            axpy(&mut got, &x, 0.37);
            for (yv, &xv) in want.iter_mut().zip(&x) {
                *yv += 0.37 * xv;
            }
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn int8_matvec_scalar_and_simd_agree() {
        for (m, k) in [(1, 3), (8, 16), (13, 45), (32, 67)] {
            let w = rand_vec(m * k, 800 + m as u64);
            let x = rand_vec(k, 900 + k as u64);
            let bias = rand_vec(m, 1000 + m as u64);
            let qr = quantize_rows(&w, m, k);
            let packed = pack_quantized(&qr);
            let mut got = vec![0.0f32; m];
            matvec_i8_bias_act(&packed, &qr.scales, &bias, &x, Activation::Relu, &mut got);
            // Scalar recomputation over the same packed layout.
            let mut want = vec![0.0f32; m];
            for (bi, i0) in (0..m).step_by(PR).enumerate() {
                let pr = (i0 + PR).min(m) - i0;
                let panel = &packed[bi * PR * k..(bi + 1) * PR * k];
                for r in 0..pr {
                    let mut acc = 0.0f32;
                    for (p, &xv) in x.iter().enumerate() {
                        acc += f32::from(panel[p * PR + r]) * xv;
                    }
                    want[i0 + r] = Activation::Relu.apply(acc * qr.scales[i0 + r] + bias[i0 + r]);
                }
            }
            assert_eq!(got, want, "({m},{k})");
        }
    }

    #[test]
    fn quantize_round_trip_error_is_bounded() {
        let w = rand_vec(37 * 19, 42);
        let qr = quantize_rows(&w, 37, 19);
        for (i, row) in w.chunks(19).enumerate() {
            let scale = qr.scales[i];
            for (j, &v) in row.iter().enumerate() {
                let deq = f32::from(qr.q[i * 19 + j]) * scale;
                assert!(
                    (v - deq).abs() <= scale * 0.5 + 1e-6,
                    "row {i} col {j}: {v} vs {deq} (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn quantize_handles_zero_rows() {
        let qr = quantize_rows(&[0.0; 8], 2, 4);
        assert_eq!(qr.scales, vec![1.0, 1.0]);
        assert!(qr.q.iter().all(|&q| q == 0));
    }

    #[test]
    fn isa_detection_is_stable() {
        let a = active_isa();
        assert_eq!(a, active_isa());
        assert!(!a.name().is_empty());
    }
}

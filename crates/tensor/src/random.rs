//! Random tensor construction and the deterministic RNG policy.
//!
//! All stochastic code in the workspace (initializers, simulators, random
//! walks, training shuffles) takes an explicit `StdRng` seeded by the
//! caller, so every experiment is reproducible from its config seed.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal, Uniform};

/// Creates the workspace-standard RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

impl Tensor {
    /// Tensor with i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
        assert!(lo < hi, "empty uniform range");
        let dist = Uniform::new(lo, hi);
        let mut t = Tensor::zeros(dims);
        for v in t.as_mut_slice() {
            *v = dist.sample(rng);
        }
        t
    }

    /// Tensor with i.i.d. normal entries.
    pub fn rand_normal(dims: &[usize], mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
        assert!(
            std >= 0.0 && std.is_finite(),
            "normal std must be finite and >= 0"
        );
        let Ok(dist) = Normal::new(mean, std) else {
            unreachable!("Normal::new cannot fail for validated std {std}")
        };
        let mut t = Tensor::zeros(dims);
        for v in t.as_mut_slice() {
            *v = dist.sample(rng);
        }
        t
    }

    /// Xavier/Glorot uniform initialization for a `[fan_out, fan_in]` weight
    /// matrix — the workspace default for MLP and recurrent weights.
    pub fn xavier_uniform(fan_out: usize, fan_in: usize, rng: &mut StdRng) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(&[fan_out, fan_in], -bound, bound, rng)
    }
}

/// Samples `k` distinct indices from `0..n` (k ≤ n) — used for negative
/// sampling and dataset subsampling.
pub fn sample_distinct(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct values from {n}");
    // Floyd's algorithm: O(k) expected time, no O(n) allocation.
    let mut chosen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut r1 = rng_from_seed(7);
        let mut r2 = rng_from_seed(7);
        let a = Tensor::rand_uniform(&[4, 4], -1.0, 1.0, &mut r1);
        let b = Tensor::rand_uniform(&[4, 4], -1.0, 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = rng_from_seed(1);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = rng_from_seed(2);
        let t = Tensor::rand_normal(&[20_000], 3.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_bound() {
        let mut rng = rng_from_seed(3);
        let t = Tensor::xavier_uniform(64, 64, &mut rng);
        let bound = (6.0f32 / 128.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= bound));
        assert_eq!(t.dims(), &[64, 64]);
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = rng_from_seed(4);
        let s = sample_distinct(100, 30, &mut rng);
        assert_eq!(s.len(), 30);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = rng_from_seed(5);
        let mut s = sample_distinct(10, 10, &mut rng);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }
}

//! Tensor math: element-wise arithmetic, matmul, reductions, concatenation,
//! transpose, and the convolution geometry helpers shared with `deepod-nn`.
//!
//! The dense products (`matmul`, `matvec_bias_act`, `axpy`) route through
//! [`crate::kernels`], which picks a packed SIMD or scalar kernel at
//! runtime; every path is bit-identical (DESIGN.md §12), so this module
//! only decides *shape* and *threading*, never numerics.

use crate::Tensor;

/// Fork threshold for [`Tensor::matmul`]: below ~8 MFLOP the product takes
/// well under a millisecond through the packed kernels and thread spawn /
/// join coordination dominates — the BENCH_kernels `matmul_crossover`
/// entries pin the crossover. Small matmuls therefore never fan out.
const PAR_MIN_FLOPS: usize = 1 << 23;

/// Debug-only finiteness check on a matmul operand. A NaN entering the
/// shared `code`/`stcode` binding silently corrupts all three encoders'
/// gradients at once (the coupled loss of §4.4), so the matmul entry
/// points catch it at the door in debug/test builds; release builds pay
/// nothing.
#[inline]
fn debug_assert_finite(xs: &[f32], what: &str) {
    if cfg!(debug_assertions) {
        if let Some(pos) = xs.iter().position(|v| !v.is_finite()) {
            // deepod-lint: allow(panic) — debug-only guard, compiled out in release
            panic!("{what}: non-finite value {} at flat index {pos}", xs[pos]);
        }
    }
}

/// Activation functions fused into the matmul/matvec primitives and the
/// autodiff tape's fully-connected node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// No activation (`y = x`).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to one scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the activation *output* `y` (all
    /// four functions admit one; this is what lets backward passes avoid
    /// keeping the pre-activation around).
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

impl Tensor {
    /// Element-wise binary op; panics on shape mismatch.
    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Element-wise unary op.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.as_slice().iter().map(|&a| f(a)).collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|a| a + s)
    }

    /// In-place `self += other * s` (axpy); panics on shape mismatch.
    /// Used for gradient accumulation and optimizer updates.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        crate::kernels::axpy(self.as_mut_slice(), other.as_slice(), s);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements; 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Dot product of two tensors flattened; panics on element-count
    /// mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.numel(), other.numel(), "dot length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Matrix product of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Dispatches to the packed kernels in [`crate::kernels`], forking
    /// across row spans above [`PAR_MIN_FLOPS`] with the configured thread
    /// count (`DEEPOD_THREADS`), clamped to the machine's hardware
    /// parallelism so the default can never oversubscribe. Results are
    /// bit-identical for every thread count: each output row is produced by
    /// exactly one worker running the same per-row kernel.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_with_threads(other, 0)
    }

    /// [`Tensor::matmul`] with an explicit thread count (`0` = configured
    /// default, clamped to hardware parallelism; explicit counts are
    /// honored as-is). Exposed so benchmarks and property tests can pin
    /// the serial and parallel paths independently of the environment.
    pub fn matmul_with_threads(&self, other: &Tensor, threads: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        debug_assert_finite(self.as_slice(), "matmul lhs");
        debug_assert_finite(other.as_slice(), "matmul rhs");
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        let mut t = crate::parallel::resolve_threads(threads).min(m.max(1));
        if threads == 0 {
            // Default-threaded callers never fan out wider than the machine:
            // oversubscribed workers only add coordination cost.
            t = t.min(crate::parallel::hardware_parallelism());
        }
        if t > 1 && 2 * m * k * n >= PAR_MIN_FLOPS {
            let spans = crate::parallel::split_ranges(m, t);
            std::thread::scope(|scope| {
                let mut rest: &mut [f32] = &mut out;
                for span in &spans {
                    let (chunk, tail) = rest.split_at_mut(span.len() * n);
                    rest = tail;
                    let a_rows = &a[span.start * k..span.end * k];
                    scope.spawn(move || crate::kernels::matmul(a_rows, b, chunk, k, n));
                }
            });
        } else {
            crate::kernels::matmul(a, b, &mut out, k, n);
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Fused `act(self · other + bias)` where `bias` (`[n]`) is broadcast
    /// over the rows of the `[m,n]` product: the batched fully-connected
    /// primitive. One output pass applies bias and activation, instead of
    /// three materialized intermediates.
    pub fn matmul_bias_act(&self, other: &Tensor, bias: &Tensor, act: Activation) -> Tensor {
        debug_assert_finite(bias.as_slice(), "matmul_bias_act bias");
        let mut out = self.matmul(other);
        let n = out.dim(1);
        assert_eq!(
            bias.numel(),
            n,
            "bias length mismatch: {} vs {n}",
            bias.numel()
        );
        let bs = bias.as_slice();
        for row in out.as_mut_slice().chunks_mut(n) {
            for (o, &b) in row.iter_mut().zip(bs) {
                *o = act.apply(*o + b);
            }
        }
        out
    }

    /// Fused `act(self · x + bias)` for a rank-1 `x` (`[k]`) and bias
    /// (`[m]`): the per-sample fully-connected primitive used by the
    /// autodiff tape. Accumulation order matches [`Tensor::matmul`] exactly
    /// (ascending `k`), so fusing does not perturb trained numerics.
    pub fn matvec_bias_act(&self, x: &Tensor, bias: &Tensor, act: Activation) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec_bias_act lhs must be rank-2");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(x.numel(), k, "input length mismatch: {} vs {k}", x.numel());
        assert_eq!(
            bias.numel(),
            m,
            "bias length mismatch: {} vs {m}",
            bias.numel()
        );
        let mut out = vec![0.0f32; m];
        crate::kernels::matvec_bias_act(
            self.as_slice(),
            x.as_slice(),
            bias.as_slice(),
            act,
            &mut out,
        );
        Tensor::from_vec(out, &[m])
    }

    /// Matrix–vector product: `[m,k] x [k] -> [m]`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank-2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank-1");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(k, v.numel(), "matvec inner dims differ");
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(&r, &xv)| r * xv).sum();
        }
        Tensor::from_vec(out, &[m])
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires a matrix");
        let (m, n) = (self.dim(0), self.dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Concatenates rank-1 tensors end to end.
    pub fn concat_vecs(parts: &[&Tensor]) -> Tensor {
        let mut data = Vec::with_capacity(parts.iter().map(|t| t.numel()).sum());
        for p in parts {
            assert_eq!(p.rank(), 1, "concat_vecs requires rank-1 inputs");
            data.extend_from_slice(p.as_slice());
        }
        let n = data.len();
        Tensor::from_vec(data, &[n])
    }

    /// Stacks rank-1 tensors of equal length into a `[rows, cols]` matrix.
    pub fn stack_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows on empty list");
        let cols = parts[0].numel();
        let mut data = Vec::with_capacity(parts.len() * cols);
        for p in parts {
            assert_eq!(p.rank(), 1, "stack_rows requires rank-1 inputs");
            assert_eq!(p.numel(), cols, "stack_rows length mismatch");
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(data, &[parts.len(), cols])
    }

    /// Column-wise mean of a rank-2 tensor: `[r,c] -> [c]`. This is the
    /// average pooling of the paper's Eq. 10.
    pub fn mean_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "mean_rows requires a matrix");
        let (r, c) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        let inv = 1.0 / r as f32;
        for o in &mut out {
            *o *= inv;
        }
        Tensor::from_vec(out, &[c])
    }

    /// Maximum element; NaN-free inputs assumed. Panics on empty tensors.
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Panics on empty tensors.
    pub fn min(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn elementwise() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn elementwise_shape_mismatch_panics() {
        let a = Tensor::zeros(&[3]);
        let b = Tensor::zeros(&[4]);
        let _ = a.add(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy(0.5, &g);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_close(&[a.norm()], &[30.0f32.sqrt()], 1e-6);
    }

    #[test]
    fn matmul_identity_and_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());

        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = Tensor::from_vec(vec![5.0, 6.0], &[2]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshape(&[2, 1]));
        assert_eq!(mv.as_slice(), mm.as_slice());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn concat_and_stack() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0], &[1]);
        let c = Tensor::concat_vecs(&[&a, &b]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);

        let r = Tensor::from_vec(vec![4.0, 5.0], &[2]);
        let m = Tensor::stack_rows(&[&a, &r]);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.row(1), &[4.0, 5.0]);
    }

    #[test]
    fn mean_rows_pooling() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 5.0], &[2, 2]);
        let p = m.mean_rows();
        assert_eq!(p.as_slice(), &[2.0, 3.5]);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    /// Reference textbook ikj triple loop the blocked kernel must match.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    out[i * n + j] += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    #[test]
    fn blocked_kernel_bit_matches_naive_across_tile_edges() {
        let mut rng = crate::rng_from_seed(31);
        // Shapes straddling the 64-wide tile boundary, including odd k for
        // the unroll remainder and degenerate 1-wide extents.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (64, 64, 64),
            (65, 63, 66),
            (7, 129, 1),
            (1, 2, 130),
        ] {
            let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
            let got = a.matmul(&b);
            let want = naive_matmul(&a, &b);
            assert_eq!(got.as_slice(), want.as_slice(), "({m},{k},{n})");
        }
    }

    #[test]
    fn parallel_matmul_bit_matches_serial() {
        let mut rng = crate::rng_from_seed(32);
        // Big enough to clear the fork threshold (2·m·k·n ≥ 2^23).
        let a = Tensor::rand_uniform(&[256, 128], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[128, 256], -2.0, 2.0, &mut rng);
        let serial = a.matmul_with_threads(&b, 1);
        for t in [2, 3, 8] {
            let par = a.matmul_with_threads(&b, t);
            assert_eq!(serial.as_slice(), par.as_slice(), "threads={t}");
        }
    }

    #[test]
    fn matmul_no_longer_skips_zero_rows() {
        // A zero row in A must still produce exact zeros (not stale
        // values), which the old zero-skip branch suppressed.
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 1.0, 2.0, 3.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(&c.as_slice()[..2], &[0.0, 0.0]);
        assert_eq!(&c.as_slice()[2..], &[9.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    #[cfg(debug_assertions)]
    fn matmul_rejects_nonfinite_operands_in_debug() {
        // Non-finite values are caught at the matmul door in debug/test
        // builds (release propagates them numerically: 0 · inf = NaN).
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]);
        let b = Tensor::from_vec(vec![f32::INFINITY, 1.0, 2.0, 3.0], &[2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn activation_apply_and_derivative() {
        assert_eq!(Activation::Identity.apply(-3.0), -3.0);
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        let s = Activation::Sigmoid.apply(0.0);
        assert!((s - 0.5).abs() < 1e-6);
        assert!((Activation::Sigmoid.derivative_from_output(s) - 0.25).abs() < 1e-6);
        let t = Activation::Tanh.apply(0.5);
        assert!((Activation::Tanh.derivative_from_output(t) - (1.0 - t * t)).abs() < 1e-7);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Identity.derivative_from_output(7.0), 1.0);
    }

    #[test]
    fn fused_matvec_matches_unfused_chain() {
        let mut rng = crate::rng_from_seed(33);
        let w = Tensor::rand_uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let x = Tensor::rand_uniform(&[7], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[5], -1.0, 1.0, &mut rng);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            let fused = w.matvec_bias_act(&x, &b, act);
            let chain = w
                .matmul(&x.reshape(&[7, 1]))
                .reshape(&[5])
                .add(&b)
                .map(|v| act.apply(v));
            assert_eq!(fused.as_slice(), chain.as_slice(), "{act:?}");
        }
    }

    #[test]
    fn fused_matmul_bias_act_broadcasts_bias_per_row() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = Tensor::eye(2);
        let bias = Tensor::from_vec(vec![10.0, -100.0], &[2]);
        let y = a.matmul_bias_act(&i, &bias, Activation::Relu);
        assert_eq!(y.as_slice(), &[11.0, 0.0, 13.0, 0.0]);
    }
}

//! Tensor math: element-wise arithmetic, matmul, reductions, concatenation,
//! transpose, and the convolution geometry helpers shared with `deepod-nn`.

use crate::Tensor;

impl Tensor {
    /// Element-wise binary op; panics on shape mismatch.
    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Element-wise unary op.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.as_slice().iter().map(|&a| f(a)).collect();
        Tensor::from_vec(data, self.dims())
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Element-wise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|a| a + s)
    }

    /// In-place `self += other * s` (axpy); panics on shape mismatch.
    /// Used for gradient accumulation and optimizer updates.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += s * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements; 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Dot product of two tensors flattened; panics on element-count
    /// mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.numel(), other.numel(), "dot length mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Matrix product of two rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Plain ikj-ordered triple loop: with the workspace's dimensions
    /// (≤ a few hundred) this stays within L1/L2 and vectorizes well.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (other.dim(0), other.dim(1));
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let a = self.as_slice();
        let b = other.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product: `[m,k] x [k] -> [m]`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank-2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank-1");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(k, v.numel(), "matvec inner dims differ");
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            out[i] = row.iter().zip(x).map(|(&r, &xv)| r * xv).sum();
        }
        Tensor::from_vec(out, &[m])
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires a matrix");
        let (m, n) = (self.dim(0), self.dim(1));
        let a = self.as_slice();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Concatenates rank-1 tensors end to end.
    pub fn concat_vecs(parts: &[&Tensor]) -> Tensor {
        let mut data = Vec::with_capacity(parts.iter().map(|t| t.numel()).sum());
        for p in parts {
            assert_eq!(p.rank(), 1, "concat_vecs requires rank-1 inputs");
            data.extend_from_slice(p.as_slice());
        }
        let n = data.len();
        Tensor::from_vec(data, &[n])
    }

    /// Stacks rank-1 tensors of equal length into a `[rows, cols]` matrix.
    pub fn stack_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows on empty list");
        let cols = parts[0].numel();
        let mut data = Vec::with_capacity(parts.len() * cols);
        for p in parts {
            assert_eq!(p.rank(), 1, "stack_rows requires rank-1 inputs");
            assert_eq!(p.numel(), cols, "stack_rows length mismatch");
            data.extend_from_slice(p.as_slice());
        }
        Tensor::from_vec(data, &[parts.len(), cols])
    }

    /// Column-wise mean of a rank-2 tensor: `[r,c] -> [c]`. This is the
    /// average pooling of the paper's Eq. 10.
    pub fn mean_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "mean_rows requires a matrix");
        let (r, c) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        let inv = 1.0 / r as f32;
        for o in &mut out {
            *o *= inv;
        }
        Tensor::from_vec(out, &[c])
    }

    /// Maximum element; NaN-free inputs assumed. Panics on empty tensors.
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Panics on empty tensors.
    pub fn min(&self) -> f32 {
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn elementwise() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn elementwise_shape_mismatch_panics() {
        let a = Tensor::zeros(&[3]);
        let b = Tensor::zeros(&[4]);
        let _ = a.add(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        a.axpy(0.5, &g);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_close(&[a.norm()], &[30.0f32.sqrt()], 1e-6);
    }

    #[test]
    fn matmul_identity_and_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());

        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = Tensor::from_vec(vec![5.0, 6.0], &[2]);
        let mv = a.matvec(&v);
        let mm = a.matmul(&v.reshape(&[2, 1]));
        assert_eq!(mv.as_slice(), mm.as_slice());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn concat_and_stack() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0], &[1]);
        let c = Tensor::concat_vecs(&[&a, &b]);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);

        let r = Tensor::from_vec(vec![4.0, 5.0], &[2]);
        let m = Tensor::stack_rows(&[&a, &r]);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.row(1), &[4.0, 5.0]);
    }

    #[test]
    fn mean_rows_pooling() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 5.0], &[2, 2]);
        let p = m.mean_rows();
        assert_eq!(p.as_slice(), &[2.0, 3.5]);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }
}

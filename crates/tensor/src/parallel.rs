//! Data-parallel building blocks shared across the workspace: the
//! process-wide worker-thread configuration, contiguous range
//! partitioning, scoped fork/join over those ranges, and deterministic
//! tree reduction.
//!
//! The thread count is configured *programmatically* via
//! [`set_configured_threads`] — binaries resolve `DEEPOD_THREADS` (and
//! flags) into a `deepod_core::RuntimeConfig` once at startup and apply it
//! here; library code never reads the environment (deepod-lint rule
//! `no-env-read-in-lib`).
//!
//! # Determinism contract
//!
//! Every helper here is designed so that results are a pure function of
//! `(input, thread count)` — never of scheduling order:
//!
//! * [`split_ranges`] assigns *contiguous* spans, so each worker sees its
//!   items in the original order.
//! * [`map_ranges`] returns the per-span results in span order regardless
//!   of which worker finished first.
//! * [`tree_reduce`] combines per-span results in a fixed binary-tree shape
//!   (adjacent pairs per round), so floating-point reductions are
//!   bit-stable for a fixed span count.
//!
//! With one thread the single span covers the whole input in order, so the
//! parallel paths built on these helpers degrade to their serial ancestors
//! bit-for-bit.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Lower bound a caller can use to decide whether forking is worth the
/// thread spawn cost (roughly: only fork when each span does much more
/// work than the ~10 µs it costs to start a worker).
pub const SPAWN_COST_HINT_NS: u64 = 10_000;

/// Process-wide configured worker-thread count. `0` means "not configured":
/// fall back to the machine's available parallelism.
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// Installs the process-wide worker-thread count. `0` clears the override
/// so [`configured_threads`] falls back to the machine's available
/// parallelism. Called once at binary startup when applying
/// `deepod_core::RuntimeConfig`; later calls simply replace the value.
pub fn set_configured_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// Number of worker threads configured for this process: the value
/// installed via [`set_configured_threads`] when positive, otherwise the
/// machine's available parallelism.
pub fn configured_threads() -> usize {
    match CONFIGURED.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Resolves an explicit thread request: `0` means "use the configured
/// default", anything else is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        configured_threads()
    } else {
        requested
    }
}

/// Physical upper bound on useful fan-out: the machine's available
/// parallelism, probed once and cached. Call sites that resolve a
/// *default* thread count clamp with this so a generous `DEEPOD_THREADS`
/// can never oversubscribe the machine — threads beyond cores only add
/// coordination cost (the `matmul_256_parallel` regression in
/// BENCH_kernels.json). Explicit nonzero requests stay unclamped so tests
/// and benchmarks can pin exact counts.
pub fn hardware_parallelism() -> usize {
    static HW: AtomicUsize = AtomicUsize::new(0);
    match HW.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            HW.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Splits `0..len` into at most `parts` contiguous, near-equal, non-empty
/// ranges (fewer when `len < parts`). The first `len % parts` ranges get
/// one extra element.
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    if len == 0 {
        return vec![Range { start: 0, end: 0 }];
    }
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `f` over the contiguous spans of `0..len` on up to `threads`
/// workers and returns the results **in span order**. With `threads <= 1`
/// (or a single span) `f` runs inline on the calling thread, so the serial
/// path has zero overhead and identical numerics.
pub fn map_ranges<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let spans = split_ranges(len, threads);
    // Fault-injection hook (`parallel::worker`): the fan-out *call* is
    // counted here on the caller thread — which is sequenced
    // deterministically by the training loop — and when the armed count is
    // reached, the worker owning span 0 carries the injected panic. That
    // keeps both the firing step and the dying thread deterministic.
    let fail_this_call = crate::failpoint::should_fire("parallel::worker");
    if spans.len() <= 1 {
        if fail_this_call {
            crate::failpoint::fire("parallel::worker");
        }
        // Single-span calls take the literal serial path with no telemetry:
        // the threads=1 contract is "zero overhead, identical numerics".
        return spans.into_iter().map(&f).collect();
    }
    // Fan-out telemetry (gauges/histograms only — never counters, which must
    // stay invariant under the thread count; see DESIGN.md §9). Collected
    // only when a sink is installed so un-instrumented runs pay one load.
    let sink = crate::telemetry::sink();
    if let Some(s) = sink {
        s.gauge_set("parallel.spans_last", spans.len() as f64);
        for span in &spans {
            s.observe("parallel.span_size", span.len() as f64);
        }
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = spans
            .into_iter()
            .enumerate()
            .map(|(i, span)| {
                scope.spawn(move || {
                    if fail_this_call && i == 0 {
                        crate::failpoint::fire("parallel::worker");
                    }
                    let Some(s) = sink else {
                        return f(span);
                    };
                    // Wall time is observability-only and never feeds any
                    // checksummed artifact (DESIGN.md §9).
                    // deepod-lint: allow(nondeterminism)
                    let t0 = std::time::Instant::now();
                    let out = f(span);
                    s.observe("parallel.worker_wall_ms", t0.elapsed().as_secs_f64() * 1e3);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // A worker panic is the caller's panic: re-raise the original
                // payload on this thread instead of wrapping it.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Deterministic pairwise tree reduction: adjacent pairs are combined per
/// round until one value remains. The combination shape depends only on
/// `items.len()`, so floating-point merges are reproducible for a fixed
/// span count. Returns `None` for an empty input.
pub fn tree_reduce<T>(mut items: Vec<T>, mut combine: impl FnMut(T, T) -> T) -> Option<T> {
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        items = next;
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or write the process-wide configured
    /// thread count, so the `set_configured_threads` test cannot interleave
    /// with tests asserting the unconfigured fallback.
    static THREADS_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn split_covers_everything_in_order() {
        for len in [0usize, 1, 2, 7, 64, 65] {
            for parts in [1usize, 2, 3, 8, 100] {
                let spans = split_ranges(len, parts);
                let flat: Vec<usize> = spans.iter().cloned().flatten().collect();
                let expect: Vec<usize> = (0..len).collect();
                assert_eq!(flat, expect, "len={len} parts={parts}");
                assert!(spans.len() <= parts.max(1));
                // Near-equal: sizes differ by at most one.
                if len > 0 {
                    let sizes: Vec<usize> = spans.iter().map(|s| s.len()).collect();
                    let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(mx - mn <= 1, "uneven split {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn map_ranges_preserves_span_order() {
        for threads in [1usize, 2, 4, 7] {
            let got = map_ranges(100, threads, |r| r.clone());
            let flat: Vec<usize> = got.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn tree_reduce_is_shape_deterministic() {
        // Record the combination tree as nested strings; shape must depend
        // only on the length.
        let shape = |n: usize| {
            let items: Vec<String> = (0..n).map(|i| i.to_string()).collect();
            tree_reduce(items, |a, b| format!("({a}+{b})")).unwrap()
        };
        assert_eq!(shape(1), "0");
        assert_eq!(shape(2), "(0+1)");
        assert_eq!(shape(3), "((0+1)+2)");
        assert_eq!(shape(4), "((0+1)+(2+3))");
        assert_eq!(shape(5), "(((0+1)+(2+3))+4)");
        assert!(tree_reduce(Vec::<u32>::new(), |a, _| a).is_none());
    }

    #[test]
    fn resolve_threads_zero_means_default() {
        let _guard = THREADS_GUARD.lock().unwrap_or_else(|p| p.into_inner());
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(0), configured_threads());
        assert!(configured_threads() >= 1);
    }

    // --- threads=1 == serial regression tests -------------------------
    //
    // deepod-lint's `parallel-coverage` rule requires every pub fn of
    // this module to have a test below whose name contains the fn name
    // and `serial`: the single-thread path of each primitive must be the
    // literal serial computation, bit for bit (DESIGN.md §6).

    #[test]
    fn split_ranges_serial_is_single_full_span() {
        for len in [0usize, 1, 5, 1000] {
            assert_eq!(split_ranges(len, 1), vec![0..len]);
        }
    }

    #[test]
    fn map_ranges_threads1_matches_serial() {
        // One thread: the closure runs inline on the calling thread over
        // the single full span, so the result must equal the plain call.
        let serial = |r: Range<usize>| -> f32 { r.map(|i| (i as f32).sin()).sum() };
        let got = map_ranges(257, 1, serial);
        assert_eq!(got, vec![serial(0..257)]);
    }

    #[test]
    fn tree_reduce_single_item_matches_serial_fold() {
        // The one-span case (threads = 1) reduces to the identity, and the
        // multi-span sum equals the serial left fold for associative ops.
        assert_eq!(tree_reduce(vec![42u64], |a, b| a + b), Some(42));
        let items: Vec<u64> = (0..17).collect();
        let serial: u64 = items.iter().sum();
        assert_eq!(tree_reduce(items, |a, b| a + b), Some(serial));
    }

    #[test]
    fn hardware_parallelism_clamps_defaults_but_serial_is_always_valid() {
        // The probe is cached and stable, and is always a usable thread
        // count (>= 1): clamping a default with it can never produce an
        // invalid fan-out, and on a 1-core machine it forces the serial
        // path for default-threaded callers.
        let hw = hardware_parallelism();
        assert!(hw >= 1);
        assert_eq!(hw, hardware_parallelism());
    }

    #[test]
    fn resolve_threads_one_is_the_serial_path() {
        // `threads = 1` must resolve to exactly 1 (never the configured
        // default): it is the contract for forcing the serial path.
        assert_eq!(resolve_threads(1), 1);
    }

    #[test]
    fn set_configured_threads_override_and_serial_clear() {
        // Installing a count makes it the process default; clearing with 0
        // restores the machine fallback — so `set_configured_threads(1)` is
        // how a binary forces the serial path globally.
        let _guard = THREADS_GUARD.lock().unwrap_or_else(|p| p.into_inner());
        set_configured_threads(1);
        assert_eq!(configured_threads(), 1);
        assert_eq!(resolve_threads(0), 1);
        set_configured_threads(7);
        assert_eq!(configured_threads(), 7);
        set_configured_threads(0);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn configured_threads_is_a_valid_serial_fallback() {
        // Whatever the configuration says, the configured count is a usable
        // thread count (>= 1), so `map_ranges(len, configured_threads())`
        // can always degrade to the serial span layout.
        let _guard = THREADS_GUARD.lock().unwrap_or_else(|p| p.into_inner());
        let t = configured_threads();
        assert!(t >= 1);
        let flat: Vec<usize> = map_ranges(10, t, |r| r.clone())
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }
}

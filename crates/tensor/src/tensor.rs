//! The [`Tensor`] type: contiguous, row-major `f32` storage plus a shape.

use crate::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// All neural-network state in the workspace (weights, activations,
/// gradients, speed matrices) is stored as `Tensor`s. The type is cheap to
/// construct and clone-on-demand; it deliberately has no views or strides so
/// backward passes stay easy to audit.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Builds a tensor from a flat row-major buffer. Panics when the buffer
    /// length does not match the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// A tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.numel()];
        Tensor { shape, data }
    }

    /// A tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Tensor { shape, data }
    }

    /// A rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Shape accessor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Size of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.shape.dim(i)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable reference at a multi-dimensional index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The single value of a scalar or one-element tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with {} elements",
            self.numel()
        );
        self.data[0]
    }

    /// Returns a tensor with the same buffer reinterpreted under `dims`.
    /// Panics when element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert!(
            self.shape.reshape_compatible(&shape),
            "cannot reshape {} into {shape}",
            self.shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Row `r` of a rank-2 tensor, as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a matrix");
        let cols = self.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable row `r` of a rank-2 tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a matrix");
        let cols = self.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// True when any element is NaN or infinite; used by training loops to
    /// detect divergence early.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Approximate in-memory size in bytes (buffer only), used by the
    /// Table 5 "model size" measurements.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * size_of::<f32>()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ... {} elements]", &self.data[..8], self.numel())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let o = Tensor::ones(&[4]);
        assert!(o.as_slice().iter().all(|&v| v == 1.0));

        let s = Tensor::scalar(2.5);
        assert_eq!(s.item(), 2.5);
        assert_eq!(s.rank(), 0);

        let e = Tensor::eye(3);
        assert_eq!(e.at(&[1, 1]), 1.0);
        assert_eq!(e.at(&[1, 2]), 0.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        *t.at_mut(&[1, 2]) = 7.0;
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.as_slice()[5], 7.0);
    }

    #[test]
    fn rows() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.rank(), 1);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.as_mut_slice()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn serde_round_trip() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.5], &[3]);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}

//! Shape bookkeeping for row-major tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a tensor: a small vector of dimension sizes, row-major.
///
/// A scalar has an empty dims list; vectors have one dim; matrices two;
/// the interval encoder's channel tensors three (`[channels, rows, cols]`).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The scalar shape (zero dimensions, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `i`. Panics when out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (i, d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Flat offset of a multi-dimensional index. Panics on rank mismatch or
    /// out-of-range coordinates in debug builds.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        let mut acc = 1;
        for i in (0..self.0.len()).rev() {
            debug_assert!(index[i] < self.0[i], "index out of range in dim {i}");
            off += index[i] * acc;
            acc *= self.0[i];
        }
        off
    }

    /// True when both shapes have the same element count, i.e. a reshape
    /// between them is legal.
    pub fn reshape_compatible(&self, other: &Shape) -> bool {
        self.numel() == other.numel()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offsets() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    fn reshape_compat() {
        assert!(Shape::new(&[2, 6]).reshape_compatible(&Shape::new(&[3, 4])));
        assert!(!Shape::new(&[2, 6]).reshape_compatible(&Shape::new(&[3, 5])));
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}

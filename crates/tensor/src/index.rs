//! Checked float → index conversions.
//!
//! A bare `expr as usize` on a float silently truncates — and on a NaN or
//! negative input it silently produces 0, which turns a numeric bug into
//! a wrong-but-plausible slot/bucket index far from its cause. deepod-lint
//! (`truncating-cast`) denies float-producing expressions cast straight to
//! integer types; this module is the audited funnel those casts go
//! through instead. Each helper `debug_assert!`s the domain (zero release
//! cost) and applies a documented clamp so release behavior is total.

/// Floors a finite, non-negative float to an index. Negative inputs clamp
/// to 0 in release and fail a `debug_assert` in debug builds.
#[inline]
pub fn floor_index(x: f64) -> usize {
    debug_assert!(x.is_finite(), "index source must be finite, got {x}");
    debug_assert!(x >= 0.0, "index source must be non-negative, got {x}");
    x.max(0.0) as usize
}

/// Ceiling of a finite, non-negative float as a count (grid dimensions,
/// sample counts). Negative inputs clamp to 0 under the same contract as
/// [`floor_index`].
#[inline]
pub fn ceil_count(x: f64) -> usize {
    debug_assert!(x.is_finite(), "count source must be finite, got {x}");
    debug_assert!(x >= 0.0, "count source must be non-negative, got {x}");
    // deepod-lint: allow(truncating-cast) — this IS the audited funnel
    x.max(0.0).ceil() as usize
}

/// Nearest-integer rounding of a finite, non-negative float as a count.
#[inline]
pub fn round_count(x: f64) -> usize {
    debug_assert!(x.is_finite(), "count source must be finite, got {x}");
    debug_assert!(x >= 0.0, "count source must be non-negative, got {x}");
    // deepod-lint: allow(truncating-cast) — this IS the audited funnel
    x.max(0.0).round() as usize
}

/// Floors a finite float to a signed bucket coordinate (spatial hashing
/// admits negative cells). The value must fit in `i64`'s exact range.
#[inline]
pub fn floor_coord(x: f64) -> i64 {
    debug_assert!(x.is_finite(), "coordinate source must be finite, got {x}");
    debug_assert!(
        x.abs() < 9.0e18,
        "coordinate source {x} overflows the bucket range"
    );
    // deepod-lint: allow(truncating-cast) — this IS the audited funnel
    x.floor() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_index_truncates_toward_zero() {
        assert_eq!(floor_index(0.0), 0);
        assert_eq!(floor_index(3.999), 3);
        assert_eq!(floor_index(4.0), 4);
    }

    #[test]
    fn ceil_and_round_counts() {
        assert_eq!(ceil_count(0.0), 0);
        assert_eq!(ceil_count(2.01), 3);
        assert_eq!(round_count(2.49), 2);
        assert_eq!(round_count(2.51), 3);
    }

    #[test]
    fn floor_coord_handles_negatives() {
        assert_eq!(floor_coord(-0.25), -1);
        assert_eq!(floor_coord(1.75), 1);
        assert_eq!(floor_coord(-3.0), -3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    #[cfg(debug_assertions)]
    fn floor_index_rejects_negative_in_debug() {
        floor_index(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    #[cfg(debug_assertions)]
    fn floor_index_rejects_nan_in_debug() {
        floor_index(f64::NAN);
    }
}

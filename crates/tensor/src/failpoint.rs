//! Deterministic fault injection for the crash-safety test harness.
//!
//! A *failpoint* is a named site in the code (`io_guard::pre_rename`,
//! `train::epoch`, `parallel::worker`, ...) that normally does nothing.
//! A binary arms sites for one process by calling [`arm`] with a spec
//! string (conventionally taken from the `DEEPOD_FAILPOINTS` environment
//! variable, which only binaries read — see `deepod_core::RuntimeConfig`):
//!
//! ```text
//! "site:nth[:action][,site:nth[:action]...]"
//! ```
//!
//! * `site` — the name passed to [`hit`] / [`should_fire`].
//! * `nth`  — the 1-based hit count at which the site fires (every site
//!   keeps its own counter, incremented on each visit).
//! * `action` — `kill` (default): terminate the process immediately with
//!   [`KILL_EXIT_CODE`], simulating a hard crash (no destructors, no
//!   flushing — exactly what atomic writes must survive); `panic`:
//!   unwind from the site, which is how worker-thread panic recovery is
//!   exercised; or `sleep[=MS]`: block the site for `MS` milliseconds
//!   ([`DEFAULT_SLEEP_MS`] when omitted), which is how slow-batch /
//!   deadline machinery is exercised without wall-clock-sensitive tests
//!   guessing at scheduler jitter.
//!
//! A malformed entry (unknown action, non-numeric count) makes [`arm`]
//! return an error *without arming anything*; the CLI turns that into an
//! abort with [`CONFIG_EXIT_CODE`]. Fault injection that silently fails
//! to arm would let the crash-safety suite pass without ever injecting a
//! crash.
//!
//! The facility is compiled unconditionally but costs one `OnceLock` load
//! and a `None` check per visit when nothing is armed, so production
//! paths pay nothing measurable. Hits are counted under a mutex from call
//! sites that are themselves sequenced deterministically (IO sites,
//! epoch/step boundaries, the *caller* side of a parallel fan-out), so
//! for a fixed schedule the same run always dies in the same place — the
//! property the kill/resume integration suite depends on.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Exit status used by the `kill` action, chosen to be distinguishable
/// from a clean exit (0), a reported error (1), a degraded fallback (2),
/// and a Rust panic (101).
pub const KILL_EXIT_CODE: i32 = 70;

/// Exit status for a malformed `DEEPOD_FAILPOINTS` value (BSD `EX_CONFIG`).
/// A typo like `io:1:kil` must abort the process rather than silently
/// disarm the fault the test meant to inject — a crash-safety suite whose
/// faults never fire passes vacuously.
pub const CONFIG_EXIT_CODE: i32 = 78;

/// Delay used by the `sleep` action when no `=MS` value is given: long
/// enough to overrun any realistic per-request deadline in a test, short
/// enough to keep chaos suites fast.
pub const DEFAULT_SLEEP_MS: u64 = 100;

/// What an armed failpoint does when its hit count is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Action {
    /// Terminate the process immediately (simulated crash / SIGKILL).
    Kill,
    /// Panic at the site (worker-thread fault injection).
    Panic,
    /// Stall the site for the given number of milliseconds (slow-batch /
    /// deadline fault injection); execution then continues normally.
    Sleep(u64),
}

#[derive(Debug)]
struct Spec {
    nth: u64,
    action: Action,
    hits: u64,
}

static REGISTRY: OnceLock<Mutex<HashMap<String, Spec>>> = OnceLock::new();

fn registry() -> Option<&'static Mutex<HashMap<String, Spec>>> {
    REGISTRY.get()
}

/// Parses a full failpoint spec string and installs the armed sites for
/// the rest of the process. Every entry is parsed *before* anything arms:
/// a malformed entry returns `Err(why)` and leaves the process unarmed,
/// so a typo like `io:1:kil` can never half-configure a crash test. An
/// empty or all-whitespace spec is a no-op `Ok`.
///
/// Arming is once-per-process; a second call with a non-empty spec after
/// sites are installed returns an error rather than silently merging.
pub fn arm(spec: &str) -> Result<(), String> {
    let mut map = HashMap::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (site, parsed) = parse_spec(part)?;
        map.insert(site, parsed);
    }
    if map.is_empty() {
        return Ok(());
    }
    REGISTRY
        .set(Mutex::new(map))
        .map_err(|_| "failpoints already armed for this process".to_string())
}

/// Parses one `site:nth[:action]` entry. The site itself may contain `::`
/// (module-path style names), so the split points are the *last* one or
/// two `:` separators that parse as a count / action.
///
/// Anything that is neither a count nor a recognized action is a hard
/// error: the caller aborts with [`CONFIG_EXIT_CODE`] rather than running
/// with the fault silently disarmed.
fn parse_spec(part: &str) -> Result<(String, Spec), String> {
    // fields are in reverse order: [last, middle, rest...]
    let fields: Vec<&str> = part.rsplitn(3, ':').collect();
    if fields.len() < 2 {
        return Err(format!("'{part}': expected 'site:nth[:action]'"));
    }
    let last = fields[0];
    let (site, nth, action) = if let Ok(n) = last.parse::<u64>() {
        // Count form, default action: `site:nth`. When the site contains
        // `::`, rsplitn over-split it; re-join the front parts.
        let site = if let [_, mid, rest] = fields.as_slice() {
            format!("{rest}:{mid}")
        } else {
            fields[1].to_string()
        };
        (site, n, Action::Kill)
    } else {
        // Explicit-action form: `site:nth:action`.
        let action = if last.eq_ignore_ascii_case("kill") {
            Action::Kill
        } else if last.eq_ignore_ascii_case("panic") {
            Action::Panic
        } else if last.eq_ignore_ascii_case("sleep") {
            Action::Sleep(DEFAULT_SLEEP_MS)
        } else if let Some(ms_text) = last
            .strip_prefix("sleep=")
            .or_else(|| last.strip_prefix("SLEEP="))
        {
            let ms: u64 = ms_text
                .parse()
                .map_err(|_| format!("'{part}': sleep delay '{ms_text}' is not a number"))?;
            Action::Sleep(ms)
        } else {
            return Err(format!(
                "'{part}': unknown action '{last}' (kill|panic|sleep[=MS])"
            ));
        };
        let [_, nth_text, site] = fields.as_slice() else {
            return Err(format!("'{part}': missing hit count before '{last}'"));
        };
        let n: u64 = nth_text
            .parse()
            .map_err(|_| format!("'{part}': hit count '{nth_text}' is not a number"))?;
        ((*site).to_string(), n, action)
    };
    if site.is_empty() {
        return Err(format!("'{part}': empty site name"));
    }
    Ok((
        site,
        Spec {
            nth: nth.max(1),
            action,
            hits: 0,
        },
    ))
}

/// Whether any failpoint is armed in this process (fast pre-check for
/// callers that want to skip building site names).
pub fn armed() -> bool {
    registry().is_some()
}

/// Records a visit to `site`. If the site is armed and this visit is its
/// `nth`, the configured action triggers: the process exits with
/// [`KILL_EXIT_CODE`] (`kill`) or the call panics (`panic`). Unarmed or
/// off-count visits return normally.
pub fn hit(site: &str) {
    if should_fire(site) {
        fire(site);
    }
}

/// Like [`hit`], but instead of firing in place it reports that the site
/// just reached its trigger count, leaving the action to the caller. Used
/// by [`crate::parallel`] to count fan-outs on the (deterministic) caller
/// thread while making a *worker* thread carry the panic.
pub fn should_fire(site: &str) -> bool {
    let Some(reg) = registry() else {
        return false;
    };
    // A poisoned registry only means another thread panicked mid-update;
    // the counters remain structurally valid, so keep going.
    let mut map = reg.lock().unwrap_or_else(|p| p.into_inner());
    let Some(spec) = map.get_mut(site) else {
        return false;
    };
    spec.hits += 1;
    spec.hits == spec.nth
}

/// Executes the armed action for `site` (only meaningful right after
/// [`should_fire`] returned `true`).
pub fn fire(site: &str) {
    let action = registry()
        .and_then(|reg| {
            let map = reg.lock().unwrap_or_else(|p| p.into_inner());
            map.get(site).map(|s| s.action)
        })
        .unwrap_or(Action::Panic);
    match action {
        Action::Kill => {
            // Last words of a simulated hard crash: raw stderr on purpose —
            // the whole point is that nothing downstream gets to run.
            // deepod-lint: allow(no-bare-eprintln)
            eprintln!("failpoint '{site}': simulating crash (exit {KILL_EXIT_CODE})");
            std::process::exit(KILL_EXIT_CODE);
        }
        Action::Panic => {
            // Unwinding is the entire point of the `panic` action.
            // deepod-lint: allow(panic)
            panic!("failpoint '{site}': injected panic");
        }
        Action::Sleep(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and armed at most once, so unit tests
    // exercise the parser directly (plus one arming test that owns the
    // global slot); end-to-end firing is covered by the kill/resume
    // integration suite driving the CLI binary with DEEPOD_FAILPOINTS set
    // per subprocess.

    #[test]
    fn parses_plain_site() {
        let (site, spec) = parse_spec("io_guard::pre_rename:3").expect("parses");
        assert_eq!(site, "io_guard::pre_rename");
        assert_eq!(spec.nth, 3);
        assert_eq!(spec.action, Action::Kill);
    }

    #[test]
    fn parses_explicit_actions() {
        let (site, spec) = parse_spec("parallel::worker:2:panic").expect("parses");
        assert_eq!(site, "parallel::worker");
        assert_eq!(spec.nth, 2);
        assert_eq!(spec.action, Action::Panic);

        let (site, spec) = parse_spec("train::epoch:1:kill").expect("parses");
        assert_eq!(site, "train::epoch");
        assert_eq!(spec.action, Action::Kill);
        assert_eq!(spec.nth, 1);
    }

    #[test]
    fn parses_sleep_actions() {
        let (site, spec) = parse_spec("serve::slow_batch:1:sleep").expect("parses");
        assert_eq!(site, "serve::slow_batch");
        assert_eq!(spec.nth, 1);
        assert_eq!(spec.action, Action::Sleep(DEFAULT_SLEEP_MS));

        let (site, spec) = parse_spec("serve::slow_batch:2:sleep=250").expect("parses");
        assert_eq!(site, "serve::slow_batch");
        assert_eq!(spec.nth, 2);
        assert_eq!(spec.action, Action::Sleep(250));
    }

    #[test]
    fn rejects_malformed_sleep_delay() {
        let err = parse_spec("serve::slow_batch:1:sleep=fast").expect_err("must reject");
        assert!(err.contains("not a number"), "got: {err}");
        let err = parse_spec("serve::slow_batch:1:sleeep").expect_err("must reject");
        assert!(err.contains("unknown action"), "got: {err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_spec("no-count").is_err());
        assert!(parse_spec("site:notanumber").is_err());
        assert!(parse_spec("").is_err());
        assert!(parse_spec(":3").is_err());
    }

    #[test]
    fn unknown_action_is_a_hard_error() {
        // The regression this guards: `kil` used to be dropped with a
        // warning, leaving the fault disarmed and the test vacuous.
        let err = parse_spec("io_guard::pre_write:1:kil").expect_err("must reject");
        assert!(err.contains("unknown action 'kil'"), "got: {err}");
        let err = parse_spec("train::epoch:x:panic").expect_err("must reject");
        assert!(err.contains("not a number"), "got: {err}");
    }

    #[test]
    fn zero_count_clamps_to_one() {
        let (_, spec) = parse_spec("site:0").expect("parses");
        assert_eq!(spec.nth, 1);
    }

    #[test]
    fn unarmed_sites_are_inert() {
        // Sites nobody armed are no-ops whether or not the process-global
        // registry holds other sites.
        assert!(!should_fire("definitely::not::armed"));
        hit("definitely::not::armed");
    }

    #[test]
    fn arm_rejects_malformed_specs_without_arming() {
        // Validation happens before installation: a bad entry anywhere in
        // the list leaves the process unarmed.
        let err = arm("ok::site:1,bad::site:1:explode").expect_err("must reject");
        assert!(err.contains("unknown action 'explode'"), "got: {err}");
        assert!(!should_fire("ok::site"));
        // Empty / whitespace specs are inert successes.
        arm("").expect("empty spec is fine");
        arm("  ,  ").expect("blank entries are skipped");
    }

    #[test]
    fn arm_installs_sites_and_counts_hits() {
        // This is the single test allowed to claim the process-global
        // registry slot (the suite runs in one process).
        arm("unit::probe:2:panic").expect("valid spec arms");
        assert!(armed());
        assert!(!should_fire("unit::probe"), "first hit must not fire");
        assert!(should_fire("unit::probe"), "second hit reaches nth=2");
        assert!(!should_fire("unit::probe"), "past nth stays quiet");
        // Re-arming after installation is refused, not merged.
        let err = arm("other::site:1").expect_err("second arm must fail");
        assert!(err.contains("already armed"), "got: {err}");
    }
}

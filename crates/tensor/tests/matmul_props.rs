//! Property tests for the dense kernels: the blocked tiled matmul must
//! agree with a naive triple loop on ragged shapes (tile remainders in
//! every dimension), and the row-partitioned parallel path must be
//! bit-identical to the serial kernel for every thread count.

use deepod_tensor::{rng_from_seed, Tensor, TEST_EPS};
use proptest::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};

/// Reference i-j-k matmul (different accumulation order than the blocked
/// kernel, so agreement is up to rounding, not bit-exact).
fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn random_pair(m: usize, k: usize, n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = rng_from_seed(seed);
    let a = Tensor::rand_uniform(&[m, k], -2.0, 2.0, &mut rng);
    let b = Tensor::rand_uniform(&[k, n], -2.0, 2.0, &mut rng);
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..65,
        k in 1usize..65,
        n in 1usize..65,
        seed in any::<u64>(),
    ) {
        let (a, b) = random_pair(m, k, n, seed);
        let got = a.matmul(&b);
        let want = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        for (i, (g, w)) in got.as_slice().iter().zip(&want).enumerate() {
            prop_assert!(
                (g - w).abs() <= TEST_EPS * w.abs().max(1.0),
                "({m}x{k}x{n}) elem {i}: blocked {g} vs naive {w}"
            );
        }
    }

    #[test]
    fn thread_count_never_changes_the_product(
        m in 1usize..65,
        k in 1usize..65,
        n in 1usize..65,
        seed in any::<u64>(),
    ) {
        let (a, b) = random_pair(m, k, n, seed);
        let serial: Vec<u32> =
            a.matmul_with_threads(&b, 1).as_slice().iter().map(|v| v.to_bits()).collect();
        for threads in [2usize, 4, 7] {
            let par: Vec<u32> = a
                .matmul_with_threads(&b, threads)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(&serial, &par, "threads = {}", threads);
        }
    }
}

proptest! {
    // Shapes above the fork threshold (2·m·k·n ≥ 2²³), so the parallel
    // path really spawns workers; fewer cases since each is ~10 MFLOP.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn forked_product_is_bit_identical(
        m in 170usize..200,
        k in 170usize..200,
        n in 170usize..200,
        seed in any::<u64>(),
    ) {
        let (a, b) = random_pair(m, k, n, seed);
        let serial: Vec<u32> =
            a.matmul_with_threads(&b, 1).as_slice().iter().map(|v| v.to_bits()).collect();
        for threads in [2usize, 5] {
            let par: Vec<u32> = a
                .matmul_with_threads(&b, threads)
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            prop_assert_eq!(&serial, &par, "({}x{}x{}) threads = {}", m, k, n, threads);
        }
    }
}

//! Property tests for the packed/SIMD kernel module (`deepod_tensor::
//! kernels`) and the int8 quantization path.
//!
//! Determinism contract under test (DESIGN.md §12): the dispatched
//! kernels keep every per-element accumulation in ascending-`k` order
//! with separate multiply and add (no FMA), so the SIMD paths are
//! **bit-identical** to the scalar reference — stronger than the
//! documented ≤ 1-ulp tolerance, which exists as headroom for future
//! ISAs. These tests pin the stronger property with `to_bits` equality;
//! if a future kernel legitimately needs the 1-ulp allowance, relax the
//! assertion here in the same commit that documents why.

use deepod_tensor::kernels;
use deepod_tensor::{rng_from_seed, Activation, Tensor};
use proptest::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig};

fn rand_vec(len: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    let mut rng = rng_from_seed(seed);
    Tensor::rand_uniform(&[len.max(1)], lo, hi, &mut rng)
        .as_slice()
        .to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The dispatched matmul (packed panels + AVX micro-kernel where the
    /// CPU has it) is bit-identical to the scalar blocked reference on
    /// every shape, including panel remainders in all three dimensions.
    #[test]
    fn dispatched_matmul_is_bit_identical_to_reference(
        m in 1usize..80,
        k in 1usize..80,
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        let a = rand_vec(m * k, -2.0, 2.0, seed);
        let b = rand_vec(k * n, -2.0, 2.0, seed ^ 0x9e37_79b9);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        kernels::matmul(&a, &b, &mut got, k, n);
        kernels::matmul_ref(&a, &b, &mut want, k, n);
        let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want, "({}x{}x{}) isa={}", m, k, n, kernels::active_isa().name());
    }

    /// Same contract for the fused matvec epilogue, across every
    /// activation the NN layer stack uses.
    #[test]
    fn dispatched_matvec_is_bit_identical_to_reference(
        rows in 1usize..96,
        cols in 1usize..96,
        act_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let act = [
            Activation::Identity,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
        ][act_idx];
        let w = rand_vec(rows * cols, -1.5, 1.5, seed);
        let x = rand_vec(cols, -1.5, 1.5, seed ^ 0x5bd1_e995);
        let bias = rand_vec(rows, -1.0, 1.0, seed ^ 0xc2b2_ae35);
        let mut got = vec![0.0f32; rows];
        let mut want = vec![0.0f32; rows];
        kernels::matvec_bias_act(&w, &x, &bias, act, &mut got);
        kernels::matvec_ref(&w, &x, &bias, act, &mut want);
        let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want, "{}x{} {:?}", rows, cols, act);
    }

    /// axpy (`y += a·x`) dispatch is bit-identical to the scalar loop.
    #[test]
    fn dispatched_axpy_is_bit_identical_to_scalar(
        len in 1usize..200,
        a in -3.0f32..3.0,
        seed in any::<u64>(),
    ) {
        let x = rand_vec(len, -2.0, 2.0, seed);
        let mut got = rand_vec(len, -2.0, 2.0, seed ^ 0x27d4_eb2f);
        let mut want = got.clone();
        kernels::axpy(&mut got, &x, a);
        for (yi, xi) in want.iter_mut().zip(&x) {
            *yi += a * *xi;
        }
        let got: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(got, want);
    }

    /// Per-row int8 round trip: every weight must dequantize back to
    /// within half a quantization step (plus float slack), and a row's
    /// scale must reproduce its absmax element at full magnitude.
    #[test]
    fn quantize_round_trip_error_is_bounded(
        rows in 1usize..24,
        cols in 1usize..48,
        scale_mag in 0.01f32..100.0,
        seed in any::<u64>(),
    ) {
        let w: Vec<f32> = rand_vec(rows * cols, -1.0, 1.0, seed)
            .into_iter()
            .map(|v| v * scale_mag)
            .collect();
        let q = kernels::quantize_rows(&w, rows, cols);
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            let scale = q.scales[r];
            prop_assert!(scale > 0.0, "row {} scale {}", r, scale);
            for (c, &v) in row.iter().enumerate() {
                let deq = f32::from(q.q[r * cols + c]) * scale;
                let bound = scale * 0.5 + scale_mag * 1e-5;
                prop_assert!(
                    (v - deq).abs() <= bound,
                    "row {} col {}: {} -> {} (scale {}, bound {})",
                    r, c, v, deq, scale, bound
                );
            }
        }
    }

    /// The packed int8 matvec agrees with explicit dequantize-then-f32
    /// arithmetic in the exact accumulation order the kernel documents —
    /// i8→f32 conversion is exact, so scalar and SIMD paths both match.
    #[test]
    fn int8_matvec_matches_dequantized_reference(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in any::<u64>(),
    ) {
        let w = rand_vec(rows * cols, -2.0, 2.0, seed);
        let x = rand_vec(cols, -2.0, 2.0, seed ^ 0x1656_67b1);
        let bias = rand_vec(rows, -1.0, 1.0, seed ^ 0x85eb_ca6b);
        let q = kernels::quantize_rows(&w, rows, cols);
        let packed = kernels::pack_quantized(&q);
        let mut got = vec![0.0f32; rows];
        kernels::matvec_i8_bias_act(&packed, &q.scales, &bias, &x, Activation::Relu, &mut got);
        // Reference: integer-grid weights accumulated in ascending k,
        // scale + bias + activation in the epilogue.
        for (r, &g) in got.iter().enumerate() {
            let mut acc = 0.0f32;
            for (c, &xv) in x.iter().enumerate() {
                acc += f32::from(q.q[r * cols + c]) * xv;
            }
            let want = Activation::Relu.apply(acc * q.scales[r] + bias[r]);
            prop_assert_eq!(
                g.to_bits(),
                want.to_bits(),
                "row {}: {} vs {}",
                r, g, want
            );
        }
    }
}

//! The method registry: every baseline plus every DeepOD variant behind
//! one interface, with timing and size accounting so a single call
//! produces a full row of the paper's Tables 4 and 5.

use crate::metrics::{Metrics, MetricsError, PredPair};
use deepod_baselines::{
    GbmConfig, GbmPredictor, LinearRegression, MuratConfig, MuratPredictor, StnnConfig,
    StnnPredictor, TempConfig, TempPredictor, TtePredictor,
};
use deepod_core::{DeepOdConfig, ModelError, TrainOptions, Trainer};
use deepod_traj::CityDataset;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Why [`run_method`] failed: either the model refused its config, or
/// the method produced a pair set over which the paper metrics are
/// undefined (e.g. zero encodable test orders).
#[derive(Debug)]
pub enum HarnessError {
    /// DeepOD config validation or training failed.
    Model(ModelError),
    /// The metric computation over the produced pairs failed.
    Metrics(MetricsError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Model(e) => write!(f, "model error: {e}"),
            HarnessError::Metrics(e) => write!(f, "metrics error: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<ModelError> for HarnessError {
    fn from(e: ModelError) -> Self {
        HarnessError::Model(e)
    }
}

impl From<MetricsError> for HarnessError {
    fn from(e: MetricsError) -> Self {
        HarnessError::Metrics(e)
    }
}

/// A method under evaluation.
pub enum Method {
    /// Any [`TtePredictor`] baseline.
    Baseline(Box<dyn TtePredictor>),
    /// DeepOD (any config/variant/init).
    DeepOd(DeepOdMethod),
}

/// DeepOD wrapped for the harness.
pub struct DeepOdMethod {
    /// Display name (e.g. "DeepOD", "N-st", "T-one").
    pub name: String,
    /// Model + training config.
    pub config: DeepOdConfig,
    /// Training-loop options.
    pub options: TrainOptions,
}

/// One full evaluation row: metrics + efficiency numbers + raw pairs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MethodResult {
    /// Method display name.
    pub name: String,
    /// Table 4 metrics on the test split.
    pub metrics: Metrics,
    /// Offline training wall-clock seconds (Table 5).
    pub train_time_s: f64,
    /// Online estimation seconds per 1 000 queries (Table 5).
    pub est_time_s_per_k: f64,
    /// Model size in bytes (Table 5).
    pub model_size_bytes: usize,
    /// Per-test-sample prediction pairs (Figs. 11–13).
    pub pairs: Vec<PredPair>,
    /// Validation-MAE curve for deep methods (Fig. 10), empty otherwise.
    pub curve: Vec<(usize, f32, f64)>,
}

/// Collects prediction pairs from any closure that maps an order index to
/// a prediction.
fn collect_pairs(ds: &CityDataset, mut predict: impl FnMut(usize) -> Option<f32>) -> Vec<PredPair> {
    ds.test
        .iter()
        .enumerate()
        .filter_map(|(i, o)| {
            predict(i).map(|p| PredPair {
                actual: o.travel_time as f32,
                predicted: p,
            })
        })
        .collect()
}

/// Trains and evaluates a method on a dataset, producing a result row.
/// Fails when a DeepOD method's config does not validate or when the
/// method yields a pair set the paper metrics are undefined over.
pub fn run_method(method: Method, ds: &CityDataset) -> Result<MethodResult, HarnessError> {
    crate::metrics::register_metrics();
    match method {
        Method::Baseline(mut p) => {
            let t0 = Instant::now();
            p.fit(ds);
            let train_time_s = t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            let pairs = collect_pairs(ds, |i| p.predict(&ds.test[i].od));
            let est_elapsed = t1.elapsed().as_secs_f64();
            let est_time_s_per_k = est_elapsed / ds.test.len().max(1) as f64 * 1000.0;

            Ok(MethodResult {
                name: p.name().to_string(),
                metrics: Metrics::from_pairs(&pairs)?,
                train_time_s,
                est_time_s_per_k,
                model_size_bytes: p.size_bytes(),
                pairs,
                curve: Vec::new(),
            })
        }
        Method::DeepOd(m) => {
            let t0 = Instant::now();
            let mut trainer = Trainer::new(ds, m.config, m.options)?;
            let report = trainer.train();
            let train_time_s = t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            let preds = trainer.predict_orders(&ds.test);
            let est_elapsed = t1.elapsed().as_secs_f64();
            let est_time_s_per_k = est_elapsed / ds.test.len().max(1) as f64 * 1000.0;

            let pairs = collect_pairs(ds, |i| preds[i]);
            let model_size = trainer.model().size_bytes();
            Ok(MethodResult {
                name: m.name,
                metrics: Metrics::from_pairs(&pairs)?,
                train_time_s,
                est_time_s_per_k,
                model_size_bytes: model_size,
                pairs,
                curve: report
                    .curve
                    .iter()
                    .map(|p| (p.step, p.val_mae, p.elapsed_s))
                    .collect(),
            })
        }
    }
}

/// The five baselines of §6.1 with laptop-scale settings.
pub fn all_baselines() -> Vec<Method> {
    vec![
        Method::Baseline(Box::new(TempPredictor::new(TempConfig::default()))),
        Method::Baseline(Box::new(LinearRegression::new(1e-3))),
        Method::Baseline(Box::new(GbmPredictor::new(GbmConfig::default()))),
        Method::Baseline(Box::new(StnnPredictor::new(StnnConfig::default()))),
        // MuratConfig::default uses 300 s slots, a week divisor — cannot fail.
        Method::Baseline(Box::new(
            MuratPredictor::new(MuratConfig::default()).expect("default murat slot size"), // deepod-lint: allow(expect)
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    #[test]
    fn baseline_row_complete() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 120));
        let res = run_method(Method::Baseline(Box::new(LinearRegression::new(1e-3))), &ds)
            .expect("baseline runs");
        assert_eq!(res.name, "LR");
        assert!(res.metrics.mae.is_finite());
        assert!(res.metrics.mape_pct > 0.0);
        assert!(res.train_time_s >= 0.0);
        assert!(res.est_time_s_per_k >= 0.0);
        assert!(res.model_size_bytes > 0);
        assert!(!res.pairs.is_empty());
        assert!(res.curve.is_empty());
    }

    #[test]
    fn deepod_row_has_curve() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 100));
        let cfg = DeepOdConfig {
            epochs: 1,
            init: deepod_core::EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let res = run_method(
            Method::DeepOd(DeepOdMethod {
                name: "DeepOD".into(),
                config: cfg,
                options: TrainOptions::default(),
            }),
            &ds,
        )
        .expect("deepod runs");
        assert_eq!(res.name, "DeepOD");
        assert!(!res.curve.is_empty(), "deep methods must expose a curve");
        assert!(res.metrics.mae.is_finite());
    }

    #[test]
    fn route_tte_extension_runs_through_harness() {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 120));
        let r = run_method(
            Method::Baseline(Box::new(deepod_baselines::RouteTtePredictor::new())),
            &ds,
        )
        .expect("extension runs");
        assert_eq!(r.name, "RouteTTE");
        assert!(r.metrics.mae.is_finite());
        assert!(r.model_size_bytes > 0);
    }

    #[test]
    fn all_baselines_present() {
        let names: Vec<&str> = all_baselines()
            .iter()
            .map(|m| match m {
                Method::Baseline(b) => b.name(),
                Method::DeepOd(_) => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["TEMP", "LR", "GBM", "STNN", "MURAT"]);
    }
}

//! The serving precision gate: int8 is allowed to serve only when its
//! accuracy cost, measured as a MAPE delta against the f32 model on held
//! out orders, stays within a configured bound (DESIGN.md §12).
//!
//! The gate is deliberately one-sided: an int8 model that happens to score
//! *better* than f32 (quantization noise can cut either way on a finite
//! sample) always passes; only a MAPE regression beyond the bound fails.

use crate::metrics::{Metrics, MetricsError, PredPair};
use deepod_core::{DeepOdModel, FeatureContext, PredictRequest, QuantizedModel};
use deepod_traj::{CityDataset, TaxiOrder};

/// Accuracy bound for selecting the int8 serving path.
#[derive(Clone, Copy, Debug)]
pub struct PrecisionGate {
    /// Largest tolerated `int8 MAPE − f32 MAPE` in percentage points.
    pub max_mape_delta_pct: f32,
}

impl Default for PrecisionGate {
    fn default() -> Self {
        PrecisionGate {
            max_mape_delta_pct: Self::DEFAULT_MAPE_DELTA_PCT,
        }
    }
}

/// The gate's verdict, with both metric rows for reporting.
#[derive(Clone, Copy, Debug)]
pub struct PrecisionReport {
    /// Metrics of the f32 reference model on the evaluated orders.
    pub f32_metrics: Metrics,
    /// Metrics of the quantized model on the same orders.
    pub int8_metrics: Metrics,
    /// `int8 MAPE − f32 MAPE` in percentage points (negative = int8 won).
    pub mape_delta_pct: f32,
    /// The bound the delta was checked against.
    pub bound_pct: f32,
    /// Whether int8 may serve.
    pub passed: bool,
}

impl std::fmt::Display for PrecisionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "f32 MAPE {:.3}% | int8 MAPE {:.3}% | delta {:+.3}pp (bound {:.3}pp) -> {}",
            self.f32_metrics.mape_pct,
            self.int8_metrics.mape_pct,
            self.mape_delta_pct,
            self.bound_pct,
            if self.passed { "PASS" } else { "FAIL" }
        )
    }
}

impl PrecisionGate {
    /// Default bound: one percentage point of MAPE.
    pub const DEFAULT_MAPE_DELTA_PCT: f32 = 1.0;

    /// A gate with an explicit bound (percentage points).
    pub fn new(max_mape_delta_pct: f32) -> Self {
        PrecisionGate { max_mape_delta_pct }
    }

    /// Checks pre-computed pair sets (both against the same ground truth).
    pub fn check(
        &self,
        f32_pairs: &[PredPair],
        int8_pairs: &[PredPair],
    ) -> Result<PrecisionReport, MetricsError> {
        let f32_metrics = Metrics::from_pairs(f32_pairs)?;
        let int8_metrics = Metrics::from_pairs(int8_pairs)?;
        let mape_delta_pct = int8_metrics.mape_pct - f32_metrics.mape_pct;
        Ok(PrecisionReport {
            f32_metrics,
            int8_metrics,
            mape_delta_pct,
            bound_pct: self.max_mape_delta_pct,
            passed: mape_delta_pct <= self.max_mape_delta_pct,
        })
    }

    /// Runs both models over `orders` and checks the gate. Orders whose
    /// endpoints do not match the network are skipped for both models, so
    /// the two pair sets always cover the same trips.
    pub fn evaluate(
        &self,
        model: &DeepOdModel,
        quantized: &QuantizedModel,
        ctx: &FeatureContext,
        ds: &CityDataset,
        orders: &[TaxiOrder],
        threads: usize,
    ) -> Result<PrecisionReport, MetricsError> {
        let reqs: Vec<PredictRequest> = orders.iter().map(|o| PredictRequest::Raw(o.od)).collect();
        let f32_out = model.estimate_batch(ctx, &ds.net, &reqs, threads);
        let int8_out = quantized.estimate_batch(ctx, &ds.net, &reqs, threads);
        let mut f32_pairs = Vec::with_capacity(orders.len());
        let mut int8_pairs = Vec::with_capacity(orders.len());
        for ((order, a), b) in orders.iter().zip(&f32_out).zip(&int8_out) {
            let (Ok(a), Ok(b)) = (a, b) else { continue };
            let actual = order.travel_time as f32;
            f32_pairs.push(PredPair {
                actual,
                predicted: a.eta_seconds,
            });
            int8_pairs.push(PredPair {
                actual,
                predicted: b.eta_seconds,
            });
        }
        self.check(&f32_pairs, &int8_pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_core::{DeepOdConfig, EmbeddingInit};
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn close_pairs(shift: f32) -> Vec<PredPair> {
        (1..=20)
            .map(|i| PredPair {
                actual: 100.0 * i as f32,
                predicted: 100.0 * i as f32 * (1.0 + shift),
            })
            .collect()
    }

    #[test]
    fn small_delta_passes_large_delta_fails() {
        let gate = PrecisionGate::new(1.0);
        let f32_pairs = close_pairs(0.02);
        // ~0.5pp worse than f32: inside a 1pp bound.
        let ok = gate.check(&f32_pairs, &close_pairs(0.025)).expect("pairs");
        assert!(ok.passed, "{ok}");
        assert!(ok.mape_delta_pct > 0.0);
        // ~8pp worse: out of bounds.
        let bad = gate.check(&f32_pairs, &close_pairs(0.10)).expect("pairs");
        assert!(!bad.passed, "{bad}");
    }

    #[test]
    fn int8_better_than_f32_always_passes() {
        let gate = PrecisionGate::new(0.0);
        let rep = gate
            .check(&close_pairs(0.05), &close_pairs(0.01))
            .expect("pairs");
        assert!(rep.mape_delta_pct < 0.0);
        assert!(rep.passed);
    }

    #[test]
    fn untrained_model_quantizes_within_default_gate() {
        // End-to-end: quantizing a freshly initialized model must cost far
        // less accuracy than the default bound on synthetic orders.
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        let qm = QuantizedModel::from_model(&model);
        let rep = PrecisionGate::default()
            .evaluate(&model, &qm, &ctx, &ds, &ds.test, 1)
            .expect("gate evaluates");
        assert!(rep.passed, "{rep}");
    }
}

//! The paper's three evaluation metrics (§6.1):
//! `MAE = mean |y − ŷ|`, `MAPE = mean |y − ŷ| / y`,
//! `MARE = Σ|y − ŷ| / Σ y`, plus histogram utilities for the Fig. 11
//! MAPE-distribution plot.
//!
//! All aggregate metrics return [`MetricsError`] instead of silently
//! producing NaN: an empty pair set is a caller bug (an upstream predictor
//! produced nothing), and letting NaN flow into serialized reports hid
//! that for several benchmark configurations.

use serde::{Deserialize, Serialize};

/// A (ground truth, prediction) pair in seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredPair {
    /// Ground-truth travel time.
    pub actual: f32,
    /// Predicted travel time.
    pub predicted: f32,
}

impl PredPair {
    /// Absolute error.
    pub fn abs_err(&self) -> f32 {
        (self.actual - self.predicted).abs()
    }

    /// Absolute percentage error (the per-sample MAPE term). Per-sample
    /// use (Fig. 11 scatter) floors the denominator; the aggregate
    /// [`mape`] instead *skips* near-zero actuals and counts them.
    pub fn ape(&self) -> f32 {
        self.abs_err() / self.actual.max(1e-6)
    }
}

/// Travel times at or below this are treated as degenerate for MAPE:
/// dividing by them would let a single simulated zero-second trip blow
/// up the mean.
pub const MAPE_MIN_ACTUAL: f32 = 1e-6;

/// Typed failure modes for the aggregate metrics. Replaces the old
/// behaviour of returning NaN, which flowed unflagged into reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsError {
    /// No prediction pairs at all — the upstream predictor produced
    /// nothing, so every metric is undefined.
    EmptySet,
    /// Every pair was excluded by the MAPE near-zero-actual guard.
    AllSkipped {
        /// How many pairs the guard dropped (= the input length).
        skipped: usize,
    },
    /// MARE's denominator `Σ actual` was not positive.
    NonPositiveActualSum,
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricsError::EmptySet => write!(f, "empty prediction pair set; metrics undefined"),
            MetricsError::AllSkipped { skipped } => write!(
                f,
                "all {skipped} pairs had near-zero actual travel time; MAPE undefined"
            ),
            MetricsError::NonPositiveActualSum => {
                write!(
                    f,
                    "sum of actual travel times is not positive; MARE undefined"
                )
            }
        }
    }
}

impl std::error::Error for MetricsError {}

/// Mean Absolute Error in seconds.
pub fn mae(pairs: &[PredPair]) -> Result<f32, MetricsError> {
    if pairs.is_empty() {
        return Err(MetricsError::EmptySet);
    }
    Ok(pairs.iter().map(PredPair::abs_err).sum::<f32>() / pairs.len() as f32)
}

/// Eagerly materializes the eval counters. [`mape`] also reports a zero
/// delta per call, but that only covers runs that reach it; the harness
/// registers up front so aborted runs still carry the key.
pub fn register_metrics() {
    deepod_core::obs::registry::counter_add("eval.mape_skipped", 0);
}

/// Mean Absolute Percentage Error (fraction; multiply by 100 for %).
///
/// Pairs whose `actual` is at or below [`MAPE_MIN_ACTUAL`] are skipped
/// (not floored): a simulated zero-second trip would otherwise dominate
/// the mean. Each call reports the number of skipped pairs on the
/// `eval.mape_skipped` counter — including a zero delta, so the key is
/// always present in the metrics artifact.
pub fn mape(pairs: &[PredPair]) -> Result<f32, MetricsError> {
    if pairs.is_empty() {
        return Err(MetricsError::EmptySet);
    }
    let mut sum = 0.0f32;
    let mut kept = 0usize;
    for p in pairs {
        if p.actual <= MAPE_MIN_ACTUAL {
            continue;
        }
        sum += p.abs_err() / p.actual;
        kept += 1;
    }
    let skipped = pairs.len() - kept;
    deepod_core::obs::registry::counter_add("eval.mape_skipped", skipped as u64);
    if kept == 0 {
        return Err(MetricsError::AllSkipped { skipped });
    }
    Ok(sum / kept as f32)
}

/// Mean Absolute Relative Error: Σ|err| / Σ actual (fraction).
pub fn mare(pairs: &[PredPair]) -> Result<f32, MetricsError> {
    if pairs.is_empty() {
        return Err(MetricsError::EmptySet);
    }
    let num: f32 = pairs.iter().map(PredPair::abs_err).sum();
    let den: f32 = pairs.iter().map(|p| p.actual).sum();
    if den <= 0.0 {
        return Err(MetricsError::NonPositiveActualSum);
    }
    Ok(num / den)
}

/// All three metrics bundled (one row of the paper's Table 4).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Metrics {
    /// MAE in seconds.
    pub mae: f32,
    /// MAPE as a percentage.
    pub mape_pct: f32,
    /// MARE as a percentage.
    pub mare_pct: f32,
}

impl Metrics {
    /// Computes all three metrics from prediction pairs. Fails on an
    /// empty pair set or degenerate actuals instead of returning NaN.
    pub fn from_pairs(pairs: &[PredPair]) -> Result<Metrics, MetricsError> {
        Ok(Metrics {
            mae: mae(pairs)?,
            mape_pct: 100.0 * mape(pairs)?,
            mare_pct: 100.0 * mare(pairs)?,
        })
    }
}

/// Normalized histogram (an empirical PDF) of `values` over `bins` equal
/// bins spanning `[lo, hi)`; returns `(bin_centers, densities)`. Used for
/// the Fig. 11 MAPE-distribution curves.
pub fn histogram(values: &[f32], lo: f32, hi: f32, bins: usize) -> (Vec<f32>, Vec<f32>) {
    assert!(bins > 0 && hi > lo, "invalid histogram spec");
    let width = (hi - lo) / bins as f32;
    let mut counts = vec![0usize; bins];
    let mut total = 0usize;
    for &v in values {
        if v < lo || v >= hi {
            continue;
        }
        counts[((v - lo) / width) as usize] += 1;
        total += 1;
    }
    let centers = (0..bins).map(|b| lo + (b as f32 + 0.5) * width).collect();
    let density = counts
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                c as f32 / (total as f32 * width)
            }
        })
        .collect();
    (centers, density)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs() -> Vec<PredPair> {
        vec![
            PredPair {
                actual: 100.0,
                predicted: 110.0,
            },
            PredPair {
                actual: 200.0,
                predicted: 180.0,
            },
            PredPair {
                actual: 400.0,
                predicted: 430.0,
            },
        ]
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&pairs()).unwrap() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn mape_known_value() {
        // (0.1 + 0.1 + 0.075) / 3
        assert!((mape(&pairs()).unwrap() - 0.091666).abs() < 1e-4);
    }

    #[test]
    fn mare_known_value() {
        // 60 / 700
        assert!((mare(&pairs()).unwrap() - 60.0 / 700.0).abs() < 1e-6);
    }

    #[test]
    fn metrics_bundle() {
        let m = Metrics::from_pairs(&pairs()).unwrap();
        assert!((m.mae - 20.0).abs() < 1e-5);
        assert!((m.mape_pct - 9.1666).abs() < 1e-2);
        assert!((m.mare_pct - 100.0 * 60.0 / 700.0).abs() < 1e-3);
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        assert_eq!(mae(&[]), Err(MetricsError::EmptySet));
        assert_eq!(mape(&[]), Err(MetricsError::EmptySet));
        assert_eq!(mare(&[]), Err(MetricsError::EmptySet));
        assert_eq!(
            Metrics::from_pairs(&[]).unwrap_err(),
            MetricsError::EmptySet
        );
    }

    #[test]
    fn mape_skips_zero_actual_pairs_and_counts_them() {
        let mut ps = pairs();
        ps.push(PredPair {
            actual: 0.0,
            predicted: 50.0,
        });
        let before = deepod_core::obs::registry::snapshot()
            .counters
            .get("eval.mape_skipped")
            .copied()
            .unwrap_or(0);
        // The zero-actual pair is skipped, so the mean is unchanged.
        let m = mape(&ps).unwrap();
        assert!(
            (m - 0.091666).abs() < 1e-4,
            "skipped pair changed MAPE: {m}"
        );
        let after = deepod_core::obs::registry::snapshot()
            .counters
            .get("eval.mape_skipped")
            .copied()
            .unwrap_or(0);
        assert_eq!(after - before, 1, "exactly one pair should be skipped");
    }

    #[test]
    fn mape_all_zero_actuals_is_a_typed_error() {
        let ps = vec![
            PredPair {
                actual: 0.0,
                predicted: 5.0,
            },
            PredPair {
                actual: 0.0,
                predicted: 9.0,
            },
        ];
        assert_eq!(mape(&ps), Err(MetricsError::AllSkipped { skipped: 2 }));
    }

    #[test]
    fn mare_rejects_non_positive_actual_sum() {
        let ps = vec![PredPair {
            actual: 0.0,
            predicted: 3.0,
        }];
        assert_eq!(mare(&ps), Err(MetricsError::NonPositiveActualSum));
    }

    #[test]
    fn perfect_predictions_zero_error() {
        let p = vec![PredPair {
            actual: 123.0,
            predicted: 123.0,
        }];
        let m = Metrics::from_pairs(&p).unwrap();
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.mape_pct, 0.0);
        assert_eq!(m.mare_pct, 0.0);
    }

    #[test]
    fn mape_vs_mare_asymmetry() {
        // The paper's observation (6): errors on short trips inflate MAPE
        // relative to MARE.
        let short_trip_errors = vec![
            PredPair {
                actual: 60.0,
                predicted: 120.0,
            }, // 100 % APE
            PredPair {
                actual: 1000.0,
                predicted: 1000.0,
            },
        ];
        let m = Metrics::from_pairs(&short_trip_errors).unwrap();
        assert!(m.mape_pct > m.mare_pct);
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let vals: Vec<f32> = (0..1000).map(|i| (i % 100) as f32 / 100.0).collect();
        let (centers, dens) = histogram(&vals, 0.0, 1.0, 20);
        assert_eq!(centers.len(), 20);
        let integral: f32 = dens.iter().map(|d| d * 0.05).sum();
        assert!((integral - 1.0).abs() < 1e-5, "integral {integral}");
    }

    #[test]
    fn histogram_ignores_out_of_range() {
        let vals = vec![-1.0, 0.5, 2.0];
        let (_, dens) = histogram(&vals, 0.0, 1.0, 2);
        let integral: f32 = dens.iter().map(|d| d * 0.5).sum();
        assert!((integral - 1.0).abs() < 1e-6);
    }
}

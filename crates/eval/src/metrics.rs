//! The paper's three evaluation metrics (§6.1):
//! `MAE = mean |y − ŷ|`, `MAPE = mean |y − ŷ| / y`,
//! `MARE = Σ|y − ŷ| / Σ y`, plus histogram utilities for the Fig. 11
//! MAPE-distribution plot.

use serde::{Deserialize, Serialize};

/// A (ground truth, prediction) pair in seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PredPair {
    /// Ground-truth travel time.
    pub actual: f32,
    /// Predicted travel time.
    pub predicted: f32,
}

impl PredPair {
    /// Absolute error.
    pub fn abs_err(&self) -> f32 {
        (self.actual - self.predicted).abs()
    }

    /// Absolute percentage error (the per-sample MAPE term).
    pub fn ape(&self) -> f32 {
        self.abs_err() / self.actual.max(1e-6)
    }
}

/// Mean Absolute Error in seconds.
pub fn mae(pairs: &[PredPair]) -> f32 {
    if pairs.is_empty() {
        return f32::NAN;
    }
    pairs.iter().map(PredPair::abs_err).sum::<f32>() / pairs.len() as f32
}

/// Mean Absolute Percentage Error (fraction; multiply by 100 for %).
pub fn mape(pairs: &[PredPair]) -> f32 {
    if pairs.is_empty() {
        return f32::NAN;
    }
    pairs.iter().map(PredPair::ape).sum::<f32>() / pairs.len() as f32
}

/// Mean Absolute Relative Error: Σ|err| / Σ actual (fraction).
pub fn mare(pairs: &[PredPair]) -> f32 {
    let num: f32 = pairs.iter().map(PredPair::abs_err).sum();
    let den: f32 = pairs.iter().map(|p| p.actual).sum();
    if den <= 0.0 {
        return f32::NAN;
    }
    num / den
}

/// All three metrics bundled (one row of the paper's Table 4).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Metrics {
    /// MAE in seconds.
    pub mae: f32,
    /// MAPE as a percentage.
    pub mape_pct: f32,
    /// MARE as a percentage.
    pub mare_pct: f32,
}

impl Metrics {
    /// Computes all three metrics from prediction pairs.
    pub fn from_pairs(pairs: &[PredPair]) -> Metrics {
        Metrics {
            mae: mae(pairs),
            mape_pct: 100.0 * mape(pairs),
            mare_pct: 100.0 * mare(pairs),
        }
    }
}

/// Normalized histogram (an empirical PDF) of `values` over `bins` equal
/// bins spanning `[lo, hi)`; returns `(bin_centers, densities)`. Used for
/// the Fig. 11 MAPE-distribution curves.
pub fn histogram(values: &[f32], lo: f32, hi: f32, bins: usize) -> (Vec<f32>, Vec<f32>) {
    assert!(bins > 0 && hi > lo, "invalid histogram spec");
    let width = (hi - lo) / bins as f32;
    let mut counts = vec![0usize; bins];
    let mut total = 0usize;
    for &v in values {
        if v < lo || v >= hi {
            continue;
        }
        counts[((v - lo) / width) as usize] += 1;
        total += 1;
    }
    let centers = (0..bins).map(|b| lo + (b as f32 + 0.5) * width).collect();
    let density = counts
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                c as f32 / (total as f32 * width)
            }
        })
        .collect();
    (centers, density)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs() -> Vec<PredPair> {
        vec![
            PredPair {
                actual: 100.0,
                predicted: 110.0,
            },
            PredPair {
                actual: 200.0,
                predicted: 180.0,
            },
            PredPair {
                actual: 400.0,
                predicted: 430.0,
            },
        ]
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&pairs()) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn mape_known_value() {
        // (0.1 + 0.1 + 0.075) / 3
        assert!((mape(&pairs()) - 0.091666).abs() < 1e-4);
    }

    #[test]
    fn mare_known_value() {
        // 60 / 700
        assert!((mare(&pairs()) - 60.0 / 700.0).abs() < 1e-6);
    }

    #[test]
    fn metrics_bundle() {
        let m = Metrics::from_pairs(&pairs());
        assert!((m.mae - 20.0).abs() < 1e-5);
        assert!((m.mape_pct - 9.1666).abs() < 1e-2);
        assert!((m.mare_pct - 100.0 * 60.0 / 700.0).abs() < 1e-3);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mae(&[]).is_nan());
        assert!(mape(&[]).is_nan());
        assert!(mare(&[]).is_nan());
    }

    #[test]
    fn perfect_predictions_zero_error() {
        let p = vec![PredPair {
            actual: 123.0,
            predicted: 123.0,
        }];
        let m = Metrics::from_pairs(&p);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.mape_pct, 0.0);
        assert_eq!(m.mare_pct, 0.0);
    }

    #[test]
    fn mape_vs_mare_asymmetry() {
        // The paper's observation (6): errors on short trips inflate MAPE
        // relative to MARE.
        let short_trip_errors = vec![
            PredPair {
                actual: 60.0,
                predicted: 120.0,
            }, // 100 % APE
            PredPair {
                actual: 1000.0,
                predicted: 1000.0,
            },
        ];
        let m = Metrics::from_pairs(&short_trip_errors);
        assert!(m.mape_pct > m.mare_pct);
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let vals: Vec<f32> = (0..1000).map(|i| (i % 100) as f32 / 100.0).collect();
        let (centers, dens) = histogram(&vals, 0.0, 1.0, 20);
        assert_eq!(centers.len(), 20);
        let integral: f32 = dens.iter().map(|d| d * 0.05).sum();
        assert!((integral - 1.0).abs() < 1e-5, "integral {integral}");
    }

    #[test]
    fn histogram_ignores_out_of_range() {
        let vals = vec![-1.0, 0.5, 2.0];
        let (_, dens) = histogram(&vals, 0.0, 1.0, 2);
        let integral: f32 = dens.iter().map(|d| d * 0.5).sum();
        assert!((integral - 1.0).abs() < 1e-6);
    }
}

//! Evaluation harness for the DeepOD reproduction: the three paper metrics
//! (MAE / MAPE / MARE, §6.1), a uniform method registry covering every
//! baseline and DeepOD variant, distribution and case-study utilities, and
//! plain-text/CSV reporting used by the per-table/figure binaries in
//! `deepod-bench`.

mod drift;
mod harness;
mod metrics;
mod precision;
mod report;

pub use drift::{check_drift, DriftReport};
pub use harness::{all_baselines, run_method, DeepOdMethod, HarnessError, Method, MethodResult};
pub use metrics::{histogram, mae, mape, mare, Metrics, MetricsError, PredPair, MAPE_MIN_ACTUAL};
pub use precision::{PrecisionGate, PrecisionReport};
pub use report::{metric_cell, write_csv, TextTable};

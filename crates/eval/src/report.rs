//! Plain-text table rendering and CSV output for the per-table/figure
//! harness binaries.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple fixed-column text table matching the paper's table layout.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                let _ = write!(line, " {:<width$} ", cells[c], width = widths[c]);
                if c + 1 < cols {
                    line.push('|');
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Serializes as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats one metric value as a table/CSV cell, surfacing non-finite
/// values as an explicit `n/a` marker instead of serializing `NaN` into
/// reports (where it used to slip through unflagged).
pub fn metric_cell(value: f32, precision: usize) -> String {
    if value.is_finite() {
        format!("{value:.precision$}")
    } else {
        "n/a".to_string()
    }
}

/// Writes a table to `results/<name>.csv` relative to the workspace root,
/// creating the directory if needed. Returns the path written.
///
/// The write goes through the crash-safe [`deepod_core::io_guard`] (temp
/// file + fsync + atomic rename), so an interrupted benchmark never leaves
/// a torn CSV behind; the guard's typed error is wrapped back into
/// `io::Error` to keep this signature stable for the bench binaries.
pub fn write_csv(name: &str, table: &TextTable) -> std::io::Result<String> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    deepod_core::io_guard::atomic_write_str(&path, &table.to_csv())
        .map_err(std::io::Error::other)?;
    Ok(path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(&["Method", "MAE", "MAPE(%)"]);
        t.row(&["TEMP".into(), "179.98".into(), "34.07".into()]);
        t.row(&["DeepOD".into(), "94.67".into(), "19.07".into()]);
        t
    }

    #[test]
    fn renders_aligned() {
        let s = sample().render();
        assert!(s.contains("Method"));
        assert!(s.contains("DeepOD"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + sep + 2 rows
                                    // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_format() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "Method,MAE,MAPE(%)");
        assert_eq!(lines.next().unwrap(), "TEMP,179.98,34.07");
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn metric_cell_surfaces_non_finite() {
        assert_eq!(metric_cell(19.072, 2), "19.07");
        assert_eq!(metric_cell(f32::NAN, 2), "n/a");
        assert_eq!(metric_cell(f32::INFINITY, 1), "n/a");
    }
}

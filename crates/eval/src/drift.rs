//! The cache-vs-fresh drift gate: a precomputed [`OdOracle`] may serve
//! only while every entry is **bit-identical** to what a fresh
//! [`DeepOdModel::estimate_batch`] run answers for the same canonical
//! request (DESIGN.md §15).
//!
//! Unlike the precision gate (a tolerance on an accuracy *metric*), this
//! gate tolerates nothing: the oracle stores the model's own answers, so
//! any difference means the artifact and the model have diverged — a
//! retrained model behind a stale oracle, a corrupted entry that slipped
//! past the checksum, or a nondeterminism bug in the inference path. All
//! three are serving incidents, not noise.

use deepod_core::oracle::OdOracle;
use deepod_core::{DeepOdModel, FeatureContext, PredictRequest};
use deepod_traj::CityDataset;

/// The drift gate's verdict over one oracle artifact.
#[derive(Clone, Copy, Debug)]
pub struct DriftReport {
    /// Oracle entries compared against a fresh run.
    pub checked: usize,
    /// Entries whose fresh answer differs in any bit (or can no longer be
    /// answered at all).
    pub drifted: usize,
    /// Whether the artifact's embedded model fingerprint matches the
    /// model file under evaluation.
    pub fingerprint_match: bool,
    /// Largest `|oracle − fresh|` over the drifted entries, in seconds
    /// (0.0 when nothing drifted).
    pub max_abs_delta_s: f32,
    /// `true` iff the fingerprint matches and no entry drifted.
    pub passed: bool,
}

impl std::fmt::Display for DriftReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entries checked | {} drifted | fingerprint {} | max |delta| {:.3}s -> {}",
            self.checked,
            self.drifted,
            if self.fingerprint_match {
                "match"
            } else {
                "MISMATCH"
            },
            self.max_abs_delta_s,
            if self.passed { "PASS" } else { "FAIL" }
        )
    }
}

/// Verifies an oracle artifact against a freshly loaded model: every
/// entry's canonical request is re-answered through `estimate_batch` (any
/// `threads` — the batch path is bit-identical by contract) and compared
/// bit-for-bit. `model_fingerprint` is the fingerprint of the model file
/// the caller loaded, from [`deepod_core::oracle::model_fingerprint`].
pub fn check_drift(
    oracle: &OdOracle,
    model: &DeepOdModel,
    ctx: &FeatureContext,
    ds: &CityDataset,
    model_fingerprint: &str,
    threads: usize,
) -> DriftReport {
    let reqs: Vec<PredictRequest> = oracle
        .entries
        .iter()
        .map(|e| PredictRequest::Raw(oracle.keyer.canonical_od(e.key, ds)))
        .collect();
    let fresh = model.estimate_batch(ctx, &ds.net, &reqs, threads);
    let mut drifted = 0usize;
    let mut max_abs_delta_s = 0.0f32;
    for (entry, res) in oracle.entries.iter().zip(&fresh) {
        match res {
            Ok(resp) if resp.eta_seconds.to_bits() == entry.eta_seconds.to_bits() => {}
            Ok(resp) => {
                drifted += 1;
                max_abs_delta_s = max_abs_delta_s.max((resp.eta_seconds - entry.eta_seconds).abs());
            }
            // The entry existed at precompute time but is unanswerable
            // now: the dataset or network changed under the oracle.
            Err(_) => drifted += 1,
        }
    }
    let fingerprint_match = oracle.model_fingerprint == model_fingerprint;
    DriftReport {
        checked: oracle.entries.len(),
        drifted,
        fingerprint_match,
        max_abs_delta_s,
        passed: fingerprint_match && drifted == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_core::oracle::{precompute, PrecomputeSpec};
    use deepod_core::{DeepOdConfig, EmbeddingInit};
    use deepod_roadnet::CityProfile;
    use deepod_traj::{DatasetBuilder, DatasetConfig};

    fn fixture() -> (CityDataset, FeatureContext, DeepOdModel) {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 60));
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        (ds, ctx, model)
    }

    #[test]
    fn fresh_oracle_passes_bit_identity() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 3,
            slots: 3,
            cell_meters: 500.0,
        };
        let oracle = precompute(&model, &ctx, &ds, &spec, "fp".into(), 1);
        assert!(!oracle.entries.is_empty());
        // Verify with a different thread count than the precompute pass
        // used — bit-identity must hold across parallelism.
        let rep = check_drift(&oracle, &model, &ctx, &ds, "fp", 3);
        assert!(rep.passed, "{rep}");
        assert_eq!(rep.drifted, 0);
        assert!(rep.fingerprint_match);
    }

    #[test]
    fn tampered_entry_fails_the_gate() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 2,
            slots: 2,
            cell_meters: 500.0,
        };
        let mut oracle = precompute(&model, &ctx, &ds, &spec, "fp".into(), 1);
        assert!(!oracle.entries.is_empty());
        oracle.entries[0].eta_seconds += 0.5;
        let rep = check_drift(&oracle, &model, &ctx, &ds, "fp", 1);
        assert!(!rep.passed, "{rep}");
        assert_eq!(rep.drifted, 1);
        assert!(rep.max_abs_delta_s > 0.0);
    }

    #[test]
    fn fingerprint_mismatch_fails_even_without_value_drift() {
        let (ds, ctx, model) = fixture();
        let spec = PrecomputeSpec {
            cells: 2,
            slots: 2,
            cell_meters: 500.0,
        };
        let oracle = precompute(&model, &ctx, &ds, &spec, "old-model".into(), 1);
        let rep = check_drift(&oracle, &model, &ctx, &ds, "new-model", 1);
        assert!(!rep.fingerprint_match);
        assert!(!rep.passed, "{rep}");
        assert_eq!(rep.drifted, 0, "values did not drift; the model id did");
    }
}

//! A lightweight item/expression extractor on top of the lexer.
//!
//! The audit pass (DESIGN.md §13) needs more structure than the
//! token-level lint rules: which function a token belongs to, what that
//! function calls, where it can panic, where it enters `unsafe`, which
//! locks it takes and holds. This module recovers exactly that much —
//! function items with their `impl`/`mod` context, call expressions,
//! panic sources, `unsafe` sites, lock acquisitions with guard liveness,
//! and metric emissions — by a single brace-depth scan over the token
//! stream. It is *not* a Rust parser: types are never resolved, trait
//! dispatch and closures invoked through parameters are invisible, and
//! the call graph built on top is conservative by name instead.

use crate::lexer::{Lexed, TokKind, Token};
use crate::rules::masks::{compute_target_feature_mask, compute_test_mask, matching_open};
use std::collections::{HashMap, HashSet};

/// How a call site names its callee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `x.name(..)` — resolved by simple name across the workspace.
    Method,
    /// `Qual::name(..)` — resolved against impl types and module names.
    Path,
    /// `name(..)` — resolved by simple name across the workspace.
    Bare,
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee simple name.
    pub name: String,
    /// The path segment before `::` for [`CallKind::Path`] calls
    /// (`Self` already resolved to the enclosing impl type).
    pub qualifier: Option<String>,
    /// Shape of the call expression.
    pub kind: CallKind,
    /// 1-based line of the callee name token.
    pub line: u32,
    /// Names of locks whose guards are live at this call.
    pub held_locks: Vec<String>,
}

/// A way a function can panic at runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `assert!` / `assert_eq!` / `assert_ne!` (release-mode asserts;
    /// `debug_assert*` is exempt).
    Assert,
    /// Explicit `expr[index]` / `expr[range]` indexing.
    Index,
}

impl PanicKind {
    /// Stable name used in fingerprints and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::PanicMacro => "panic-macro",
            PanicKind::Assert => "assert",
            PanicKind::Index => "index",
        }
    }
}

/// One potential panic site.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// What kind of source.
    pub kind: PanicKind,
    /// 1-based line.
    pub line: u32,
}

/// One `unsafe` block or `unsafe fn` body.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// `unsafe fn` (true) vs `unsafe { .. }` block (false).
    pub is_fn: bool,
    /// A `// SAFETY:` (or `# Safety` doc-section) comment covers this
    /// site — same line or within the lookback window above it.
    pub has_safety_comment: bool,
}

/// One `.lock()` / zero-arg `.read()` / zero-arg `.write()` acquisition.
#[derive(Clone, Debug)]
pub struct LockOp {
    /// Last path segment before the lock method (`queue` for
    /// `self.shared.queue.lock()`, `registry` for `registry().lock()`).
    pub name: String,
    /// `lock`, `read`, or `write`.
    pub method: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Names of locks whose guards were already live when this one was
    /// acquired — each (held, this) pair is an ordered acquisition edge.
    pub held_locks: Vec<String>,
}

/// One metric-registry call with a literal name argument.
#[derive(Clone, Debug)]
pub struct MetricUse {
    /// API called (`counter_add`, `gauge_set`, `observe`, ...).
    pub api: String,
    /// The literal metric name.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Structurally a *registration*: `counter_add(name, 0)` or any
    /// `register_*` API. Emissions inside a fn whose own name starts
    /// with `register` also count (the analysis checks that).
    pub is_registration: bool,
}

/// One parsed function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Simple name.
    pub name: String,
    /// Enclosing `impl` type, if any.
    pub impl_type: Option<String>,
    /// Module path: file stem followed by inline `mod` names.
    pub modules: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared inside test-only code.
    pub is_test: bool,
    /// Carries `#[target_feature(..)]`.
    pub has_target_feature: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// First parameter is (some form of) `self` — i.e. callable as a
    /// method. Used by the call graph: `recv.name(..)` can only target
    /// self-taking fns, bare `name(..)` only self-less ones.
    pub has_self: bool,
    /// Body consults the runtime dispatcher (`active_isa` or
    /// `is_x86_feature_detected`), directly making `#[target_feature]`
    /// callees sound from here.
    pub has_feature_check: bool,
    /// Call expressions in the body.
    pub calls: Vec<CallSite>,
    /// Potential panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// `unsafe` entry points in (or constituting) the body.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockOp>,
    /// Metric-registry calls in the body.
    pub metrics: Vec<MetricUse>,
}

/// One parsed source file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Crate directory name.
    pub crate_name: String,
    /// Binary entry point (`src/bin/*`, `src/main.rs`).
    pub is_bin: bool,
    /// Function items in declaration order.
    pub functions: Vec<FnItem>,
    /// `deepod-lint:`/`deepod-audit:` allow directives by line.
    pub allows: HashMap<u32, HashSet<String>>,
}

/// How far above an `unsafe fn` a `SAFETY:`/`# Safety` comment may sit
/// and still count as covering it (the `# Safety` doc section is
/// separated from the `fn` line by trailing doc lines and attributes).
const SAFETY_FN_LOOKBACK_LINES: u32 = 6;
/// Lookback for `unsafe { .. }` blocks: the justification comment must
/// be adjacent (same line or the one or two directly above), so a
/// neighboring item's comment cannot cover an unrelated block.
const SAFETY_BLOCK_LOOKBACK_LINES: u32 = 2;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: [&str; 3] = ["assert", "assert_eq", "assert_ne"];
/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 11] = [
    "if", "while", "for", "match", "return", "fn", "let", "move", "in", "as", "loop",
];
const METRIC_APIS: [&str; 8] = [
    "counter_add",
    "counter_inc",
    "gauge_set",
    "observe",
    "series_push",
    "register_gauge",
    "register_histogram",
    "register_series",
];

/// A guard known to be live at the current scan position.
struct LiveGuard {
    /// Lock name (what was acquired).
    lock: String,
    /// Binding identifier (`let g = ..`), if the guard was bound.
    binding: Option<String>,
    /// Brace depth at the acquisition; a named guard dies when depth
    /// drops below this, a temporary dies at the next `;` at or below it.
    depth: i32,
    /// Statement temporary (no binding): dies at end of statement.
    temp: bool,
}

/// An open function whose body is still being scanned.
struct OpenFn {
    item: FnItem,
    /// Depth the body `{` opened at (the fn ends when this closes).
    body_depth: i32,
    guards: Vec<LiveGuard>,
}

/// Parses one lexed file into function items. `rel_path`/`crate_name`/
/// `is_bin`/`whole_file_is_test` carry the same meaning as in
/// [`crate::rules::FileCtx`].
pub fn parse_file(
    rel_path: &str,
    crate_name: &str,
    lexed: &Lexed,
    whole_file_is_test: bool,
    is_bin: bool,
) -> ParsedFile {
    let toks = &lexed.tokens;
    let test_mask = if whole_file_is_test {
        vec![true; toks.len()]
    } else {
        compute_test_mask(toks)
    };
    let tf_mask = compute_target_feature_mask(toks);
    let file_stem = rel_path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
        .to_string();

    let mut out = ParsedFile {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        is_bin,
        functions: Vec::new(),
        allows: lexed.allows.clone(),
    };

    let mut depth: i32 = 0;
    // (impl type, depth its `{` opened at)
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_impl: Option<String> = None;
    // (inline mod name, depth)
    let mut mod_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_mod: Option<String> = None;
    let mut fn_stack: Vec<OpenFn> = Vec::new();
    // A declared fn whose body `{` has not opened yet (None body → `;`).
    let mut pending_fn: Option<FnItem> = None;
    let mut pending_unsafe_fn = false;
    // `let <ident> =` binding of the statement currently being scanned.
    let mut stmt_let_ident: Option<String> = None;

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];

        // Attributes: skip wholesale (their brackets are not indexing and
        // `#[test]`/`#[target_feature]` are captured via the masks).
        if t.is_punct("#") && toks.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let mut j = i + 2;
            let mut bdepth = 1;
            while j < toks.len() && bdepth > 0 {
                if toks[j].is_punct("[") {
                    bdepth += 1;
                } else if toks[j].is_punct("]") {
                    bdepth -= 1;
                }
                j += 1;
            }
            i = j;
            continue;
        }

        // `debug_assert*!(..)`: debug-only code — not a release panic
        // source and not interesting to the flow analyses. Skip the
        // whole macro argument list, but still honour a feature-detector
        // consult inside it: `debug_assert!(active_isa() >= ..)` is the
        // idiom the SIMD wrappers use to document their dispatch
        // precondition, and it must count for `simd-dispatch`.
        if t.kind == TokKind::Ident
            && t.text.starts_with("debug_assert")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
        {
            let mut j = i + 3;
            let mut pdepth = 1;
            while j < toks.len() && pdepth > 0 {
                if toks[j].is_punct("(") {
                    pdepth += 1;
                } else if toks[j].is_punct(")") {
                    pdepth -= 1;
                } else if toks[j].kind == TokKind::Ident
                    && (toks[j].text == "active_isa" || toks[j].text == "is_x86_feature_detected")
                {
                    if let Some(open) = fn_stack.last_mut() {
                        open.item.has_feature_check = true;
                    }
                }
                j += 1;
            }
            i = j;
            continue;
        }

        // Item headers.
        if t.is_ident("impl") && !test_mask[i] {
            pending_impl = Some(scan_impl_type(toks, i + 1));
            i += 1;
            continue;
        }
        if t.is_ident("mod")
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|n| n.is_punct("{"))
        {
            pending_mod = Some(toks[i + 1].text.clone());
            i += 2; // land on `{` next iteration
            continue;
        }
        if t.is_ident("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    let mut modules = vec![file_stem.clone()];
                    modules.extend(mod_stack.iter().map(|(m, _)| m.clone()));
                    pending_fn = Some(FnItem {
                        name: name_tok.text.clone(),
                        impl_type: impl_stack.last().map(|(t, _)| t.clone()),
                        modules,
                        line: t.line,
                        is_test: test_mask[i],
                        has_target_feature: tf_mask[i],
                        is_unsafe: pending_unsafe_fn,
                        has_self: fn_takes_self(toks, i + 2),
                        has_feature_check: false,
                        calls: Vec::new(),
                        panics: Vec::new(),
                        unsafe_sites: Vec::new(),
                        locks: Vec::new(),
                        metrics: Vec::new(),
                    });
                    pending_unsafe_fn = false;
                    i += 2;
                    continue;
                }
            }
        }
        if t.is_ident("unsafe") {
            if toks.get(i + 1).is_some_and(|n| n.is_punct("{")) {
                // `unsafe { .. }` block inside the innermost fn.
                if let Some(open) = fn_stack.last_mut() {
                    open.item.unsafe_sites.push(UnsafeSite {
                        line: t.line,
                        is_fn: false,
                        has_safety_comment: covered_by_safety(
                            lexed,
                            t.line,
                            SAFETY_BLOCK_LOOKBACK_LINES,
                        ),
                    });
                }
            } else {
                // `unsafe fn` / `unsafe impl` — remembered until the
                // `fn` keyword (impl consumes it harmlessly).
                pending_unsafe_fn = true;
            }
            i += 1;
            continue;
        }

        // Braces: maintain scopes.
        if t.is_punct("{") {
            depth += 1;
            if let Some(f) = pending_fn.take() {
                let mut item = f;
                if item.is_unsafe {
                    item.unsafe_sites.push(UnsafeSite {
                        line: item.line,
                        is_fn: true,
                        has_safety_comment: covered_by_safety(
                            lexed,
                            item.line,
                            SAFETY_FN_LOOKBACK_LINES,
                        ),
                    });
                }
                fn_stack.push(OpenFn {
                    item,
                    body_depth: depth,
                    guards: Vec::new(),
                });
            } else if let Some(ty) = pending_impl.take() {
                impl_stack.push((ty, depth));
            } else if let Some(m) = pending_mod.take() {
                mod_stack.push((m, depth));
            }
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            if fn_stack.last().is_some_and(|f| f.body_depth == depth) {
                if let Some(open) = fn_stack.pop() {
                    out.functions.push(open.item);
                }
            }
            if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                impl_stack.pop();
            }
            if mod_stack.last().is_some_and(|(_, d)| *d == depth) {
                mod_stack.pop();
            }
            depth -= 1;
            // Named guards bound deeper than the new depth die here.
            if let Some(open) = fn_stack.last_mut() {
                open.guards.retain(|g| g.depth <= depth);
            }
            i += 1;
            continue;
        }

        // Trait method declaration without body: `fn f(..);`.
        if t.is_punct(";") && pending_fn.is_some() {
            if let Some(f) = pending_fn.take() {
                out.functions.push(f);
            }
            i += 1;
            continue;
        }

        // Statement boundary: temporaries die, `let` binding resets.
        if t.is_punct(";") {
            if let Some(open) = fn_stack.last_mut() {
                open.guards.retain(|g| !(g.temp && g.depth >= depth));
            }
            stmt_let_ident = None;
            i += 1;
            continue;
        }
        if t.is_ident("let") {
            let mut j = i + 1;
            while toks.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            stmt_let_ident = toks
                .get(j)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone());
            i += 1;
            continue;
        }

        // Everything below is body-level extraction.
        let Some(open) = fn_stack.last_mut() else {
            i += 1;
            continue;
        };

        // `drop(g)` releases guard `g` early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            let victim = &toks[i + 2].text;
            open.guards.retain(|g| g.binding.as_deref() != Some(victim));
        }

        if t.kind == TokKind::Ident
            && (t.text == "active_isa" || t.text == "is_x86_feature_detected")
        {
            open.item.has_feature_check = true;
        }

        // Indexing: `expr[..]` — `[` directly after a value-producing
        // token. Attribute and macro brackets never get here (attributes
        // are skipped above, macro brackets follow `!`).
        if t.is_punct("[")
            && i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || toks[i - 1].is_punct(")")
                || toks[i - 1].is_punct("]"))
            && !test_mask[i]
        {
            open.item.panics.push(PanicSite {
                kind: PanicKind::Index,
                line: t.line,
            });
        }

        // Macros.
        if t.kind == TokKind::Ident && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            if !test_mask[i] {
                if PANIC_MACROS.contains(&t.text.as_str()) {
                    open.item.panics.push(PanicSite {
                        kind: PanicKind::PanicMacro,
                        line: t.line,
                    });
                } else if ASSERT_MACROS.contains(&t.text.as_str()) {
                    open.item.panics.push(PanicSite {
                        kind: PanicKind::Assert,
                        line: t.line,
                    });
                }
            }
            i += 2;
            continue;
        }

        // Calls: `ident (` that is not a keyword or macro.
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            let prev = i.checked_sub(1).map(|p| &toks[p]);
            let is_method = prev.is_some_and(|p| p.is_punct("."));
            let (kind, qualifier) = if is_method {
                (CallKind::Method, None)
            } else if prev.is_some_and(|p| p.is_punct("::")) {
                let q = i.checked_sub(2).map(|p| &toks[p]).and_then(|q| {
                    if q.kind == TokKind::Ident {
                        if q.text == "Self" {
                            impl_stack.last().map(|(ty, _)| ty.clone())
                        } else {
                            Some(q.text.clone())
                        }
                    } else {
                        None
                    }
                });
                (CallKind::Path, q)
            } else {
                (CallKind::Bare, None)
            };

            if !test_mask[i] {
                // Panic-source methods.
                if is_method && t.text == "unwrap" {
                    open.item.panics.push(PanicSite {
                        kind: PanicKind::Unwrap,
                        line: t.line,
                    });
                } else if is_method && t.text == "expect" {
                    open.item.panics.push(PanicSite {
                        kind: PanicKind::Expect,
                        line: t.line,
                    });
                }

                // Lock acquisition: `.lock()` or zero-arg `.read()`/`.write()`.
                let zero_arg = toks.get(i + 2).is_some_and(|n| n.is_punct(")"));
                if is_method
                    && zero_arg
                    && (t.text == "lock" || t.text == "read" || t.text == "write")
                {
                    if let Some(lock_name) = lock_base_name(toks, i) {
                        let held: Vec<String> =
                            open.guards.iter().map(|g| g.lock.clone()).collect();
                        let method: &'static str = match t.text.as_str() {
                            "lock" => "lock",
                            "read" => "read",
                            _ => "write",
                        };
                        if method == "lock" || is_lock_name(&lock_name) {
                            open.item.locks.push(LockOp {
                                name: lock_name.clone(),
                                method,
                                line: t.line,
                                held_locks: held,
                            });
                            open.guards.push(LiveGuard {
                                lock: lock_name,
                                binding: stmt_let_ident.clone(),
                                depth,
                                temp: stmt_let_ident.is_none(),
                            });
                        }
                    }
                }

                // Metric-registry calls with a literal name.
                if METRIC_APIS.contains(&t.text.as_str()) {
                    if let Some(s) = toks.get(i + 2).filter(|n| n.kind == TokKind::Str) {
                        let is_reg = t.text.starts_with("register_")
                            || (t.text == "counter_add"
                                && toks.get(i + 3).is_some_and(|n| n.is_punct(","))
                                && toks
                                    .get(i + 4)
                                    .is_some_and(|n| n.kind == TokKind::Int && n.text == "0")
                                && toks.get(i + 5).is_some_and(|n| n.is_punct(")")));
                        open.item.metrics.push(MetricUse {
                            api: t.text.clone(),
                            name: s.text.clone(),
                            line: t.line,
                            is_registration: is_reg,
                        });
                    }
                }

                let held: Vec<String> = open.guards.iter().map(|g| g.lock.clone()).collect();
                open.item.calls.push(CallSite {
                    name: t.text.clone(),
                    qualifier,
                    kind,
                    line: t.line,
                    held_locks: held,
                });
            }
            i += 1;
            continue;
        }

        i += 1;
    }

    // Unterminated trailing fn (malformed input): keep what we saw.
    while let Some(open) = fn_stack.pop() {
        out.functions.push(open.item);
    }
    if let Some(f) = pending_fn.take() {
        out.functions.push(f);
    }

    out
}

/// True when a `SAFETY:`/`# Safety` comment is on `line` or within
/// `window` lines above it.
fn covered_by_safety(lexed: &Lexed, line: u32, window: u32) -> bool {
    (line.saturating_sub(window)..=line).any(|l| lexed.safety_lines.contains(&l))
}

/// Heuristic for whether a zero-arg `.read()`/`.write()` receiver is
/// actually a named lock and not an io handle: the workspace names its
/// `RwLock`/`Mutex` fields and statics with lock-ish names.
fn is_lock_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    ["lock", "mutex", "rwlock", "guard"]
        .iter()
        .any(|k| lower.contains(k))
}

/// The impl type between `impl` (exclusive) and the opening `{`:
/// the path after `for` if present, else the first ident after the
/// optional `<..>` generic params.
/// Whether the fn whose token stream continues at `j` (just past the
/// name) takes `self`: scan to the parameter list's `(` and look for
/// `self` behind the optional `&`/`&'a`/`mut` prefix.
fn fn_takes_self(toks: &[Token], mut j: usize) -> bool {
    // Generic params contain no parens, so the first `(` opens the list.
    while j < toks.len() && !toks[j].is_punct("(") {
        if toks[j].is_punct("{") || toks[j].is_punct(";") {
            return false; // malformed / bodyless — be safe
        }
        j += 1;
    }
    j += 1;
    while j < toks.len()
        && (toks[j].is_punct("&") || toks[j].kind == TokKind::Lifetime || toks[j].is_ident("mut"))
    {
        j += 1;
    }
    toks.get(j).is_some_and(|t| t.is_ident("self"))
}

fn scan_impl_type(toks: &[Token], mut j: usize) -> String {
    // Skip leading generic params.
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut adepth = 1;
        j += 1;
        while j < toks.len() && adepth > 0 {
            if toks[j].is_punct("<") || toks[j].is_punct("<<") {
                adepth += 1;
            } else if toks[j].is_punct(">") {
                adepth -= 1;
            } else if toks[j].is_punct(">>") {
                adepth -= 2;
            }
            j += 1;
        }
    }
    let mut first_ident: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_ident("where") {
        let t = &toks[j];
        if t.is_ident("for") {
            saw_for = true;
        } else if t.kind == TokKind::Ident {
            if saw_for {
                after_for = Some(&t.text); // last path segment wins
            } else if first_ident.is_none() {
                first_ident = Some(&t.text);
            }
        }
        j += 1;
    }
    after_for.or(first_ident).unwrap_or("<unknown>").to_string()
}

/// The receiver name of a lock call: walking back from the method's `.`,
/// the nearest field/fn ident (`self.shared.queue.lock()` → `queue`,
/// `registry().lock()` → `registry`).
fn lock_base_name(toks: &[Token], method_idx: usize) -> Option<String> {
    let dot = method_idx.checked_sub(1)?;
    if !toks[dot].is_punct(".") {
        return None;
    }
    let prev = dot.checked_sub(1)?;
    let t = &toks[prev];
    if t.kind == TokKind::Ident {
        return Some(t.text.clone());
    }
    if t.is_punct(")") {
        let open = matching_open(toks, prev)?;
        let callee = open.checked_sub(1)?;
        if toks[callee].kind == TokKind::Ident {
            return Some(toks[callee].text.clone());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/demo/src/demo.rs", "demo", &lex(src), false, false)
    }

    fn fn_named<'a>(pf: &'a ParsedFile, name: &str) -> &'a FnItem {
        pf.functions
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name} in {:?}", pf.functions))
    }

    #[test]
    fn extracts_fns_with_impl_and_mod_context() {
        let src = "\
impl Engine {
    pub fn start(&self) { helper(); }
}
mod inner {
    fn helper() {}
}
impl Display for Finding {
    fn fmt(&self) {}
}
";
        let pf = parse(src);
        assert_eq!(pf.functions.len(), 3);
        let start = fn_named(&pf, "start");
        assert_eq!(start.impl_type.as_deref(), Some("Engine"));
        assert_eq!(start.calls.len(), 1);
        assert_eq!(start.calls[0].kind, CallKind::Bare);
        let helper = fn_named(&pf, "helper");
        assert_eq!(helper.modules, vec!["demo", "inner"]);
        assert_eq!(fn_named(&pf, "fmt").impl_type.as_deref(), Some("Finding"));
    }

    #[test]
    fn classifies_call_kinds_and_resolves_self() {
        let src = "\
impl Engine {
    fn go(&self) {
        self.step();
        Self::boot();
        kernels::matmul(a, b);
        free();
    }
}
";
        let f = &parse(src).functions[0];
        let kinds: Vec<(CallKind, Option<&str>)> = f
            .calls
            .iter()
            .map(|c| (c.kind, c.qualifier.as_deref()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (CallKind::Method, None),
                (CallKind::Path, Some("Engine")),
                (CallKind::Path, Some("kernels")),
                (CallKind::Bare, None),
            ]
        );
    }

    #[test]
    fn collects_panic_sources_but_not_debug_asserts() {
        let src = "\
fn f(v: &[f32], i: usize) -> f32 {
    debug_assert!(i < v.len());
    assert!(i < v.len());
    let x = v[i];
    opt.unwrap();
    res.expect(\"boom\");
    if bad { panic!(\"no\"); }
    unreachable!()
}
";
        let f = &parse(src).functions[0];
        let mut kinds: Vec<PanicKind> = f.panics.iter().map(|p| p.kind).collect();
        kinds.sort();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::PanicMacro,
                PanicKind::PanicMacro,
                PanicKind::Assert,
                PanicKind::Index,
            ]
        );
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic() {
        let src = "fn f() { x.unwrap_or_else(|| 0); y.unwrap_or(1); z.unwrap_or_default(); }";
        assert!(parse(src).functions[0].panics.is_empty());
    }

    #[test]
    fn vec_macro_bracket_and_types_are_not_indexing() {
        let src = "fn f(a: [f32; 4]) -> Vec<u8> { let v = vec![0u8; 8]; v }";
        let f = &parse(src).functions[0];
        assert!(
            f.panics.is_empty(),
            "array type + vec! literal flagged: {:?}",
            f.panics
        );
    }

    #[test]
    fn slice_indexing_after_call_or_index_is_flagged() {
        let src = "fn f() { rows()[0]; grid[1][2]; }";
        let f = &parse(src).functions[0];
        assert_eq!(
            f.panics
                .iter()
                .filter(|p| p.kind == PanicKind::Index)
                .count(),
            3
        );
    }

    #[test]
    fn unsafe_fn_and_block_with_safety_coverage() {
        let src = "\
fn a() {
    // SAFETY: bounds checked above
    unsafe { ptr.read_volatile() }
}
fn b() {
    unsafe { ptr.read_volatile() }
}
/// # Safety
///
/// Caller must uphold alignment.
#[target_feature(enable = \"avx\")]
unsafe fn kern() {}
";
        let pf = parse(src);
        let a = fn_named(&pf, "a");
        assert!(a.unsafe_sites[0].has_safety_comment);
        let b = fn_named(&pf, "b");
        assert!(!b.unsafe_sites[0].has_safety_comment);
        let k = fn_named(&pf, "kern");
        assert!(k.is_unsafe && k.has_target_feature);
        assert!(k.unsafe_sites[0].is_fn && k.unsafe_sites[0].has_safety_comment);
    }

    #[test]
    fn lock_guard_liveness_tracks_bindings_scopes_and_drop() {
        let src = "\
fn f(&self) {
    let g = self.queue.lock();
    self.registry.lock();
    drop(g);
    self.other.lock();
}
fn scoped(&self) {
    {
        let q = self.queue.lock();
        q.push(1);
    }
    self.registry.lock();
}
";
        let pf = parse(&src.replace("fn f", "fn f_outer"));
        let f = fn_named(&pf, "f_outer");
        assert_eq!(f.locks.len(), 3);
        assert_eq!(f.locks[0].held_locks, Vec::<String>::new());
        assert_eq!(f.locks[1].held_locks, vec!["queue"]);
        // After drop(g) only the registry *temporary* could remain, and
        // it died at its own statement's `;`.
        assert_eq!(f.locks[2].held_locks, Vec::<String>::new());
        let s = fn_named(&pf, "scoped");
        assert_eq!(s.locks[1].held_locks, Vec::<String>::new());
    }

    #[test]
    fn calls_record_held_locks() {
        let src = "\
fn f(&self) {
    let g = self.queue.lock();
    self.tx.send(x);
}
";
        let f = &parse(src).functions[0];
        let send = f
            .calls
            .iter()
            .find(|c| c.name == "send")
            .expect("send call");
        assert_eq!(send.held_locks, vec!["queue"]);
    }

    #[test]
    fn zero_arg_read_write_needs_lockish_name() {
        let src = "\
fn f(&self) {
    self.state_lock.read();
    file.read();
    self.rwlock.write();
}
";
        let f = &parse(src).functions[0];
        let names: Vec<&str> = f.locks.iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["state_lock", "rwlock"]);
    }

    #[test]
    fn metric_calls_classify_registration_vs_emission() {
        let src = "\
fn start() {
    registry::counter_add(\"serve.requests\", 0);
    registry::counter_add(\"serve.requests\", 1);
    registry::counter_inc(\"serve.requests\");
    registry::gauge_set(\"serve.queue_depth\", depth as f64);
    registry::register_histogram(\"serve.batch_size\");
    registry::observe(\"serve.batch_size\", n as f64);
}
";
        let f = &parse(src).functions[0];
        let regs: Vec<(&str, bool)> = f
            .metrics
            .iter()
            .map(|m| (m.name.as_str(), m.is_registration))
            .collect();
        assert_eq!(
            regs,
            vec![
                ("serve.requests", true),
                ("serve.requests", false),
                ("serve.requests", false),
                ("serve.queue_depth", false),
                ("serve.batch_size", true),
                ("serve.batch_size", false),
            ]
        );
    }

    #[test]
    fn test_fns_are_marked_and_their_sites_skipped() {
        let src = "\
fn lib() { v[0]; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { v.unwrap(); }
}
";
        let pf = parse(src);
        assert!(!fn_named(&pf, "lib").is_test);
        let t = fn_named(&pf, "t");
        assert!(t.is_test);
        assert!(t.panics.is_empty(), "test code sites are not collected");
    }

    #[test]
    fn trait_declarations_without_bodies_parse() {
        let src = "trait T { fn a(&self); fn b(&self) { self.a(); } } fn after() { x[0]; }";
        let pf = parse(src);
        assert_eq!(pf.functions.len(), 3);
        assert_eq!(fn_named(&pf, "after").panics.len(), 1);
    }

    #[test]
    fn feature_check_detection() {
        let src = "fn dispatch() { if active_isa() >= Isa::Avx2 { x86::run(); } }";
        assert!(parse(src).functions[0].has_feature_check);
    }
}

//! Workspace call graph over parsed function items.
//!
//! Resolution is *conservative by name* (DESIGN.md §13): a method call
//! `recv.foo(..)` links to every non-test workspace fn named `foo` whose
//! first parameter is `self`; a bare call `foo(..)` to every self-less
//! one; a qualified call `Qual::foo(..)` links to fns named `foo` declared in
//! an `impl Qual` block or in a module named `Qual` (file stem or inline
//! `mod`). Qualified calls whose qualifier matches nothing in the
//! workspace are treated as external (`Vec::new`, `String::from`, ...).
//! Trait-object dispatch and closures passed as values are invisible —
//! the soundness caveat the audit documents — but every *named* edge the
//! workspace can express is present, which over-approximates reachability
//! rather than missing it.

use crate::parser::{CallKind, FnItem, ParsedFile};
use std::collections::{HashMap, VecDeque};

/// A function node: indices into the parsed files.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId {
    /// Index into the file list.
    pub file: usize,
    /// Index into that file's `functions`.
    pub func: usize,
}

/// One resolved call edge.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee.
    pub to: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
}

/// The workspace call graph.
pub struct CallGraph<'a> {
    /// Parsed files, in the order nodes reference them.
    pub files: &'a [ParsedFile],
    /// Flattened function nodes.
    pub nodes: Vec<NodeId>,
    /// `edges[n]` — resolved outgoing calls of node `n`.
    pub edges: Vec<Vec<Edge>>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph. Test fns get nodes (so their bodies can still
    /// be inspected) but are never resolution *targets*: a lib call
    /// named like a test helper must not link into test code.
    pub fn build(files: &'a [ParsedFile]) -> Self {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, _) in f.functions.iter().enumerate() {
                nodes.push(NodeId { file: fi, func: gi });
            }
        }

        // Name → candidate targets (split by self-ness: `recv.name(..)`
        // can only land on a self-taking fn, bare `name(..)` only on a
        // self-less one); (qualifier, name) → candidates.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut methods: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut free_fns: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qual: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        for (ni, id) in nodes.iter().enumerate() {
            let item = &files[id.file].functions[id.func];
            if item.is_test {
                continue;
            }
            by_name.entry(&item.name).or_default().push(ni);
            if item.has_self {
                methods.entry(&item.name).or_default().push(ni);
            } else {
                free_fns.entry(&item.name).or_default().push(ni);
            }
            if let Some(ty) = &item.impl_type {
                by_qual.entry((ty, &item.name)).or_default().push(ni);
            }
            for m in &item.modules {
                by_qual.entry((m, &item.name)).or_default().push(ni);
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (ni, id) in nodes.iter().enumerate() {
            let item = &files[id.file].functions[id.func];
            for call in &item.calls {
                let targets: &[usize] = match call.kind {
                    CallKind::Path => match &call.qualifier {
                        Some(q) => by_qual
                            .get(&(q.as_str(), call.name.as_str()))
                            .map(Vec::as_slice)
                            .unwrap_or(&[]),
                        // `<T>::name(..)` and friends: fall back to name.
                        None => by_name
                            .get(call.name.as_str())
                            .map(Vec::as_slice)
                            .unwrap_or(&[]),
                    },
                    CallKind::Method => methods
                        .get(call.name.as_str())
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                    CallKind::Bare => free_fns
                        .get(call.name.as_str())
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                };
                for &t in targets {
                    if t != ni {
                        edges[ni].push(Edge {
                            to: t,
                            line: call.line,
                        });
                    }
                }
            }
        }

        CallGraph {
            files,
            nodes,
            edges,
        }
    }

    /// The parsed item behind a node.
    pub fn item(&self, n: usize) -> &FnItem {
        let id = self.nodes[n];
        &self.files[id.file].functions[id.func]
    }

    /// The file a node was declared in.
    pub fn file(&self, n: usize) -> &ParsedFile {
        &self.files[self.nodes[n].file]
    }

    /// Finds the node for a non-test fn by path suffix and name.
    pub fn find(&self, path_suffix: &str, fn_name: &str) -> Option<usize> {
        (0..self.nodes.len()).find(|&n| {
            let item = self.item(n);
            !item.is_test && item.name == fn_name && self.file(n).rel_path.ends_with(path_suffix)
        })
    }

    /// Display label for a node: `Type::name` or `module::name`.
    pub fn label(&self, n: usize) -> String {
        let item = self.item(n);
        match &item.impl_type {
            Some(ty) => format!("{ty}::{}", item.name),
            None => match item.modules.last() {
                Some(m) => format!("{m}::{}", item.name),
                None => item.name.clone(),
            },
        }
    }

    /// BFS from `root`, returning for every reachable node the
    /// `(parent, call line)` it was first discovered through
    /// (`parents[root] = None`). Unreachable nodes are absent.
    pub fn reachable_from(&self, root: usize) -> HashMap<usize, Option<(usize, u32)>> {
        let mut parents: HashMap<usize, Option<(usize, u32)>> = HashMap::new();
        parents.insert(root, None);
        let mut queue = VecDeque::from([root]);
        while let Some(n) = queue.pop_front() {
            for e in &self.edges[n] {
                if let std::collections::hash_map::Entry::Vacant(slot) = parents.entry(e.to) {
                    slot.insert(Some((n, e.line)));
                    queue.push_back(e.to);
                }
            }
        }
        parents
    }

    /// The witness chain root → .. → `target` implied by a `parents`
    /// map from [`Self::reachable_from`], as node/callsite-line pairs.
    /// Each entry is `(node, line of the call that *entered* it)`; the
    /// root's entry has line 0.
    pub fn witness(
        &self,
        parents: &HashMap<usize, Option<(usize, u32)>>,
        target: usize,
    ) -> Vec<(usize, u32)> {
        let mut cur = target;
        let mut rev = vec![(cur, 0u32)];
        while let Some(Some((p, line))) = parents.get(&cur) {
            if let Some(last) = rev.last_mut() {
                last.1 = *line;
            }
            rev.push((*p, 0));
            cur = *p;
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn parse_one(src: &str) -> ParsedFile {
        parse_file("crates/demo/src/demo.rs", "demo", &lex(src), false, false)
    }

    #[test]
    fn resolves_bare_method_and_qualified_calls() {
        let files = vec![parse_one(
            "\
impl Engine {
    fn run(&self) { self.step(); helper(); Other::go(); Vec::with_capacity(4); }
    fn step(&self) {}
}
fn helper() {}
impl Other {
    fn go() {}
}
",
        )];
        let g = CallGraph::build(&files);
        let run = g.find("demo.rs", "run").expect("run");
        let callees: Vec<String> = g.edges[run].iter().map(|e| g.label(e.to)).collect();
        assert_eq!(
            callees,
            vec!["Engine::step", "demo::helper", "Other::go"],
            "with_capacity resolves to nothing in the workspace"
        );
    }

    #[test]
    fn qualified_module_calls_resolve_through_inline_mods() {
        let files = vec![parse_one(
            "\
fn dispatch() { x86::kern(); }
mod x86 {
    pub fn kern() {}
}
",
        )];
        let g = CallGraph::build(&files);
        let d = g.find("demo.rs", "dispatch").expect("dispatch");
        assert_eq!(g.edges[d].len(), 1);
        assert_eq!(g.label(g.edges[d][0].to), "x86::kern");
    }

    #[test]
    fn test_fns_are_not_targets() {
        let files = vec![parse_one(
            "\
fn lib() { check(); }
#[cfg(test)]
mod tests {
    fn check() {}
}
",
        )];
        let g = CallGraph::build(&files);
        let lib = g.find("demo.rs", "lib").expect("lib");
        assert!(g.edges[lib].is_empty(), "lib call must not link into tests");
    }

    #[test]
    fn reachability_produces_a_witness_chain_with_lines() {
        let files = vec![parse_one(
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { v[0]; }\nfn d() {}\n",
        )];
        let g = CallGraph::build(&files);
        let (a, c, d) = (
            g.find("demo.rs", "a").expect("a"),
            g.find("demo.rs", "c").expect("c"),
            g.find("demo.rs", "d").expect("d"),
        );
        let parents = g.reachable_from(a);
        assert!(parents.contains_key(&c));
        assert!(!parents.contains_key(&d));
        let chain = g.witness(&parents, c);
        let labels: Vec<(String, u32)> = chain.iter().map(|(n, l)| (g.label(*n), *l)).collect();
        assert_eq!(
            labels,
            vec![
                ("demo::a".to_string(), 0),
                ("demo::b".to_string(), 1),
                ("demo::c".to_string(), 2),
            ],
            "each hop carries the line of the call that entered it"
        );
    }
}

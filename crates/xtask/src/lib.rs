//! `xtask` — workspace automation for the DeepOD stack.
//!
//! The one subcommand that matters is `deepod-lint` (`cargo run -p xtask
//! -- lint`): a token-level static-analysis pass enforcing the invariants
//! the data-parallel training contract rests on (DESIGN.md §6–§7):
//! determinism of the numeric crates, panic-freedom of library hot paths,
//! numeric hygiene around float comparison and index truncation, and
//! named serial-equivalence coverage for every parallel primitive.
//!
//! The pass is deliberately dependency-free (hand-rolled lexer, `std`
//! only) so the gate builds in seconds and runs offline.

pub mod audit;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;

use rules::{check_file, check_parallel_coverage, collect_pub_fns, collect_test_fn_names};
use rules::{FileCtx, Finding};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The file `parallel-coverage` is anchored to.
const PARALLEL_MODULE: &str = "crates/tensor/src/parallel.rs";

/// Directories never scanned: vendored stand-ins are external code, lint
/// fixtures contain violations *on purpose*, and build output is noise.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Recursively collects `.rs` files under `dir` (sorted for stable output).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Whether every token of the file counts as test code by location alone.
fn path_is_test_only(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.ends_with("_test.rs")
        || rel.ends_with("_tests.rs")
}

/// Whether the file is a binary entry point (panic-safety rules relax).
fn path_is_bin(rel: &str) -> bool {
    rel.contains("/src/bin/") || rel.ends_with("/src/main.rs")
}

/// Crate directory name for a workspace-relative path like
/// `crates/tensor/src/ops.rs`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

/// Lints every crate in the workspace rooted at `root`. Returns all
/// findings, sorted by path then line. Fails with `Err` only on I/O
/// problems (unreadable tree), never on lint findings.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    collect_rs_files(&crates_dir, &mut files)?;

    let mut findings = Vec::new();
    let mut test_names = BTreeSet::new();
    let mut parallel_pub_fns: Vec<(String, u32)> = Vec::new();
    let mut parallel_lexed = None;

    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        let lexed = lexer::lex(&src);
        let crate_name = crate_of(&rel).to_string();
        let ctx = FileCtx::new(
            &rel,
            &crate_name,
            &lexed,
            path_is_test_only(&rel),
            path_is_bin(&rel),
        );
        check_file(&ctx, &mut findings);
        collect_test_fn_names(&ctx, &mut test_names);
        if rel == PARALLEL_MODULE {
            parallel_pub_fns = collect_pub_fns(&ctx);
            parallel_lexed = Some(lexed);
        }
    }

    if let Some(lexed) = &parallel_lexed {
        check_parallel_coverage(
            PARALLEL_MODULE,
            &parallel_pub_fns,
            &test_names,
            lexed,
            &mut findings,
        );
    }

    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Lints a single file as library code of `crate_name` (fixture-test
/// entry point; the workspace walk is bypassed).
pub fn lint_file_as(path: &Path, crate_name: &str) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    let lexed = lexer::lex(&src);
    let rel = path.to_string_lossy().replace('\\', "/");
    let ctx = FileCtx::new(&rel, crate_name, &lexed, false, false);
    let mut out = Vec::new();
    check_file(&ctx, &mut out);
    Ok(out)
}

/// Parses every workspace `.rs` file into the item-level representation
/// the audit analyses run over (same walk/skip rules as the linter,
/// minus `crates/xtask` itself: the audit certifies the *product*
/// crates, and dev tooling sharing method names with them — `item`,
/// `parse` — would only inject false edges).
pub fn parse_workspace(root: &Path) -> std::io::Result<Vec<parser::ParsedFile>> {
    let crates_dir = root.join("crates");
    let mut paths = Vec::new();
    collect_rs_files(&crates_dir, &mut paths)?;
    let mut files = Vec::new();
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.starts_with("crates/xtask/") {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        let lexed = lexer::lex(&src);
        files.push(parser::parse_file(
            &rel,
            crate_of(&rel),
            &lexed,
            path_is_test_only(&rel),
            path_is_bin(&rel),
        ));
    }
    Ok(files)
}

/// Runs the full audit over the workspace with the default hot-path
/// roots. I/O failure is `Err`; findings are never.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<audit::AuditFinding>> {
    let files = parse_workspace(root)?;
    Ok(audit::run(&files, &audit::DEFAULT_ROOTS))
}

/// Audits a set of files in isolation with explicit roots (fixture-test
/// entry point; missing-root findings for roots outside the set still
/// fire, so fixtures pass the roots their file actually defines).
pub fn audit_files_as(
    paths: &[(&Path, &str)],
    roots: &[(&str, &str)],
) -> std::io::Result<Vec<audit::AuditFinding>> {
    let mut files = Vec::new();
    for (path, crate_name) in paths {
        let src = std::fs::read_to_string(path)?;
        let lexed = lexer::lex(&src);
        let rel = path.to_string_lossy().replace('\\', "/");
        files.push(parser::parse_file(&rel, crate_name, &lexed, false, false));
    }
    Ok(audit::run(&files, roots))
}

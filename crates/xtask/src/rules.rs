//! The `deepod-lint` rule set.
//!
//! Each rule is a token-level pattern over a [`Lexed`] file plus a
//! *test mask* (which tokens live inside `#[cfg(test)]` modules, `#[test]`
//! functions, `tests/` or `benches/` trees). Rules report [`Finding`]s;
//! a trailing `// deepod-lint: allow(<rule>)` comment on the same line
//! (or a standalone comment on the line above) suppresses a finding.
//!
//! Rules (see DESIGN.md §7 for rationale and how to add one):
//!
//! | rule                | what it denies                                       |
//! |---------------------|------------------------------------------------------|
//! | `unwrap`            | `.unwrap()` in non-test library code                 |
//! | `expect`            | `.expect(..)` in non-test library code               |
//! | `panic`             | `panic!` / `unimplemented!` / `todo!` in non-test    |
//! | `nondeterminism`    | `Instant::now` / `SystemTime` / `thread_rng` /       |
//! |                     | `from_entropy` in the numeric crates                 |
//! | `float-eq`          | `==` / `!=` against a float literal in non-test code |
//! | `truncating-cast`   | float-producing expression cast straight to an       |
//! |                     | integer index type                                   |
//! | `parallel-coverage` | a `pub fn` in `deepod_tensor::parallel` without a    |
//! |                     | named `*serial*` regression test                     |
//! | `no-bare-fs-write`  | `fs::write` / `File::create` outside `io_guard.rs`   |
//! |                     | (bypasses the atomic-rename + checksum write path)   |
//! | `no-bare-eprintln`  | `eprintln!` / `eprint!` in library code (bypasses    |
//! |                     | the `deepod_core::obs` level gate + single writer)   |
//! | `no-env-read-in-lib`| `env::var` / `var_os` / `vars` in library code       |
//! |                     | (configuration flows through `RuntimeConfig`,        |
//! |                     | resolved once in the binary)                         |
//! | `no-unchecked-simd` | a `_mm*` intrinsic call site outside a               |
//! |                     | `#[target_feature]` fn, or in a file with no         |
//! |                     | `is_x86_feature_detected!` runtime dispatcher        |

use crate::lexer::{Lexed, TokKind, Token};
use std::collections::BTreeSet;
use std::fmt;

/// Crates whose library code must be free of ambient nondeterminism: the
/// model forward/backward stack and everything it computes with. A wall
/// clock or OS-entropy RNG anywhere here silently breaks the bit-stable
/// loss-curve contract from DESIGN.md §6.
pub const DETERMINISTIC_CRATES: [&str; 4] = ["core", "nn", "tensor", "graphembed"];

/// All rule names, in report order.
pub const ALL_RULES: [&str; 11] = [
    "unwrap",
    "expect",
    "panic",
    "nondeterminism",
    "float-eq",
    "truncating-cast",
    "parallel-coverage",
    "no-bare-fs-write",
    "no-bare-eprintln",
    "no-env-read-in-lib",
    "no-unchecked-simd",
];

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// A lexed file with the metadata the rules need.
pub struct FileCtx<'a> {
    /// Workspace-relative path (display only).
    pub rel_path: &'a str,
    /// Crate directory name (`tensor`, `core`, ...).
    pub crate_name: &'a str,
    /// Token stream + allow directives.
    pub lexed: &'a Lexed,
    /// `test_mask[i]` — token `i` is inside test-only code.
    pub test_mask: Vec<bool>,
    /// Binary entry point (`src/bin/*`, `src/main.rs`): exempt from the
    /// panic-safety rules (a CLI/bench top level may crash with a message)
    /// but not from determinism or numeric-hygiene rules.
    pub is_bin: bool,
}

impl<'a> FileCtx<'a> {
    /// Builds the context, computing the test mask.
    pub fn new(
        rel_path: &'a str,
        crate_name: &'a str,
        lexed: &'a Lexed,
        whole_file_is_test: bool,
        is_bin: bool,
    ) -> Self {
        let test_mask = if whole_file_is_test {
            vec![true; lexed.tokens.len()]
        } else {
            compute_test_mask(&lexed.tokens)
        };
        FileCtx {
            rel_path,
            crate_name,
            lexed,
            test_mask,
            is_bin,
        }
    }

    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.lexed
            .allows
            .get(&line)
            .is_some_and(|s| s.contains(rule))
    }

    fn push(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, msg: String) {
        if !self.allowed(rule, line) {
            out.push(Finding {
                rule,
                path: self.rel_path.to_string(),
                line,
                msg,
            });
        }
    }
}

/// Marks tokens that live inside test-only code: the body of any item
/// annotated `#[test]` (any attribute path ending in `test`, so
/// `#[tokio::test]`-style wrappers count) or `#[cfg(test)]` /
/// `#[cfg_attr(..., test)]`. `#[cfg(not(test))]` does *not* count.
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    let mut test_open_depths: Vec<i32> = Vec::new();
    let mut pending_test = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            // Scan the attribute to its closing bracket.
            let mut j = i + 2;
            let mut bdepth = 1;
            let mut idents: Vec<&str> = Vec::new();
            let mut path_idents: Vec<&str> = Vec::new();
            let mut in_args = false;
            while j < tokens.len() && bdepth > 0 {
                let a = &tokens[j];
                if a.is_punct("[") {
                    bdepth += 1;
                } else if a.is_punct("]") {
                    bdepth -= 1;
                } else if a.is_punct("(") {
                    in_args = true;
                } else if a.kind == TokKind::Ident {
                    idents.push(&a.text);
                    if !in_args {
                        path_idents.push(&a.text);
                    }
                }
                j += 1;
            }
            let is_cfg_like = path_idents
                .first()
                .is_some_and(|f| *f == "cfg" || *f == "cfg_attr");
            let mentions_test = idents.contains(&"test");
            let negated = idents.contains(&"not");
            let is_test_attr = (is_cfg_like && mentions_test && !negated)
                || (!is_cfg_like && path_idents.last().is_some_and(|l| *l == "test"));
            if is_test_attr {
                pending_test = true;
            }
            for m in mask.iter_mut().take(j).skip(i) {
                *m = *m || !test_open_depths.is_empty();
            }
            i = j;
            continue;
        }
        if t.is_punct("{") {
            depth += 1;
            if pending_test {
                test_open_depths.push(depth);
                pending_test = false;
            }
        }
        mask[i] = !test_open_depths.is_empty() || pending_test;
        if t.is_punct("}") {
            if test_open_depths.last() == Some(&depth) {
                test_open_depths.pop();
            }
            depth -= 1;
        } else if t.is_punct(";") && depth == test_open_depths.last().copied().unwrap_or(0) {
            // `#[cfg(test)] use ...;` — the item ends before any brace.
            pending_test = false;
        }
        i += 1;
    }
    mask
}

/// Marks tokens that live inside a fn (or other item) annotated with
/// `#[target_feature(..)]` — the only place a raw `_mm*` intrinsic call
/// is sound, because the attribute is what lets the compiler emit the
/// instruction while the runtime dispatcher guarantees the CPU has it.
fn compute_target_feature_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    let mut open_depths: Vec<i32> = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let mut j = i + 2;
            let mut bdepth = 1;
            let mut is_tf = false;
            while j < tokens.len() && bdepth > 0 {
                let a = &tokens[j];
                if a.is_punct("[") {
                    bdepth += 1;
                } else if a.is_punct("]") {
                    bdepth -= 1;
                } else if a.is_ident("target_feature") {
                    is_tf = true;
                }
                j += 1;
            }
            if is_tf {
                pending = true;
            }
            for m in mask.iter_mut().take(j).skip(i) {
                *m = *m || !open_depths.is_empty();
            }
            i = j;
            continue;
        }
        if t.is_punct("{") {
            depth += 1;
            if pending {
                open_depths.push(depth);
                pending = false;
            }
        }
        mask[i] = !open_depths.is_empty() || pending;
        if t.is_punct("}") {
            if open_depths.last() == Some(&depth) {
                open_depths.pop();
            }
            depth -= 1;
        }
        i += 1;
    }
    mask
}

/// Index of the `(` matching the `)` at `close`, if any.
fn matching_open(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        let t = &tokens[j];
        if t.is_punct(")") {
            depth += 1;
        } else if t.is_punct("(") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

const INT_TARGETS: [&str; 10] = [
    "usize", "isize", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64",
];

/// Method names that always produce a float: a call to one of these cast
/// straight to an integer type is a truncation that deserves a bounds
/// check (or an explicit allow on an audited helper).
const FLOAT_METHODS: [&str; 10] = [
    "floor",
    "ceil",
    "round",
    "trunc",
    "sqrt",
    "powf",
    "exp",
    "ln",
    "to_degrees",
    "to_radians",
];

/// Runs every per-file rule, appending findings to `out`.
pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    // The one module allowed to touch the filesystem directly: it *is*
    // the crash-safe write path the `no-bare-fs-write` rule points at.
    let is_io_guard = ctx.rel_path.ends_with("io_guard.rs");
    // (no-unchecked-simd) a `#[target_feature]` fn alone is not enough:
    // somebody still has to check the CPU before calling it, so the file
    // must also contain a runtime-detection dispatcher.
    let has_feature_detect = toks.iter().any(|t| t.is_ident("is_x86_feature_detected"));
    let target_feature_mask = compute_target_feature_mask(toks);
    let mut in_use_item = false;
    for i in 0..toks.len() {
        // Track `use` items so imported intrinsic *names* don't count as
        // call sites for no-unchecked-simd.
        if toks[i].is_ident("use") {
            in_use_item = true;
        } else if in_use_item && toks[i].is_punct(";") {
            in_use_item = false;
        }
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        let line = t.line;

        // --- panic-safety rules (library code only) ---
        if !ctx.is_bin {
            if t.is_ident("unwrap")
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                ctx.push(
                    out,
                    "unwrap",
                    line,
                    "`.unwrap()` in library code; return a typed error or restructure \
                     so the invariant is explicit"
                        .into(),
                );
            }
            if t.is_ident("expect")
                && i > 0
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                ctx.push(
                    out,
                    "expect",
                    line,
                    "`.expect(..)` in library code; return a typed error instead".into(),
                );
            }
            if (t.is_ident("panic") || t.is_ident("unimplemented") || t.is_ident("todo"))
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                ctx.push(
                    out,
                    "panic",
                    line,
                    format!(
                        "`{}!` in library code; return a typed error instead",
                        t.text
                    ),
                );
            }
            // Library stderr must flow through the observability layer:
            // bare eprintln!s ignore the DEEPOD_LOG level gate and race
            // the single-writer lock, interleaving under threads > 1.
            if (t.is_ident("eprintln") || t.is_ident("eprint"))
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                ctx.push(
                    out,
                    "no-bare-eprintln",
                    line,
                    format!(
                        "`{}!` in library code bypasses the `deepod_core::obs` level gate \
                         and single-writer lock; emit a leveled event instead",
                        t.text
                    ),
                );
            }
            // Configuration flows through `deepod_core::RuntimeConfig`,
            // resolved once in the binary: an environment read buried in a
            // library makes behavior depend on which module initialized
            // first. (`env::args` and the `env!` macro are not reads of
            // ambient configuration and stay legal.)
            if t.is_ident("env")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| {
                    n.is_ident("var") || n.is_ident("var_os") || n.is_ident("vars")
                })
            {
                ctx.push(
                    out,
                    "no-env-read-in-lib",
                    line,
                    format!(
                        "`env::{}` in library code; resolve configuration once at binary \
                         startup via `deepod_core::RuntimeConfig` and pass it in",
                        toks[i + 2].text
                    ),
                );
            }
        }

        // --- nondeterminism (scoped to the numeric crates) ---
        if DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
            let hit = if t.is_ident("Instant")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                Some("Instant::now")
            } else if t.is_ident("SystemTime") {
                Some("SystemTime")
            } else if t.is_ident("thread_rng") {
                Some("thread_rng")
            } else if t.is_ident("from_entropy") {
                Some("from_entropy")
            } else {
                None
            };
            if let Some(what) = hit {
                ctx.push(
                    out,
                    "nondeterminism",
                    line,
                    format!(
                        "`{what}` in deterministic crate `{}`: model code must be a pure \
                         function of (input, seed, thread count)",
                        ctx.crate_name
                    ),
                );
            }
        }

        // --- float-eq ---
        if t.is_punct("==") || t.is_punct("!=") {
            let float_adjacent = (i > 0 && toks[i - 1].kind == TokKind::Float)
                || toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float);
            if float_adjacent {
                ctx.push(
                    out,
                    "float-eq",
                    line,
                    format!(
                        "exact float comparison `{}`; use a tolerance, an ordering \
                         comparison, or an explicit allow for intentional exact-zero tests",
                        t.text
                    ),
                );
            }
        }

        // --- no-bare-fs-write (applies to bins too: a torn CLI write is
        //     exactly the crash-safety hole DESIGN.md §8 closes) ---
        if !is_io_guard {
            let bare = if t.is_ident("fs")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("write"))
            {
                Some("fs::write")
            } else if t.is_ident("File")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("create"))
            {
                Some("File::create")
            } else {
                None
            };
            if let Some(what) = bare {
                ctx.push(
                    out,
                    "no-bare-fs-write",
                    line,
                    format!(
                        "`{what}` bypasses the crash-safe write path; use \
                         `deepod_core::io_guard` (temp file + fsync + atomic \
                         rename + checksum) instead"
                    ),
                );
            }
        }

        // --- no-unchecked-simd (applies everywhere, bins included: an
        //     illegal instruction on an older CPU is a crash no matter
        //     which binary emits it) ---
        if t.kind == TokKind::Ident && t.text.starts_with("_mm") && !in_use_item {
            if !target_feature_mask[i] {
                ctx.push(
                    out,
                    "no-unchecked-simd",
                    line,
                    format!(
                        "intrinsic `{}` outside a `#[target_feature]` fn is undefined \
                         behavior on CPUs without the feature; move it into a \
                         `#[target_feature]` fn reached via a runtime-detection dispatcher",
                        t.text
                    ),
                );
            } else if !has_feature_detect {
                ctx.push(
                    out,
                    "no-unchecked-simd",
                    line,
                    format!(
                        "intrinsic `{}` is inside a `#[target_feature]` fn, but this file \
                         never calls `is_x86_feature_detected!`; gate the call behind \
                         runtime feature detection",
                        t.text
                    ),
                );
            }
        }

        // --- truncating-cast ---
        if t.is_ident("as")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && INT_TARGETS.contains(&n.text.as_str()))
            && i > 0
        {
            let prev = &toks[i - 1];
            // Flag `0.5 as usize` and `x as f32 as usize` outright.
            let float_source = prev.kind == TokKind::Float
                || (prev.kind == TokKind::Ident
                    && (prev.text == "f32" || prev.text == "f64")
                    && i >= 2
                    && toks[i - 2].is_ident("as"));
            let flagged = if float_source {
                true
            } else if prev.is_punct(")") {
                // `x.floor() as usize` — the call just before the cast
                // returns a float.
                matching_open(toks, i - 1)
                    .and_then(|open| open.checked_sub(1))
                    .is_some_and(|k| {
                        toks[k].kind == TokKind::Ident
                            && FLOAT_METHODS.contains(&toks[k].text.as_str())
                    })
            } else {
                false
            };
            if flagged {
                ctx.push(
                    out,
                    "truncating-cast",
                    line,
                    format!(
                        "float expression cast straight to `{}` truncates silently; route \
                         index math through a checked helper (or allow on an audited one)",
                        toks[i + 1].text
                    ),
                );
            }
        }
    }
}

/// Collects the names of `#[test]` functions (and any `fn` defined inside
/// test-masked code) from one file.
pub fn collect_test_fn_names(ctx: &FileCtx<'_>, into: &mut BTreeSet<String>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i]
            && toks[i].is_ident("fn")
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
        {
            into.insert(toks[i + 1].text.clone());
        }
    }
}

/// Collects `pub fn` names declared in *non-test* code of one file,
/// with the line each was declared on.
pub fn collect_pub_fns(ctx: &FileCtx<'_>) -> Vec<(String, u32)> {
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if ctx.test_mask[i] || !toks[i].is_ident("pub") {
            continue;
        }
        // `pub fn name` or `pub(crate) fn name` — skip an optional
        // parenthesized visibility scope.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct("(")) {
            while j < toks.len() && !toks[j].is_punct(")") {
                j += 1;
            }
            j += 1;
        }
        if toks.get(j).is_some_and(|n| n.is_ident("fn"))
            && toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident)
        {
            out.push((toks[j + 1].text.clone(), toks[j + 1].line));
        }
    }
    out
}

/// Workspace-level rule: every `pub fn` of `deepod_tensor::parallel` must
/// have a regression test whose name contains both the function name and
/// `serial`, pinning the `threads = 1 == serial` contract by name.
pub fn check_parallel_coverage(
    parallel_rel_path: &str,
    pub_fns: &[(String, u32)],
    test_names: &BTreeSet<String>,
    allows: &Lexed,
    out: &mut Vec<Finding>,
) {
    for (name, line) in pub_fns {
        let covered = test_names
            .iter()
            .any(|t| t.contains(name.as_str()) && t.contains("serial"));
        let allowed = allows
            .allows
            .get(line)
            .is_some_and(|s| s.contains("parallel-coverage"));
        if !covered && !allowed {
            out.push(Finding {
                rule: "parallel-coverage",
                path: parallel_rel_path.to_string(),
                line: *line,
                msg: format!(
                    "pub fn `{name}` has no `*{name}*serial*` regression test pinning \
                     the threads=1 == serial contract"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint_lib_src(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ctx = FileCtx::new("mem.rs", "tensor", &lexed, false, false);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        out
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n";
        let f = lint_lib_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nmod m { fn b() { y.unwrap(); } }\n";
        assert_eq!(lint_lib_src(src).len(), 1);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn lib() { z.unwrap(); }\n";
        let f = lint_lib_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn a() { x.unwrap(); } // deepod-lint: allow(unwrap)\n";
        assert!(lint_lib_src(src).is_empty());
    }

    #[test]
    fn truncating_cast_variants() {
        assert_eq!(
            lint_lib_src("fn a() -> usize { x.floor() as usize }").len(),
            1
        );
        assert_eq!(lint_lib_src("fn a() -> usize { 2.5 as usize }").len(), 1);
        assert_eq!(lint_lib_src("fn a() -> u32 { x as f32 as u32 }").len(), 1);
        assert!(lint_lib_src("fn a() -> usize { x.len() as usize }").is_empty());
        assert!(lint_lib_src("fn a() -> f64 { x.floor() as f64 }").is_empty());
    }

    #[test]
    fn float_eq_flags_literal_comparisons_only() {
        assert_eq!(lint_lib_src("fn a() -> bool { x == 0.0 }").len(), 1);
        assert_eq!(lint_lib_src("fn a() -> bool { 1.5 != y }").len(), 1);
        assert!(lint_lib_src("fn a() -> bool { x == y }").is_empty());
        assert!(lint_lib_src("fn a() -> bool { n == 0 }").is_empty());
    }

    #[test]
    fn nondeterminism_scoped_to_crate_list() {
        let src = "fn a() { let t = Instant::now(); }";
        let lexed = lex(src);
        let ctx = FileCtx::new("mem.rs", "core", &lexed, false, false);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert_eq!(out.len(), 1);

        let ctx = FileCtx::new("mem.rs", "eval", &lexed, false, false);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.is_empty(), "eval may use wall clocks");
    }

    #[test]
    fn parallel_coverage_names() {
        let lexed = lex("pub fn map_ranges() {}\npub(crate) fn tree_reduce() {}\n");
        let ctx = FileCtx::new("parallel.rs", "tensor", &lexed, false, false);
        let fns = collect_pub_fns(&ctx);
        assert_eq!(fns.len(), 2);
        let mut tests = BTreeSet::new();
        tests.insert("map_ranges_threads1_matches_serial".to_string());
        let mut out = Vec::new();
        check_parallel_coverage("parallel.rs", &fns, &tests, &lexed, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("tree_reduce"));
    }

    #[test]
    fn bare_fs_write_fires_outside_io_guard() {
        let src = "fn a() { std::fs::write(p, b)?; }";
        assert_eq!(lint_lib_src(src).len(), 1);
        assert_eq!(lint_lib_src(src)[0].rule, "no-bare-fs-write");
        let src = "fn a() { let f = File::create(p)?; }";
        assert_eq!(lint_lib_src(src)[0].rule, "no-bare-fs-write");
        // Reads and directory creation stay legal.
        assert!(lint_lib_src("fn a() { fs::read_to_string(p)?; }").is_empty());
        assert!(lint_lib_src("fn a() { fs::create_dir_all(p)?; }").is_empty());
    }

    #[test]
    fn bare_fs_write_exempts_io_guard_and_tests() {
        let src = "fn a() { std::fs::write(p, b)?; }";
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/core/src/io_guard.rs", "core", &lexed, false, false);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.is_empty(), "io_guard.rs may write directly: {out:?}");

        let src = "#[test]\nfn t() { std::fs::write(p, b).unwrap(); }\n";
        assert!(lint_lib_src(src).is_empty(), "test code may seed files");
    }

    #[test]
    fn bare_fs_write_fires_in_bins_too() {
        let src = "fn main() { std::fs::write(p, b).ok(); }";
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/cli/src/main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(
            out.iter().any(|f| f.rule == "no-bare-fs-write"),
            "bins are not exempt: {out:?}"
        );
    }

    #[test]
    fn bare_eprintln_fires_in_library_code_only() {
        let f = lint_lib_src("fn a() { eprintln!(\"oops\"); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-bare-eprintln");
        assert_eq!(
            lint_lib_src("fn a() { eprint!(\"x\"); }")[0].rule,
            "no-bare-eprintln"
        );
        // println! (stdout) and an identifier without `!` stay legal.
        assert!(lint_lib_src("fn a() { println!(\"ok\"); }").is_empty());
        assert!(lint_lib_src("fn a() { let eprintln = 1; }").is_empty());
        // Allow directive and test code are exempt.
        assert!(lint_lib_src(
            "fn a() { eprintln!(\"x\"); } // deepod-lint: allow(no-bare-eprintln)"
        )
        .is_empty());
        assert!(lint_lib_src("#[test]\nfn t() { eprintln!(\"dbg\"); }\n").is_empty());
        // Bins keep their top-level stderr messages.
        let lexed = lex("fn main() { eprintln!(\"error: x\"); }");
        let ctx = FileCtx::new("crates/cli/src/main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.is_empty(), "bins are exempt: {out:?}");
    }

    #[test]
    fn env_read_fires_in_library_code_only() {
        let f = lint_lib_src("fn a() { let v = std::env::var(\"X\"); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-env-read-in-lib");
        assert_eq!(
            lint_lib_src("fn a() { for (k, v) in std::env::vars() {} }")[0].rule,
            "no-env-read-in-lib"
        );
        assert_eq!(
            lint_lib_src("fn a() { env::var_os(\"X\"); }")[0].rule,
            "no-env-read-in-lib"
        );
        // `env::args` (argv, not ambient config) and the compile-time
        // `env!` macro stay legal, as do tests and allow directives.
        assert!(lint_lib_src("fn a() { std::env::args().nth(1); }").is_empty());
        assert!(lint_lib_src("fn a() { let v = env!(\"CARGO_PKG_NAME\"); }").is_empty());
        assert!(lint_lib_src("#[test]\nfn t() { std::env::var(\"X\").ok(); }\n").is_empty());
        assert!(lint_lib_src(
            "fn a() { std::env::var(\"X\").ok(); } // deepod-lint: allow(no-env-read-in-lib)"
        )
        .is_empty());
        // Binaries resolve the environment themselves: exempt.
        let lexed = lex("fn main() { std::env::var(\"DEEPOD_LOG\").ok(); }");
        let ctx = FileCtx::new("crates/cli/src/main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.is_empty(), "bins may read env: {out:?}");
    }

    #[test]
    fn unchecked_simd_requires_target_feature_and_dispatch() {
        // Naked intrinsic call: undefined behavior on older CPUs.
        let f = lint_lib_src("fn a() { unsafe { _mm256_add_ps(x, y) }; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-unchecked-simd");

        // The blessed shape: imports, a runtime dispatcher, and the
        // intrinsic inside a #[target_feature] fn.
        let good = "use core::arch::x86_64::_mm256_add_ps;\n\
                    fn d() -> bool { is_x86_feature_detected!(\"avx\") }\n\
                    #[target_feature(enable = \"avx\")]\n\
                    unsafe fn k() { _mm256_add_ps(x, y); }\n";
        assert!(lint_lib_src(good).is_empty(), "{:?}", lint_lib_src(good));

        // #[target_feature] without any runtime detection in the file
        // still fires: nothing proves the CPU has the feature.
        let undetected = "#[target_feature(enable = \"avx\")]\n\
                          unsafe fn k() { _mm256_add_ps(x, y); }\n";
        assert_eq!(lint_lib_src(undetected).len(), 1);

        // `__m256` is a *type*, not an intrinsic call; test code and
        // allow directives are exempt like every other rule.
        assert!(lint_lib_src("fn a(x: __m256) {}").is_empty());
        assert!(lint_lib_src("#[test]\nfn t() { unsafe { _mm256_add_ps(x, y) }; }\n").is_empty());
        assert!(lint_lib_src(
            "fn a() { unsafe { _mm256_add_ps(x, y) }; } // deepod-lint: allow(no-unchecked-simd)"
        )
        .is_empty());

        // Bins are NOT exempt.
        let lexed = lex("fn main() { unsafe { _mm256_add_ps(x, y) }; }");
        let ctx = FileCtx::new("crates/cli/src/main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.iter().any(|f| f.rule == "no-unchecked-simd"), "{out:?}");
    }

    #[test]
    fn bins_skip_panic_rules_but_not_hygiene() {
        let src = "fn main() { x.unwrap(); let b = y == 0.5; }";
        let lexed = lex(src);
        let ctx = FileCtx::new("main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.iter().all(|f| f.rule != "unwrap"), "{out:?}");
        assert!(out.iter().any(|f| f.rule == "float-eq"), "{out:?}");
    }
}

//! A minimal hand-rolled Rust lexer for `deepod-lint`.
//!
//! The linter's rules are token-level patterns (`.unwrap()` call sites,
//! float literals next to `==`, `as usize` after a float-producing call),
//! so a full parser is unnecessary — but a naive regex over source text is
//! not enough either: `unwrap` inside a string literal or a doc comment
//! must not fire. This lexer produces a faithful token stream that skips
//! comments and strings while still *reading* comments, because trailing
//! `// deepod-lint: allow(<rule>)` / `// deepod-audit: allow(<rule>)`
//! directives are the suppression mechanism (see DESIGN.md §7, §13) and
//! comments containing `SAFETY:` justify `unsafe` for the audit pass.
//! String literal *contents* are kept on the token (the metrics/obs
//! consistency analysis needs the literal metric names).
//!
//! Deliberately unsupported (not used in this workspace): full escape
//! decoding beyond the common `\n`/`\t`/`\"`/`\\` forms and nested
//! generic disambiguation (a token-level linter never needs it).

use std::collections::{HashMap, HashSet};

/// Token classification, as coarse as the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Float literal (has a fractional part, exponent, or f32/f64 suffix).
    Float,
    /// String literal of any flavor (`text` holds the decoded contents).
    Str,
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Any operator or delimiter, multi-character ops kept whole (`==`).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Coarse kind.
    pub kind: TokKind,
    /// Source text (decoded contents for string literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is the given punctuation string.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// True when the token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A lexed source file: the token stream plus the `deepod-lint:
/// allow(...)` directives harvested from comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Lines (1-based) on which each rule is suppressed. A directive
    /// comment suppresses its own line *and* the following line, so both
    /// trailing and standalone-line-above placements work. Lint and audit
    /// directives share this map; their rule names do not collide.
    pub allows: HashMap<u32, HashSet<String>>,
    /// Lines (1-based) on which a comment containing `SAFETY:` (or a
    /// `# Safety` doc-section header) starts. The unsafe audit accepts a
    /// justification comment on the same line as the `unsafe` keyword or
    /// within a few lines above it.
    pub safety_lines: HashSet<u32>,
}

/// Records an allow directive (`deepod-lint:` or `deepod-audit:`) found
/// in a comment at `line`.
fn record_allows(allows: &mut HashMap<u32, HashSet<String>>, comment: &str, line: u32) {
    let pos = match (comment.find("deepod-lint:"), comment.find("deepod-audit:")) {
        (Some(p), _) => p + "deepod-lint:".len(),
        (None, Some(p)) => p + "deepod-audit:".len(),
        (None, None) => return,
    };
    let rest = comment[pos..].trim_start();
    let Some(list) = rest.strip_prefix("allow(") else {
        return;
    };
    let Some(end) = list.find(')') else { return };
    for rule in list[..end].split(',') {
        let rule = rule.trim();
        if !rule.is_empty() {
            allows.entry(line).or_default().insert(rule.to_string());
            allows.entry(line + 1).or_default().insert(rule.to_string());
        }
    }
}

/// Decodes the character after a backslash in a string literal. Only the
/// escapes this workspace uses are mapped; anything else passes through,
/// which is fine because decoded contents are only *matched*, not
/// re-emitted as Rust.
fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Lexes `src` into a token stream. Never fails: unknown bytes become
/// single-character punctuation so the linter degrades gracefully on
/// exotic input instead of crashing the gate.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    // Multi-character operators, longest first so `..=` wins over `..`.
    const PUNCTS: [&str; 24] = [
        "..=", "<<=", ">>=", "...", "==", "!=", "<=", ">=", "->", "=>", "::", "..", "&&", "||",
        "+=", "-=", "*=", "/=", "%=", "^=", "|=", "&=", "<<", ">>",
    ];

    // A leading `#!` shebang line (but not an inner attribute `#![...]`)
    // is not Rust tokens; skip it wholesale.
    if n >= 2 && b[0] == '#' && b[1] == '!' && (n == 2 || b[2] != '[') {
        while i < n && b[i] != '\n' {
            i += 1;
        }
    }

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            record_allows(&mut out.allows, &text, line);
            if text.contains("SAFETY:") || text.contains("# Safety") {
                out.safety_lines.insert(line);
            }
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 1;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 1;
                }
                i += 1;
            }
            let text: String = b[start..i.min(n)].iter().collect();
            record_allows(&mut out.allows, &text, start_line);
            if text.contains("SAFETY:") || text.contains("# Safety") {
                out.safety_lines.insert(start_line);
            }
            continue;
        }
        // Raw / byte strings: r"...", r#"..."#, b"...", br#"..."#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let mut j = i + 1;
            if c == 'b' && j < n && b[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            let is_raw = c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r');
            if j < n && b[j] == '"' && (is_raw || (c == 'b' && hashes == 0)) {
                let tline = line;
                let mut content = String::new();
                if is_raw {
                    // Scan to closing quote followed by `hashes` hashes.
                    j += 1;
                    'raw: while j < n {
                        if b[j] == '\n' {
                            line += 1;
                        }
                        if b[j] == '"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        content.push(b[j]);
                        j += 1;
                    }
                } else {
                    // b"..." — ordinary escape rules.
                    j += 1;
                    while j < n && b[j] != '"' {
                        if b[j] == '\\' {
                            j += 1;
                            if j < n {
                                content.push(unescape(b[j]));
                            }
                        } else {
                            if b[j] == '\n' {
                                line += 1;
                            }
                            content.push(b[j]);
                        }
                        j += 1;
                    }
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: content,
                    line: tline,
                });
                i = j;
                continue;
            }
            // else: fall through — it is an ordinary identifier.
        }
        if c == '"' {
            let tline = line;
            let mut content = String::new();
            i += 1;
            while i < n && b[i] != '"' {
                if b[i] == '\\' {
                    i += 1;
                    if i < n {
                        content.push(unescape(b[i]));
                    }
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    content.push(b[i]);
                }
                i += 1;
            }
            i += 1;
            out.tokens.push(Token {
                kind: TokKind::Str,
                text: content,
                line: tline,
            });
            continue;
        }
        if c == '\'' {
            // Lifetime or char literal. `'a` (lifetime) vs `'a'` (char).
            let is_char = if i + 1 < n && b[i + 1] == '\\' {
                true
            } else if i + 1 < n && (b[i + 1].is_alphanumeric() || b[i + 1] == '_') {
                i + 2 < n && b[i + 2] == '\''
            } else {
                true // e.g. '(' — only valid as a char literal
            };
            if is_char {
                let tline = line;
                i += 1;
                while i < n && b[i] != '\'' {
                    if b[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    text: String::new(),
                    line: tline,
                });
            } else {
                let start = i;
                i += 1;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut kind = TokKind::Int;
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // Fractional part — but not `..` (range) and not `.method()`.
                if i < n && b[i] == '.' {
                    let next = b.get(i + 1).copied().unwrap_or(' ');
                    if next.is_ascii_digit() {
                        kind = TokKind::Float;
                        i += 1;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    } else if next != '.' && !next.is_alphabetic() && next != '_' {
                        kind = TokKind::Float; // `1.` with nothing after
                        i += 1;
                    }
                }
                // Exponent.
                if i < n
                    && (b[i] == 'e' || b[i] == 'E')
                    && b.get(i + 1).is_some_and(|&d| {
                        d.is_ascii_digit()
                            || ((d == '+' || d == '-')
                                && b.get(i + 2).is_some_and(|e| e.is_ascii_digit()))
                    })
                {
                    kind = TokKind::Float;
                    i += 2;
                    while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                        i += 1;
                    }
                }
                // Type suffix (`1f32`, `1_u64`).
                let suffix_start = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let suffix: String = b[suffix_start..i].iter().collect();
                if suffix.contains("f32") || suffix.contains("f64") {
                    kind = TokKind::Float;
                }
            }
            out.tokens.push(Token {
                kind,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Punctuation: longest known multi-char operator first.
        let mut matched = false;
        for p in PUNCTS {
            let pc: Vec<char> = p.chars().collect();
            if i + pc.len() <= n && b[i..i + pc.len()] == pc[..] {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: p.to_string(),
                    line,
                });
                i += pc.len();
                matched = true;
                break;
            }
        }
        if !matched {
            out.tokens.push(Token {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lexes_idents_numbers_and_ops() {
        let ts = kinds("let x = a.unwrap() == 0.5;");
        assert!(ts.contains(&(TokKind::Ident, "unwrap".into())));
        assert!(ts.contains(&(TokKind::Punct, "==".into())));
        assert!(ts.contains(&(TokKind::Float, "0.5".into())));
    }

    #[test]
    fn range_is_not_a_float() {
        let ts = kinds("for i in 0..10 {}");
        assert!(ts.contains(&(TokKind::Int, "0".into())));
        assert!(ts.contains(&(TokKind::Punct, "..".into())));
        assert!(!ts.iter().any(|(k, _)| *k == TokKind::Float));
    }

    #[test]
    fn float_suffix_and_exponent() {
        let ts = kinds("1f32 2e3 4_000.5");
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::Float).count(), 3);
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let ts = kinds("\"x.unwrap()\" // y.unwrap()\n/* z.unwrap() */ ok");
        assert!(!ts.iter().any(|(_, t)| t == "unwrap"));
        assert!(ts.contains(&(TokKind::Ident, "ok".into())));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ts = kinds(r###"let s = r#"a "quoted" panic!()"#; done"###);
        assert!(!ts.iter().any(|(_, t)| t == "panic"));
        assert!(ts.contains(&(TokKind::Ident, "done".into())));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(ts.contains(&(TokKind::Lifetime, "'a".into())));
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let lx = lex("a\n// deepod-lint: allow(unwrap, float-eq)\nb.unwrap();\n");
        let l2 = lx.allows.get(&2).unwrap();
        let l3 = lx.allows.get(&3).unwrap();
        for rules in [l2, l3] {
            assert!(rules.contains("unwrap") && rules.contains("float-eq"));
        }
        assert!(!lx.allows.contains_key(&1));
    }

    #[test]
    fn method_call_on_int_is_not_a_float() {
        let ts = kinds("let m = 1.max(2);");
        assert!(ts.contains(&(TokKind::Int, "1".into())));
        assert!(ts.contains(&(TokKind::Ident, "max".into())));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let ts = kinds("a /* outer /* inner */ still.comment() */ b");
        assert_eq!(
            ts,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())],
            "tokens inside the nested comment must not leak"
        );
    }

    #[test]
    fn lifetime_tick_before_closing_angle_is_not_a_char() {
        // `'a>` — the tick is followed by an ident then `>`, so it is a
        // lifetime; a naive lexer eats `a>` looking for a closing quote
        // and silently swallows the rest of the generics.
        let ts = kinds("struct S<'a>(&'a str);");
        assert_eq!(
            ts.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert!(!ts.iter().any(|(k, _)| *k == TokKind::Char));
        assert!(ts.contains(&(TokKind::Ident, "str".into())));
    }

    #[test]
    fn byte_raw_strings_hide_their_contents() {
        let ts = kinds(r###"let s = br#"x.unwrap() "q" panic!()"#; after"###);
        assert_eq!(ts.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(!ts.iter().any(|(_, t)| t == "unwrap" || t == "panic"));
        assert!(ts.contains(&(TokKind::Ident, "after".into())));
    }

    #[test]
    fn leading_shebang_is_skipped_but_inner_attribute_is_not() {
        let ts = kinds("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert_eq!(ts[0], (TokKind::Ident, "fn".into()), "{ts:?}");
        // `#![allow(dead_code)]` must still lex as tokens.
        let ts = kinds("#![allow(dead_code)]\n");
        assert!(ts.contains(&(TokKind::Ident, "allow".into())));
    }

    #[test]
    fn string_contents_are_retained() {
        let lx = lex("emit(\"serve.queue_depth\", r#\"raw.name\"#, \"a\\nb\");");
        let strs: Vec<&str> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["serve.queue_depth", "raw.name", "a\nb"]);
    }

    #[test]
    fn safety_comment_lines_are_recorded() {
        let lx = lex("a\n// SAFETY: len checked above\nunsafe { x() }\n/* SAFETY: aligned */\n");
        assert!(lx.safety_lines.contains(&2));
        assert!(lx.safety_lines.contains(&4));
        assert!(!lx.safety_lines.contains(&1));
    }

    #[test]
    fn audit_allow_directives_share_the_allows_map() {
        let lx = lex("// deepod-audit: allow(no-panic)\nv[0];\n");
        assert!(lx.allows.get(&1).unwrap().contains("no-panic"));
        assert!(lx.allows.get(&2).unwrap().contains("no-panic"));
    }
}

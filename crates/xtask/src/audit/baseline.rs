//! The checked-in audit baseline (`audit-baseline.json`).
//!
//! The gate is *zero unbaselined findings*: every finding the audit
//! produces must either be fixed or explicitly absorbed into the
//! baseline by a reviewed `--update-baseline` run. Matching is by
//! fingerprint (line-number-free, see [`super::AuditFinding`]), so
//! ordinary edits don't churn the file; a baselined fingerprint the
//! audit no longer produces is reported as *stale* so the baseline
//! shrinks monotonically instead of fossilising.

use super::AuditFinding;
use serde::json;
use std::collections::BTreeSet;
use std::path::Path;

/// Parsed baseline: the set of accepted fingerprints.
#[derive(Debug, Default)]
pub struct Baseline {
    pub fingerprints: BTreeSet<String>,
}

/// How the audit's findings relate to a baseline.
pub struct Partition<'a> {
    /// Findings not in the baseline — these fail the gate.
    pub unbaselined: Vec<&'a AuditFinding>,
    /// Findings absorbed by the baseline.
    pub baselined: usize,
    /// Baseline fingerprints no longer produced (fixed or renamed).
    pub stale: Vec<String>,
}

impl Baseline {
    /// Loads `path`. A missing file is an *empty* baseline (fresh
    /// checkout before the first `--update-baseline`); an unreadable or
    /// malformed file is an error — the gate must not silently pass
    /// because its baseline rotted.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Baseline::default());
            }
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let v = json::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
        let arr = json::obj_field(&v, "findings")
            .and_then(json::expect_arr)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let mut fingerprints = BTreeSet::new();
        for item in arr {
            let fp = json::obj_field(item, "fingerprint")
                .and_then(json::expect_str)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            fingerprints.insert(fp.to_string());
        }
        Ok(Baseline { fingerprints })
    }

    /// Splits `findings` into unbaselined / baselined / stale.
    pub fn partition<'a>(&self, findings: &'a [AuditFinding]) -> Partition<'a> {
        let produced: BTreeSet<&str> = findings.iter().map(|f| f.fingerprint.as_str()).collect();
        let mut unbaselined = Vec::new();
        let mut baselined = 0;
        for f in findings {
            if self.fingerprints.contains(&f.fingerprint) {
                baselined += 1;
            } else {
                unbaselined.push(f);
            }
        }
        let stale = self
            .fingerprints
            .iter()
            .filter(|fp| !produced.contains(fp.as_str()))
            .cloned()
            .collect();
        Partition {
            unbaselined,
            baselined,
            stale,
        }
    }
}

/// Renders `findings` as baseline JSON: fingerprint plus a human note
/// (rule + message) so reviews of baseline diffs don't need to re-run
/// the audit. Sorted by fingerprint; one finding per line.
pub fn render(findings: &[&AuditFinding]) -> String {
    let mut rows: Vec<(&str, &AuditFinding)> = findings
        .iter()
        .map(|f| (f.fingerprint.as_str(), *f))
        .collect();
    rows.sort_by_key(|(fp, _)| *fp);
    rows.dedup_by_key(|(fp, _)| *fp);
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [\n");
    for (i, (fp, f)) in rows.iter().enumerate() {
        out.push_str("    {\"fingerprint\": ");
        json::escape_str(fp, &mut out);
        out.push_str(", \"rule\": ");
        json::escape_str(f.rule, &mut out);
        out.push_str(", \"note\": ");
        json::escape_str(&f.msg, &mut out);
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders findings as machine-readable audit output (`--json`):
/// `{"findings": [...], "count": N}` with chain hops included.
pub fn render_report(findings: &[&AuditFinding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("    {\"rule\": ");
        json::escape_str(f.rule, &mut out);
        out.push_str(", \"path\": ");
        json::escape_str(&f.path, &mut out);
        out.push_str(&format!(", \"line\": {}, \"msg\": ", f.line));
        json::escape_str(&f.msg, &mut out);
        out.push_str(", \"fingerprint\": ");
        json::escape_str(&f.fingerprint, &mut out);
        out.push_str(", \"chain\": [");
        for (j, hop) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            json::escape_str(hop, &mut out);
        }
        out.push_str("]}");
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!("  ],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

//! Metrics/observability consistency.
//!
//! The obs registry (DESIGN.md §11) renders *registered* series even
//! when they are zero, so dashboards distinguish "never fired" from
//! "not wired up". A metric emitted under a name that is never eagerly
//! registered silently re-creates the gap the registry closed: the
//! series exists only after the first event. This pass collects the
//! registration set — uses flagged by the parser (a `register_*` API,
//! or a zero-value `counter_add` priming call) plus any emission inside
//! a fn whose name starts with `register` — and flags every emitted
//! literal name outside that set.

use super::{allowed, AuditFinding};
use crate::callgraph::CallGraph;
use std::collections::{BTreeMap, BTreeSet};

pub fn check(graph: &CallGraph<'_>, out: &mut Vec<AuditFinding>) {
    let mut registered: BTreeSet<&str> = BTreeSet::new();
    // name → first emission (path, line, api); test emissions don't
    // count — the gate is about production series.
    let mut emitted: BTreeMap<&str, (&str, u32, &str, usize)> = BTreeMap::new();

    for n in 0..graph.nodes.len() {
        let item = graph.item(n);
        let file = graph.file(n);
        for m in &item.metrics {
            if m.name.is_empty() {
                // Dynamic (non-literal) name: nothing checkable.
                continue;
            }
            if m.is_registration || item.name.starts_with("register") {
                registered.insert(&m.name);
            } else if !item.is_test {
                emitted
                    .entry(&m.name)
                    .or_insert((&file.rel_path, m.line, &m.api, n));
            }
        }
    }

    for (name, (path, line, api, node)) in emitted {
        if registered.contains(name) {
            continue;
        }
        if allowed(graph.file(node), "metrics-consistency", line) {
            continue;
        }
        out.push(AuditFinding {
            rule: "metrics-consistency",
            path: path.to_string(),
            line,
            msg: format!(
                "metric `{name}` is emitted (via `{api}`) but never eagerly \
                 registered; the series is invisible until the first event"
            ),
            fingerprint: format!("metrics-consistency:{name}"),
            chain: Vec::new(),
        });
    }
}

//! Lock-order and lock-across-send analysis.
//!
//! Lock identity is the *name* of the field/binding the guard came from
//! (`self.queue.lock()` → `queue`), matched across crates — the audit
//! cares about the two named locks in `crates/serve` and
//! `crates/tensor::parallel`, where a both-orders pair is a real
//! deadlock. Acquisition order is tracked two ways: directly (an
//! acquisition while another guard is live in the same body) and
//! transitively (a call made while a guard is live, where the callee —
//! or anything it reaches — acquires a lock). A pair seen in both
//! orders is `lock-order`; a channel send / queue submit performed
//! while a guard is live is `lock-across-send` (the receiver may block
//! on that same lock, and at minimum the critical section inflates by
//! the channel's backpressure).

use super::{allowed, AuditFinding};
use crate::callgraph::CallGraph;
use std::collections::{BTreeMap, BTreeSet};

/// Call names treated as channel/queue handoffs.
const SEND_METHODS: [&str; 4] = ["send", "try_send", "submit", "try_submit"];

pub fn check(graph: &CallGraph<'_>, out: &mut Vec<AuditFinding>) {
    let n = graph.nodes.len();

    // Transitive acquisition sets by fixpoint (the graph may have cycles).
    let mut acquires: Vec<BTreeSet<String>> = (0..n)
        .map(|i| graph.item(i).locks.iter().map(|l| l.name.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            for e in &graph.edges[i] {
                let extra: Vec<String> = acquires[e.to]
                    .iter()
                    .filter(|l| !acquires[i].contains(*l))
                    .cloned()
                    .collect();
                if !extra.is_empty() {
                    acquires[i].extend(extra);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // (held, acquired) → first witness site.
    let mut pairs: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    let record = |held: &str,
                  acq: &str,
                  path: &str,
                  line: u32,
                  how: String,
                  pairs: &mut BTreeMap<(String, String), (String, u32, String)>| {
        if held != acq {
            pairs.entry((held.to_string(), acq.to_string())).or_insert((
                path.to_string(),
                line,
                how,
            ));
        }
    };

    for i in 0..n {
        let item = graph.item(i);
        let file = graph.file(i);
        if item.is_test {
            continue;
        }
        let label = graph.label(i);

        // Direct nesting within one body.
        for op in &item.locks {
            for held in &op.held_locks {
                record(
                    held,
                    &op.name,
                    &file.rel_path,
                    op.line,
                    format!("`{label}` acquires `{}` while holding `{held}`", op.name),
                    &mut pairs,
                );
            }
        }

        for call in &item.calls {
            if call.held_locks.is_empty() {
                continue;
            }
            // Transitive nesting: callee (or anything it reaches)
            // acquires while our guard is live.
            for e in &graph.edges[i] {
                if e.line != call.line {
                    continue;
                }
                for acq in acquires[e.to].iter() {
                    for held in &call.held_locks {
                        record(
                            held,
                            acq,
                            &file.rel_path,
                            call.line,
                            format!(
                                "`{label}` calls `{}` (which acquires `{acq}`) while \
                                 holding `{held}`",
                                graph.label(e.to)
                            ),
                            &mut pairs,
                        );
                    }
                }
            }
            // Sends under a lock.
            if SEND_METHODS.contains(&call.name.as_str())
                && !allowed(file, "lock-across-send", call.line)
            {
                for held in &call.held_locks {
                    out.push(AuditFinding {
                        rule: "lock-across-send",
                        path: file.rel_path.clone(),
                        line: call.line,
                        msg: format!(
                            "`{label}` calls `{}` while holding lock `{held}`; the \
                             handoff can block inside the critical section",
                            call.name
                        ),
                        fingerprint: format!(
                            "lock-across-send:{}:{label}:{held}:{}",
                            file.rel_path, call.name
                        ),
                        chain: Vec::new(),
                    });
                }
            }
        }
    }

    // Both-orders pairs. Canonical (a < b) so each inversion reports once.
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), (path, line, how_ab)) in &pairs {
        let key = if a < b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if seen.contains(&key) {
            continue;
        }
        if let Some((path_ba, line_ba, how_ba)) = pairs.get(&(b.clone(), a.clone())) {
            seen.insert(key.clone());
            // Suppressible at either witness site.
            let (fa, fb) = (&key.0, &key.1);
            out.push(AuditFinding {
                rule: "lock-order",
                path: path.clone(),
                line: *line,
                msg: format!(
                    "locks `{a}` and `{b}` are acquired in both orders: {how_ab} \
                     ({path}:{line}) vs {how_ba} ({path_ba}:{line_ba})"
                ),
                fingerprint: format!("lock-order:{fa}<->{fb}"),
                chain: Vec::new(),
            });
        }
    }
}

//! Unsafe/SIMD safety audit.
//!
//! Two rules: `unsafe-safety` — every `unsafe` block or `unsafe fn` must
//! carry a `// SAFETY:` (or `/// # Safety` doc) justification within the
//! lookback window the parser enforces; `simd-dispatch` — every
//! `#[target_feature]` fn may only be reached from callers that either
//! consult the cached runtime detector (`active_isa`,
//! `is_x86_feature_detected!`) or are themselves `#[target_feature]`
//! (same-ISA kernel helpers). Calling a `#[target_feature]` fn from an
//! unchecked caller is UB on hardware without the feature, which is
//! exactly the bug class runtime dispatch exists to prevent.

use super::{allowed, AuditFinding};
use crate::callgraph::CallGraph;

pub fn check(graph: &CallGraph<'_>, out: &mut Vec<AuditFinding>) {
    for n in 0..graph.nodes.len() {
        let item = graph.item(n);
        let file = graph.file(n);
        if item.is_test {
            continue;
        }

        // unsafe-safety: aggregate uncovered sites per fn so one missing
        // comment on a fn with several blocks is one reviewable finding.
        let uncovered: Vec<u32> = item
            .unsafe_sites
            .iter()
            .filter(|s| !s.has_safety_comment && !allowed(file, "unsafe-safety", s.line))
            .map(|s| s.line)
            .collect();
        if let Some(&first) = uncovered.first() {
            let label = graph.label(n);
            let lines = uncovered
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push(AuditFinding {
                rule: "unsafe-safety",
                path: file.rel_path.clone(),
                line: first,
                msg: format!(
                    "`{label}` has unsafe code (line{} {lines}) without a \
                     `// SAFETY:` justification",
                    if uncovered.len() > 1 { "s" } else { "" },
                ),
                fingerprint: format!("unsafe-safety:{}:{label}", file.rel_path),
                chain: Vec::new(),
            });
        }
    }

    // simd-dispatch: scan edges into #[target_feature] targets.
    for caller in 0..graph.nodes.len() {
        let c_item = graph.item(caller);
        if c_item.is_test || c_item.has_feature_check || c_item.has_target_feature {
            continue;
        }
        for e in &graph.edges[caller] {
            let t_item = graph.item(e.to);
            if !t_item.has_target_feature {
                continue;
            }
            let file = graph.file(caller);
            if allowed(file, "simd-dispatch", e.line) {
                continue;
            }
            let c_label = graph.label(caller);
            let t_label = graph.label(e.to);
            out.push(AuditFinding {
                rule: "simd-dispatch",
                path: file.rel_path.clone(),
                line: e.line,
                msg: format!(
                    "`{c_label}` calls `#[target_feature]` fn `{t_label}` without \
                     consulting the runtime feature detector (`active_isa` / \
                     `is_x86_feature_detected!`)"
                ),
                fingerprint: format!("simd-dispatch:{}:{c_label}->{t_label}", file.rel_path),
                chain: Vec::new(),
            });
        }
    }
}

//! `deepod-audit` — workspace call-graph analyses (DESIGN.md §13).
//!
//! Where `lint` judges one line at a time, `audit` judges *flows*: it
//! parses every library file (`crate::parser`), builds the conservative
//! name-resolved call graph (`crate::callgraph`), and runs four
//! analyses over it:
//!
//! | rule                   | guarantee when clean                            |
//! |------------------------|-------------------------------------------------|
//! | `no-panic`             | no path from a serving hot-path root reaches a  |
//! |                        | panic source (unwrap/expect/panic!/assert!/`[]`)|
//! | `unsafe-safety`        | every `unsafe` block/fn carries a `// SAFETY:`  |
//! |                        | justification                                   |
//! | `simd-dispatch`        | every `#[target_feature]` fn is reached only    |
//! |                        | from callers that consult the runtime detector  |
//! | `lock-order`           | no two named locks are acquired in both orders  |
//! | `lock-across-send`     | no lock guard is held across a channel send /   |
//! |                        | queue submit                                    |
//! | `metrics-consistency`  | every emitted metric name is eagerly registered |
//!
//! Because the graph is conservative (see `crate::callgraph`), `no-panic`
//! over-approximates: real reachable panics are always reported, plus
//! some chains that cannot execute. The checked-in `audit-baseline.json`
//! absorbs reviewed findings; the gate is **zero unbaselined findings**.
//! `// deepod-audit: allow(<rule>)` on the offending line suppresses a
//! finding at the source, exactly like lint allows.

pub mod baseline;
pub mod lock_order;
pub mod metrics;
pub mod no_panic;
pub mod unsafe_audit;

use crate::callgraph::CallGraph;
use crate::parser::ParsedFile;
use std::fmt;

pub use baseline::Baseline;
pub use no_panic::DEFAULT_ROOTS;

/// One audit finding.
#[derive(Clone, Debug)]
pub struct AuditFinding {
    /// Rule id (one of [`crate::rules::AUDIT_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path of the anchoring site.
    pub path: String,
    /// 1-based line of the anchoring site.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
    /// Stable identity for baselining: free of line numbers so ordinary
    /// refactors don't churn the baseline.
    pub fingerprint: String,
    /// Witness call chain (root first), one `label (path:line)` per hop;
    /// empty for the non-reachability rules.
    pub chain: Vec<String>,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )?;
        for hop in &self.chain {
            write!(f, "\n    {hop}")?;
        }
        Ok(())
    }
}

/// True when `// deepod-audit: allow(<rule>)` covers `line` of `file`.
pub(crate) fn allowed(file: &ParsedFile, rule: &str, line: u32) -> bool {
    file.allows.get(&line).is_some_and(|s| s.contains(rule))
}

/// Runs all four analyses over the parsed files with the given no-panic
/// roots. Findings come back sorted by (rule, path, line, fingerprint).
pub fn run(files: &[ParsedFile], roots: &[(&str, &str)]) -> Vec<AuditFinding> {
    let graph = CallGraph::build(files);
    let mut out = Vec::new();
    no_panic::check(&graph, roots, &mut out);
    unsafe_audit::check(&graph, &mut out);
    lock_order::check(&graph, &mut out);
    metrics::check(&graph, &mut out);
    out.sort_by(|a, b| {
        (rule_order(a.rule), &a.path, a.line, &a.fingerprint).cmp(&(
            rule_order(b.rule),
            &b.path,
            b.line,
            &b.fingerprint,
        ))
    });
    out
}

fn rule_order(rule: &str) -> usize {
    crate::rules::AUDIT_RULES
        .iter()
        .position(|r| *r == rule)
        .unwrap_or(usize::MAX)
}

//! No-panic certification: transitive reachability from the serving
//! hot-path roots to panic sources, reported as witness call chains.
//!
//! A finding is one (panicking function, source kind) pair, listing every
//! root that reaches it, the panic-site lines, and the shortest witness
//! chain from the first such root with file:line for every hop. The
//! fingerprint deliberately omits line numbers so the checked-in baseline
//! survives ordinary edits; new panic *kinds* in a reachable fn, or newly
//! reachable fns, surface as unbaselined findings.

use super::{allowed, AuditFinding};
use crate::callgraph::CallGraph;
use crate::parser::PanicKind;
use std::collections::BTreeMap;

/// The declared hot-path roots: `DeepOdModel::estimate_batch`, the
/// public kernel dispatchers, the serve engine's worker loop plus its
/// submit entry points, and the serving cache tier's lookup/insert path
/// (consulted before queue admission on every raw request), and the TCP
/// front end's per-connection reader/writer loops. A missing root is
/// itself a finding — the certification must never silently narrow
/// because a function moved.
pub const DEFAULT_ROOTS: [(&str, &str); 13] = [
    ("crates/core/src/model.rs", "estimate_batch"),
    ("crates/core/src/quantized.rs", "estimate_batch"),
    ("crates/tensor/src/kernels.rs", "matmul"),
    ("crates/tensor/src/kernels.rs", "matvec_bias_act"),
    ("crates/tensor/src/kernels.rs", "matvec_i8_bias_act"),
    ("crates/tensor/src/kernels.rs", "axpy"),
    ("crates/serve/src/worker.rs", "worker_loop"),
    ("crates/serve/src/engine.rs", "submit"),
    ("crates/serve/src/engine.rs", "try_submit"),
    ("crates/serve/src/cache.rs", "lookup"),
    ("crates/serve/src/cache.rs", "insert"),
    ("crates/serve/src/net.rs", "conn_reader_loop"),
    ("crates/serve/src/net.rs", "conn_writer_loop"),
];

struct Accum {
    roots: Vec<String>,
    site_lines: Vec<u32>,
    chain: Vec<String>,
}

/// Runs the certification for `roots` (pairs of path suffix + fn name).
pub fn check(graph: &CallGraph<'_>, roots: &[(&str, &str)], out: &mut Vec<AuditFinding>) {
    // (node, kind) → accumulated roots/sites/witness.
    let mut found: BTreeMap<(usize, PanicKind), Accum> = BTreeMap::new();

    for (suffix, fn_name) in roots {
        let Some(root) = graph.find(suffix, fn_name) else {
            out.push(AuditFinding {
                rule: "no-panic",
                path: suffix.to_string(),
                line: 0,
                msg: format!(
                    "audit root `{fn_name}` not found in `{suffix}`; the no-panic \
                     certification no longer covers it — update DEFAULT_ROOTS"
                ),
                fingerprint: format!("no-panic:missing-root:{suffix}:{fn_name}"),
                chain: Vec::new(),
            });
            continue;
        };
        let root_label = graph.label(root);
        let parents = graph.reachable_from(root);
        for n in 0..graph.nodes.len() {
            if !parents.contains_key(&n) {
                continue;
            }
            let item = graph.item(n);
            let file = graph.file(n);
            for site in &item.panics {
                if allowed(file, "no-panic", site.line) {
                    continue;
                }
                let acc = found.entry((n, site.kind)).or_insert_with(|| Accum {
                    roots: Vec::new(),
                    site_lines: Vec::new(),
                    chain: witness_chain(graph, &parents, n),
                });
                if !acc.roots.contains(&root_label) {
                    acc.roots.push(root_label.clone());
                }
                if !acc.site_lines.contains(&site.line) {
                    acc.site_lines.push(site.line);
                }
            }
        }
    }

    for ((n, kind), acc) in found {
        let item = graph.item(n);
        let file = graph.file(n);
        let label = graph.label(n);
        let lines = acc
            .site_lines
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push(AuditFinding {
            rule: "no-panic",
            path: file.rel_path.clone(),
            line: acc.site_lines.first().copied().unwrap_or(item.line),
            msg: format!(
                "`{label}` has a `{}` panic source (line{} {lines}) reachable from \
                 hot-path root{} {}",
                kind.as_str(),
                if acc.site_lines.len() > 1 { "s" } else { "" },
                if acc.roots.len() > 1 { "s" } else { "" },
                acc.roots.join(", "),
            ),
            fingerprint: format!("no-panic:{}:{label}:{}", file.rel_path, kind.as_str()),
            chain: acc.chain,
        });
    }
}

/// Formats the witness chain for `target`: root first, each hop as
/// `label (path:line)` where the line is the call site that entered the
/// hop (the root hop shows its declaration line).
fn witness_chain(
    graph: &CallGraph<'_>,
    parents: &std::collections::HashMap<usize, Option<(usize, u32)>>,
    target: usize,
) -> Vec<String> {
    let chain = graph.witness(parents, target);
    let mut hops = Vec::with_capacity(chain.len());
    for (idx, (node, entered_via)) in chain.iter().enumerate() {
        // Each non-root hop is annotated with the call site that entered
        // it, which lives in the *caller's* file; the root hop shows its
        // own declaration line.
        let (path, line) = if idx == 0 {
            (&graph.file(*node).rel_path, graph.item(*node).line)
        } else {
            (&graph.file(chain[idx - 1].0).rel_path, *entered_via)
        };
        hops.push(format!("{} ({path}:{line})", graph.label(*node)));
    }
    hops
}

//! `cargo run -p xtask -- <command>` — workspace automation.
//!
//! Commands:
//!
//! * `lint [--root DIR]` — run `deepod-lint` over the workspace; exits
//!   nonzero when any finding survives the allowlist, so `scripts/check.sh`
//!   fails loudly.
//! * `rules` — print the rule names (useful when writing an allow
//!   directive).

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
xtask — DeepOD workspace automation

USAGE:
  cargo run -p xtask -- lint [--root DIR]   run the deepod-lint gate
  cargo run -p xtask -- rules               list lint rule names
";

fn workspace_root(argv: &[String]) -> PathBuf {
    if let Some(i) = argv.iter().position(|a| a == "--root") {
        if let Some(dir) = argv.get(i + 1) {
            return PathBuf::from(dir);
        }
    }
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("lint") => {
            let root = workspace_root(&argv[1..]);
            match xtask::lint_workspace(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!(
                        "deepod-lint: clean ({} rules)",
                        xtask::rules::ALL_RULES.len()
                    );
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        println!("{f}");
                    }
                    let mut by_rule: Vec<(&str, usize)> = Vec::new();
                    for rule in xtask::rules::ALL_RULES {
                        let n = findings.iter().filter(|f| f.rule == rule).count();
                        if n > 0 {
                            by_rule.push((rule, n));
                        }
                    }
                    let summary: Vec<String> =
                        by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
                    eprintln!(
                        "deepod-lint: {} finding(s) [{}]",
                        findings.len(),
                        summary.join(", ")
                    );
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("deepod-lint: i/o error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("rules") => {
            for rule in xtask::rules::ALL_RULES {
                println!("{rule}");
            }
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command '{other}'\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

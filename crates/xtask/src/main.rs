//! `cargo run -p xtask -- <command>` — workspace automation.
//!
//! Commands:
//!
//! * `lint [--root DIR] [--json]` — run the per-line `deepod-lint` gate.
//! * `audit [--root DIR] [--json] [--update-baseline]` — run the
//!   call-graph `deepod-audit` gate against `audit-baseline.json`.
//! * `rules` — print every rule (pass, severity, description).
//!
//! Exit-code contract (both gates): `0` clean, `1` findings survive the
//! allowlist/baseline, `2` I/O or parse error (unreadable tree, corrupt
//! baseline). CI can therefore distinguish "the code regressed" from
//! "the gate itself broke".

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
xtask — DeepOD workspace automation

USAGE:
  cargo run -p xtask -- lint  [--root DIR] [--json]   run the deepod-lint gate
  cargo run -p xtask -- audit [--root DIR] [--json] [--update-baseline]
                                                      run the deepod-audit gate
  cargo run -p xtask -- rules                         list all rules

EXIT CODES:
  0  clean        1  findings        2  I/O or parse error
";

const EXIT_FINDINGS: u8 = 1;
const EXIT_ERROR: u8 = 2;

fn workspace_root(argv: &[String]) -> PathBuf {
    if let Some(i) = argv.iter().position(|a| a == "--root") {
        if let Some(dir) = argv.get(i + 1) {
            return PathBuf::from(dir);
        }
    }
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn run_lint(argv: &[String]) -> ExitCode {
    let root = workspace_root(argv);
    let json = argv.iter().any(|a| a == "--json");
    match xtask::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            if json {
                println!("{{\"findings\": [], \"count\": 0}}");
            } else {
                println!(
                    "deepod-lint: clean ({} rules)",
                    xtask::rules::ALL_RULES.len()
                );
            }
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            if json {
                print!("{}", lint_report_json(&findings));
            } else {
                for f in &findings {
                    println!("{f}");
                }
                let mut by_rule: Vec<(&str, usize)> = Vec::new();
                for rule in xtask::rules::ALL_RULES {
                    let n = findings.iter().filter(|f| f.rule == rule).count();
                    if n > 0 {
                        by_rule.push((rule, n));
                    }
                }
                let summary: Vec<String> =
                    by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
                eprintln!(
                    "deepod-lint: {} finding(s) [{}]",
                    findings.len(),
                    summary.join(", ")
                );
            }
            ExitCode::from(EXIT_FINDINGS)
        }
        Err(e) => {
            eprintln!("deepod-lint: i/o error: {e}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}

fn lint_report_json(findings: &[xtask::rules::Finding]) -> String {
    use serde::json::escape_str;
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("    {\"rule\": ");
        escape_str(f.rule, &mut out);
        out.push_str(", \"path\": ");
        escape_str(&f.path, &mut out);
        out.push_str(&format!(", \"line\": {}, \"msg\": ", f.line));
        escape_str(&f.msg, &mut out);
        out.push('}');
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!("  ],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

fn run_audit(argv: &[String]) -> ExitCode {
    let root = workspace_root(argv);
    let json = argv.iter().any(|a| a == "--json");
    let update = argv.iter().any(|a| a == "--update-baseline");
    let baseline_path = root.join("audit-baseline.json");

    let findings = match xtask::audit_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("deepod-audit: i/o error: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };

    if update {
        let refs: Vec<&xtask::audit::AuditFinding> = findings.iter().collect();
        let rendered = xtask::audit::baseline::render(&refs);
        // The gate's own baseline is not a crash-safe artifact; a torn
        // write is repaired by re-running.
        // deepod-lint: allow(no-bare-fs-write)
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("deepod-audit: cannot write baseline: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
        println!(
            "deepod-audit: baseline updated ({} finding(s) absorbed) -> {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match xtask::audit::Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("deepod-audit: bad baseline: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let part = baseline.partition(&findings);

    if json {
        print!(
            "{}",
            xtask::audit::baseline::render_report(&part.unbaselined)
        );
    } else {
        for f in &part.unbaselined {
            println!("{f}");
        }
        for fp in &part.stale {
            eprintln!("deepod-audit: stale baseline entry (no longer produced): {fp}");
        }
    }

    if part.unbaselined.is_empty() {
        if !json {
            println!(
                "deepod-audit: clean ({} rules, {} baselined finding(s){})",
                xtask::rules::AUDIT_RULES.len(),
                part.baselined,
                if part.stale.is_empty() {
                    String::new()
                } else {
                    format!(", {} stale", part.stale.len())
                }
            );
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!(
                "deepod-audit: {} unbaselined finding(s) ({} baselined); fix them or \
                 re-run with --update-baseline after review",
                part.unbaselined.len(),
                part.baselined
            );
        }
        ExitCode::from(EXIT_FINDINGS)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("lint") => run_lint(&argv[1..]),
        Some("audit") => run_audit(&argv[1..]),
        Some("rules") => {
            for info in xtask::rules::REGISTRY {
                println!(
                    "{:<22} {:<6} {:<5} {}",
                    info.id,
                    match info.pass {
                        xtask::rules::Pass::Lint => "lint",
                        xtask::rules::Pass::Audit => "audit",
                    },
                    info.severity.as_str(),
                    info.description
                );
            }
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command '{other}'\n{USAGE}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}

//! `float-eq`: exact `==`/`!=` against a float literal. Use a tolerance,
//! an ordering comparison, or an explicit allow for intentional
//! exact-zero tests.

use super::{FileCtx, Finding};
use crate::lexer::TokKind;

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_punct("==") || t.is_punct("!=") {
            let float_adjacent = (i > 0 && toks[i - 1].kind == TokKind::Float)
                || toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Float);
            if float_adjacent {
                ctx.push(
                    out,
                    "float-eq",
                    t.line,
                    format!(
                        "exact float comparison `{}`; use a tolerance, an ordering \
                         comparison, or an explicit allow for intentional exact-zero tests",
                        t.text
                    ),
                );
            }
        }
    }
}

//! `parallel-coverage`: every `pub fn` of `deepod_tensor::parallel` must
//! have a regression test whose name contains both the function name and
//! `serial`, pinning the `threads = 1 == serial` contract by name.

use super::Finding;
use crate::lexer::Lexed;
use std::collections::BTreeSet;

pub fn check_parallel_coverage(
    parallel_rel_path: &str,
    pub_fns: &[(String, u32)],
    test_names: &BTreeSet<String>,
    allows: &Lexed,
    out: &mut Vec<Finding>,
) {
    for (name, line) in pub_fns {
        let covered = test_names
            .iter()
            .any(|t| t.contains(name.as_str()) && t.contains("serial"));
        let allowed = allows
            .allows
            .get(line)
            .is_some_and(|s| s.contains("parallel-coverage"));
        if !covered && !allowed {
            out.push(Finding {
                rule: "parallel-coverage",
                path: parallel_rel_path.to_string(),
                line: *line,
                msg: format!(
                    "pub fn `{name}` has no `*{name}*serial*` regression test pinning \
                     the threads=1 == serial contract"
                ),
            });
        }
    }
}

//! `nondeterminism`: wall clocks and OS-entropy RNGs are banned from the
//! numeric crates — model code must be a pure function of
//! (input, seed, thread count) or the bit-stable loss-curve contract
//! from DESIGN.md §6 silently breaks.

use super::{FileCtx, Finding, DETERMINISTIC_CRATES};

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        let hit = if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            Some("Instant::now")
        } else if t.is_ident("SystemTime") {
            Some("SystemTime")
        } else if t.is_ident("thread_rng") {
            Some("thread_rng")
        } else if t.is_ident("from_entropy") {
            Some("from_entropy")
        } else {
            None
        };
        if let Some(what) = hit {
            ctx.push(
                out,
                "nondeterminism",
                t.line,
                format!(
                    "`{what}` in deterministic crate `{}`: model code must be a pure \
                     function of (input, seed, thread count)",
                    ctx.crate_name
                ),
            );
        }
    }
}

//! `no-unbounded-cache`: an insertion into a cache must be visibly
//! bounded. A cache that only ever grows is a slow memory leak with a
//! good reputation — every insert is locally correct, and the process
//! dies weeks later. This rule fires on a method-call `.insert(` whose
//! receiver chain names a cache (an identifier containing `cache` or
//! `lru`, or any insert in a `*cache*.rs` file) when the surrounding
//! file shows **no bounding evidence**: a capacity field/parameter
//! (`with_capacity`, the growth hint, does not count), an `evict*`
//! identifier, or an ordered-eviction call (`pop_first` / `pop_lru` /
//! `truncate`). Inserts that delegate to a type that enforces its own
//! bound carry a justifying `// deepod-lint: allow(no-unbounded-cache)`.

use super::{FileCtx, Finding};
use crate::lexer::TokKind;

/// Evidence that this file bounds what it caches.
fn is_bounding_ident(text: &str) -> bool {
    (text.contains("capacity") && text != "with_capacity")
        || text.contains("evict")
        || text == "pop_first"
        || text == "pop_lru"
        || text == "truncate"
}

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    if toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && is_bounding_ident(&t.text))
    {
        return;
    }
    // A file *named* for caching is a cache wholesale: every insert in it
    // is cache growth, whatever the local receiver is called.
    let file_is_cache = ctx
        .rel_path
        .rsplit('/')
        .next()
        .is_some_and(|f| f.contains("cache"));
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if !(t.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_ident("insert"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("(")))
        {
            continue;
        }
        // Walk the receiver chain backwards (`self.inner.lru_map` →
        // `lru_map`, `inner`, `self`) looking for a cache-ish name.
        let mut cachey = file_is_cache;
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.kind == TokKind::Ident {
                let lower = p.text.to_ascii_lowercase();
                if lower.contains("cache") || lower.contains("lru") {
                    cachey = true;
                }
            } else if !p.is_punct(".") {
                break;
            }
            j -= 1;
        }
        if cachey {
            ctx.push(
                out,
                "no-unbounded-cache",
                t.line,
                "cache insertion with no bounding evidence in this file (a \
                 capacity bound, an evict* identifier, or pop_first/pop_lru/\
                 truncate); an unbounded cache is a slow memory leak — bound \
                 it, or allow-annotate the insert if the callee enforces its \
                 own bound"
                    .to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_file, FileCtx};
    use crate::lexer::lex;

    fn lint_as(rel_path: &str, src: &str) -> Vec<super::Finding> {
        let lexed = lex(src);
        let ctx = FileCtx::new(rel_path, "serve", &lexed, false, false);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        out.retain(|f| f.rule == "no-unbounded-cache");
        out
    }

    #[test]
    fn fires_on_cache_named_receivers_without_a_bound() {
        let f = lint_as(
            "crates/serve/src/engine.rs",
            "fn a() { self.cache.insert(k, v); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        let f = lint_as(
            "crates/serve/src/engine.rs",
            "fn a() { lru_map.insert(k, v); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn fires_on_any_insert_in_a_cache_file() {
        let f = lint_as(
            "crates/serve/src/cache.rs",
            "fn a() { self.map.insert(k, v); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn bounding_evidence_anywhere_in_the_file_silences() {
        let src = "fn a(&mut self) {\n\
                   while self.map.len() >= self.capacity { self.map.pop_first(); }\n\
                   self.cache.insert(k, v);\n}\n";
        assert!(lint_as("crates/serve/src/cache.rs", src).is_empty());
        let src = "fn evict_oldest(&mut self) {}\nfn a() { self.cache.insert(k, v); }\n";
        assert!(lint_as("crates/serve/src/engine.rs", src).is_empty());
    }

    #[test]
    fn with_capacity_alone_is_not_a_bound() {
        let src = "fn a() { let mut v = Vec::with_capacity(4); cache.insert(k, v); }";
        assert_eq!(lint_as("crates/serve/src/engine.rs", src).len(), 1);
    }

    #[test]
    fn non_cache_receivers_tests_and_allows_are_exempt() {
        assert!(lint_as(
            "crates/serve/src/engine.rs",
            "fn a() { self.index.insert(k, v); }"
        )
        .is_empty());
        assert!(lint_as(
            "crates/serve/src/engine.rs",
            "#[test]\nfn t() { cache.insert(k, v); }\n"
        )
        .is_empty());
        assert!(lint_as(
            "crates/serve/src/engine.rs",
            "fn a() { cache.insert(k, v); } // deepod-lint: allow(no-unbounded-cache)"
        )
        .is_empty());
    }
}

//! The `deepod-lint` rule set and the shared rule registry.
//!
//! Each lint rule is a token-level pattern over a [`Lexed`] file plus a
//! *test mask* (which tokens live inside `#[cfg(test)]` modules, `#[test]`
//! functions, `tests/` or `benches/` trees). Rules report [`Finding`]s;
//! a trailing `// deepod-lint: allow(<rule>)` comment on the same line
//! (or a standalone comment on the line above) suppresses a finding.
//! Every rule lives in its own module below; [`REGISTRY`] is the single
//! table of (id, pass, default severity, description) shared by the
//! `lint` and `audit` output paths.
//!
//! Lint rules (see DESIGN.md §7 for rationale and how to add one):
//!
//! | rule                | what it denies                                       |
//! |---------------------|------------------------------------------------------|
//! | `unwrap`            | `.unwrap()` in non-test library code                 |
//! | `expect`            | `.expect(..)` in non-test library code               |
//! | `panic`             | `panic!` / `unimplemented!` / `todo!` in non-test    |
//! | `nondeterminism`    | `Instant::now` / `SystemTime` / `thread_rng` /       |
//! |                     | `from_entropy` in the numeric crates                 |
//! | `float-eq`          | `==` / `!=` against a float literal in non-test code |
//! | `truncating-cast`   | float-producing expression cast straight to an       |
//! |                     | integer index type                                   |
//! | `parallel-coverage` | a `pub fn` in `deepod_tensor::parallel` without a    |
//! |                     | named `*serial*` regression test                     |
//! | `no-bare-fs-write`  | `fs::write` / `File::create` outside `io_guard.rs`   |
//! |                     | (bypasses the atomic-rename + checksum write path)   |
//! | `no-bare-eprintln`  | `eprintln!` / `eprint!` in library code (bypasses    |
//! |                     | the `deepod_core::obs` level gate + single writer)   |
//! | `no-env-read-in-lib`| `env::var` / `var_os` / `vars` in library code       |
//! |                     | (configuration flows through `RuntimeConfig`,        |
//! |                     | resolved once in the binary)                         |
//! | `no-unchecked-simd` | a `_mm*` intrinsic call site outside a               |
//! |                     | `#[target_feature]` fn, or in a file with no         |
//! |                     | `is_x86_feature_detected!` runtime dispatcher        |
//! | `no-unsupervised-spawn` | a bare `thread::spawn` / `.spawn(` in            |
//! |                     | `deepod-serve` outside `supervisor.rs` (panics would |
//! |                     | strand queued requests behind a dead shard)          |
//! | `no-unbounded-cache`| a cache-named `.insert(` in a file with no capacity  |
//! |                     | bound or eviction in sight (a cache that only grows  |
//! |                     | is a slow memory leak)                               |
//! | `no-deprecated-inference` | a `fn estimate` / `estimate_encoded` /         |
//! |                     | `estimate_orders` declaration in the inference       |
//! |                     | crates (the deleted single-request shims must not    |
//! |                     | reappear; `estimate_batch` is the one entry point)   |
//!
//! The workspace-level *audit* rules (call-graph analyses, DESIGN.md §13)
//! live under `crate::audit` but register here so both passes report
//! through one vocabulary.

mod deprecated_inference;
mod env_read;
mod eprintln_rule;
mod float_eq;
mod fs_write;
pub(crate) mod masks;
mod nondeterminism;
mod panic_rules;
mod parallel_coverage;
mod simd;
mod spawn;
mod truncating_cast;
mod unbounded_cache;

pub use parallel_coverage::check_parallel_coverage;

use crate::lexer::Lexed;
use std::collections::BTreeSet;
use std::fmt;

/// Crates whose library code must be free of ambient nondeterminism: the
/// model forward/backward stack and everything it computes with. A wall
/// clock or OS-entropy RNG anywhere here silently breaks the bit-stable
/// loss-curve contract from DESIGN.md §6.
pub const DETERMINISTIC_CRATES: [&str; 4] = ["core", "nn", "tensor", "graphembed"];

/// All lint rule names, in report order.
pub const ALL_RULES: [&str; 14] = [
    "unwrap",
    "expect",
    "panic",
    "nondeterminism",
    "float-eq",
    "truncating-cast",
    "parallel-coverage",
    "no-bare-fs-write",
    "no-bare-eprintln",
    "no-env-read-in-lib",
    "no-unchecked-simd",
    "no-unsupervised-spawn",
    "no-unbounded-cache",
    "no-deprecated-inference",
];

/// All audit rule names, in report order (analyses live in `crate::audit`).
pub const AUDIT_RULES: [&str; 6] = [
    "no-panic",
    "unsafe-safety",
    "simd-dispatch",
    "lock-order",
    "lock-across-send",
    "metrics-consistency",
];

/// Which pass a rule belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// Per-file token-level rule (`xtask lint`).
    Lint,
    /// Workspace call-graph analysis (`xtask audit`).
    Audit,
}

/// Default severity of a rule's findings. Both passes currently gate on
/// `deny` findings; `warn` is report-only metadata surfaced in output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Fails the gate (exit code 1).
    Deny,
    /// Reported but does not fail the gate.
    Warn,
}

impl Severity {
    /// Lower-case name used in human and JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One row of the rule registry.
pub struct RuleInfo {
    /// Stable rule id (`unwrap`, `no-panic`, ...).
    pub id: &'static str,
    /// Which pass reports it.
    pub pass: Pass,
    /// Default severity.
    pub severity: Severity,
    /// One-line description for `xtask rules` and JSON output.
    pub description: &'static str,
}

/// The single registry shared by `lint` and `audit`: every rule either
/// pass can report, with its default severity and description.
pub const REGISTRY: [RuleInfo; 20] = [
    RuleInfo {
        id: "unwrap",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "`.unwrap()` in non-test library code",
    },
    RuleInfo {
        id: "expect",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "`.expect(..)` in non-test library code",
    },
    RuleInfo {
        id: "panic",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "`panic!` / `unimplemented!` / `todo!` in non-test library code",
    },
    RuleInfo {
        id: "nondeterminism",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "wall clock or OS-entropy RNG in the deterministic numeric crates",
    },
    RuleInfo {
        id: "float-eq",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "exact `==`/`!=` against a float literal",
    },
    RuleInfo {
        id: "truncating-cast",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "float-producing expression cast straight to an integer type",
    },
    RuleInfo {
        id: "parallel-coverage",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "pub fn in deepod_tensor::parallel without a *serial* regression test",
    },
    RuleInfo {
        id: "no-bare-fs-write",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "fs::write / File::create outside the crash-safe io_guard path",
    },
    RuleInfo {
        id: "no-bare-eprintln",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "eprintln!/eprint! in library code bypassing the obs layer",
    },
    RuleInfo {
        id: "no-env-read-in-lib",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "environment read in library code instead of RuntimeConfig",
    },
    RuleInfo {
        id: "no-unchecked-simd",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "_mm* intrinsic outside #[target_feature] or without runtime detection",
    },
    RuleInfo {
        id: "no-unsupervised-spawn",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "bare thread spawn in deepod-serve outside the supervisor module",
    },
    RuleInfo {
        id: "no-unbounded-cache",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "cache-named insert in a file with no capacity bound or eviction evidence",
    },
    RuleInfo {
        id: "no-deprecated-inference",
        pass: Pass::Lint,
        severity: Severity::Deny,
        description: "deprecated single-request inference shim declared again \
                      (estimate_batch is the sole entry point)",
    },
    RuleInfo {
        id: "no-panic",
        pass: Pass::Audit,
        severity: Severity::Deny,
        description: "panic source (unwrap/expect/panic!/indexing/assert!) reachable from a \
                      hot-path root",
    },
    RuleInfo {
        id: "unsafe-safety",
        pass: Pass::Audit,
        severity: Severity::Deny,
        description: "unsafe block or fn without a `// SAFETY:` justification comment",
    },
    RuleInfo {
        id: "simd-dispatch",
        pass: Pass::Audit,
        severity: Severity::Deny,
        description: "#[target_feature] fn reached from a caller that never consults the \
                      runtime-detection dispatcher",
    },
    RuleInfo {
        id: "lock-order",
        pass: Pass::Audit,
        severity: Severity::Deny,
        description: "two named locks acquired in both orders on different paths (deadlock)",
    },
    RuleInfo {
        id: "lock-across-send",
        pass: Pass::Audit,
        severity: Severity::Deny,
        description: "lock guard held across a channel send or queue submit",
    },
    RuleInfo {
        id: "metrics-consistency",
        pass: Pass::Audit,
        severity: Severity::Deny,
        description: "metric name emitted somewhere but absent from the eager registration set",
    },
];

/// Looks up a rule's registry row by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    REGISTRY.iter().find(|r| r.id == id)
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// A lexed file with the metadata the rules need.
pub struct FileCtx<'a> {
    /// Workspace-relative path (display only).
    pub rel_path: &'a str,
    /// Crate directory name (`tensor`, `core`, ...).
    pub crate_name: &'a str,
    /// Token stream + allow directives.
    pub lexed: &'a Lexed,
    /// `test_mask[i]` — token `i` is inside test-only code.
    pub test_mask: Vec<bool>,
    /// Binary entry point (`src/bin/*`, `src/main.rs`): exempt from the
    /// panic-safety rules (a CLI/bench top level may crash with a message)
    /// but not from determinism or numeric-hygiene rules.
    pub is_bin: bool,
}

impl<'a> FileCtx<'a> {
    /// Builds the context, computing the test mask.
    pub fn new(
        rel_path: &'a str,
        crate_name: &'a str,
        lexed: &'a Lexed,
        whole_file_is_test: bool,
        is_bin: bool,
    ) -> Self {
        let test_mask = if whole_file_is_test {
            vec![true; lexed.tokens.len()]
        } else {
            masks::compute_test_mask(&lexed.tokens)
        };
        FileCtx {
            rel_path,
            crate_name,
            lexed,
            test_mask,
            is_bin,
        }
    }

    fn allowed(&self, rule: &str, line: u32) -> bool {
        self.lexed
            .allows
            .get(&line)
            .is_some_and(|s| s.contains(rule))
    }

    fn push(&self, out: &mut Vec<Finding>, rule: &'static str, line: u32, msg: String) {
        if !self.allowed(rule, line) {
            out.push(Finding {
                rule,
                path: self.rel_path.to_string(),
                line,
                msg,
            });
        }
    }
}

/// Per-file derived state shared by the rules that need more than the
/// test mask (computed once in [`check_file`]).
pub(crate) struct FileState {
    /// `target_feature_mask[i]` — token `i` is inside a
    /// `#[target_feature]` item.
    pub target_feature_mask: Vec<bool>,
    /// `use_mask[i]` — token `i` is inside a `use` item.
    pub use_mask: Vec<bool>,
    /// The file contains an `is_x86_feature_detected!` call: somebody
    /// still has to check the CPU before calling a `#[target_feature]` fn.
    pub has_feature_detect: bool,
}

/// Runs every per-file rule, appending findings to `out`.
pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    let state = FileState {
        target_feature_mask: masks::compute_target_feature_mask(toks),
        use_mask: masks::compute_use_mask(toks),
        has_feature_detect: toks.iter().any(|t| t.is_ident("is_x86_feature_detected")),
    };
    panic_rules::check(ctx, out);
    eprintln_rule::check(ctx, out);
    env_read::check(ctx, out);
    nondeterminism::check(ctx, out);
    float_eq::check(ctx, out);
    fs_write::check(ctx, out);
    simd::check(ctx, &state, out);
    spawn::check(ctx, out);
    truncating_cast::check(ctx, out);
    unbounded_cache::check(ctx, out);
    deprecated_inference::check(ctx, out);
}

/// Collects the names of `#[test]` functions (and any `fn` defined inside
/// test-masked code) from one file.
pub fn collect_test_fn_names(ctx: &FileCtx<'_>, into: &mut BTreeSet<String>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i]
            && toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == crate::lexer::TokKind::Ident)
        {
            into.insert(toks[i + 1].text.clone());
        }
    }
}

/// Collects `pub fn` names declared in *non-test* code of one file,
/// with the line each was declared on.
pub fn collect_pub_fns(ctx: &FileCtx<'_>) -> Vec<(String, u32)> {
    let toks = &ctx.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if ctx.test_mask[i] || !toks[i].is_ident("pub") {
            continue;
        }
        // `pub fn name` or `pub(crate) fn name` — skip an optional
        // parenthesized visibility scope.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.is_punct("(")) {
            while j < toks.len() && !toks[j].is_punct(")") {
                j += 1;
            }
            j += 1;
        }
        if toks.get(j).is_some_and(|n| n.is_ident("fn"))
            && toks
                .get(j + 1)
                .is_some_and(|n| n.kind == crate::lexer::TokKind::Ident)
        {
            out.push((toks[j + 1].text.clone(), toks[j + 1].line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lint_lib_src(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ctx = FileCtx::new("mem.rs", "tensor", &lexed, false, false);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        out
    }

    #[test]
    fn registry_covers_every_rule_exactly_once() {
        for id in ALL_RULES {
            let info = rule_info(id).expect(id);
            assert_eq!(info.pass, Pass::Lint);
        }
        for id in AUDIT_RULES {
            let info = rule_info(id).expect(id);
            assert_eq!(info.pass, Pass::Audit);
        }
        assert_eq!(REGISTRY.len(), ALL_RULES.len() + AUDIT_RULES.len());
        let mut seen = BTreeSet::new();
        for r in &REGISTRY {
            assert!(seen.insert(r.id), "duplicate registry id {}", r.id);
            assert!(!r.description.is_empty());
        }
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n";
        let f = lint_lib_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nmod m { fn b() { y.unwrap(); } }\n";
        assert_eq!(lint_lib_src(src).len(), 1);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn t() { y.unwrap(); }\nfn lib() { z.unwrap(); }\n";
        let f = lint_lib_src(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn allow_directive_suppresses() {
        let src = "fn a() { x.unwrap(); } // deepod-lint: allow(unwrap)\n";
        assert!(lint_lib_src(src).is_empty());
    }

    #[test]
    fn truncating_cast_variants() {
        assert_eq!(
            lint_lib_src("fn a() -> usize { x.floor() as usize }").len(),
            1
        );
        assert_eq!(lint_lib_src("fn a() -> usize { 2.5 as usize }").len(), 1);
        assert_eq!(lint_lib_src("fn a() -> u32 { x as f32 as u32 }").len(), 1);
        assert!(lint_lib_src("fn a() -> usize { x.len() as usize }").is_empty());
        assert!(lint_lib_src("fn a() -> f64 { x.floor() as f64 }").is_empty());
    }

    #[test]
    fn float_eq_flags_literal_comparisons_only() {
        assert_eq!(lint_lib_src("fn a() -> bool { x == 0.0 }").len(), 1);
        assert_eq!(lint_lib_src("fn a() -> bool { 1.5 != y }").len(), 1);
        assert!(lint_lib_src("fn a() -> bool { x == y }").is_empty());
        assert!(lint_lib_src("fn a() -> bool { n == 0 }").is_empty());
    }

    #[test]
    fn nondeterminism_scoped_to_crate_list() {
        let src = "fn a() { let t = Instant::now(); }";
        let lexed = lex(src);
        let ctx = FileCtx::new("mem.rs", "core", &lexed, false, false);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert_eq!(out.len(), 1);

        let ctx = FileCtx::new("mem.rs", "eval", &lexed, false, false);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.is_empty(), "eval may use wall clocks");
    }

    #[test]
    fn parallel_coverage_names() {
        let lexed = lex("pub fn map_ranges() {}\npub(crate) fn tree_reduce() {}\n");
        let ctx = FileCtx::new("parallel.rs", "tensor", &lexed, false, false);
        let fns = collect_pub_fns(&ctx);
        assert_eq!(fns.len(), 2);
        let mut tests = BTreeSet::new();
        tests.insert("map_ranges_threads1_matches_serial".to_string());
        let mut out = Vec::new();
        check_parallel_coverage("parallel.rs", &fns, &tests, &lexed, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("tree_reduce"));
    }

    #[test]
    fn bare_fs_write_fires_outside_io_guard() {
        let src = "fn a() { std::fs::write(p, b)?; }";
        assert_eq!(lint_lib_src(src).len(), 1);
        assert_eq!(lint_lib_src(src)[0].rule, "no-bare-fs-write");
        let src = "fn a() { let f = File::create(p)?; }";
        assert_eq!(lint_lib_src(src)[0].rule, "no-bare-fs-write");
        // Reads and directory creation stay legal.
        assert!(lint_lib_src("fn a() { fs::read_to_string(p)?; }").is_empty());
        assert!(lint_lib_src("fn a() { fs::create_dir_all(p)?; }").is_empty());
    }

    #[test]
    fn bare_fs_write_exempts_io_guard_and_tests() {
        let src = "fn a() { std::fs::write(p, b)?; }";
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/core/src/io_guard.rs", "core", &lexed, false, false);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.is_empty(), "io_guard.rs may write directly: {out:?}");

        let src = "#[test]\nfn t() { std::fs::write(p, b).unwrap(); }\n";
        assert!(lint_lib_src(src).is_empty(), "test code may seed files");
    }

    #[test]
    fn bare_fs_write_fires_in_bins_too() {
        let src = "fn main() { std::fs::write(p, b).ok(); }";
        let lexed = lex(src);
        let ctx = FileCtx::new("crates/cli/src/main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(
            out.iter().any(|f| f.rule == "no-bare-fs-write"),
            "bins are not exempt: {out:?}"
        );
    }

    #[test]
    fn bare_eprintln_fires_in_library_code_only() {
        let f = lint_lib_src("fn a() { eprintln!(\"oops\"); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-bare-eprintln");
        assert_eq!(
            lint_lib_src("fn a() { eprint!(\"x\"); }")[0].rule,
            "no-bare-eprintln"
        );
        // println! (stdout) and an identifier without `!` stay legal.
        assert!(lint_lib_src("fn a() { println!(\"ok\"); }").is_empty());
        assert!(lint_lib_src("fn a() { let eprintln = 1; }").is_empty());
        // Allow directive and test code are exempt.
        assert!(lint_lib_src(
            "fn a() { eprintln!(\"x\"); } // deepod-lint: allow(no-bare-eprintln)"
        )
        .is_empty());
        assert!(lint_lib_src("#[test]\nfn t() { eprintln!(\"dbg\"); }\n").is_empty());
        // Bins keep their top-level stderr messages.
        let lexed = lex("fn main() { eprintln!(\"error: x\"); }");
        let ctx = FileCtx::new("crates/cli/src/main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.is_empty(), "bins are exempt: {out:?}");
    }

    #[test]
    fn env_read_fires_in_library_code_only() {
        let f = lint_lib_src("fn a() { let v = std::env::var(\"X\"); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-env-read-in-lib");
        assert_eq!(
            lint_lib_src("fn a() { for (k, v) in std::env::vars() {} }")[0].rule,
            "no-env-read-in-lib"
        );
        assert_eq!(
            lint_lib_src("fn a() { env::var_os(\"X\"); }")[0].rule,
            "no-env-read-in-lib"
        );
        // `env::args` (argv, not ambient config) and the compile-time
        // `env!` macro stay legal, as do tests and allow directives.
        assert!(lint_lib_src("fn a() { std::env::args().nth(1); }").is_empty());
        assert!(lint_lib_src("fn a() { let v = env!(\"CARGO_PKG_NAME\"); }").is_empty());
        assert!(lint_lib_src("#[test]\nfn t() { std::env::var(\"X\").ok(); }\n").is_empty());
        assert!(lint_lib_src(
            "fn a() { std::env::var(\"X\").ok(); } // deepod-lint: allow(no-env-read-in-lib)"
        )
        .is_empty());
        // Binaries resolve the environment themselves: exempt.
        let lexed = lex("fn main() { std::env::var(\"DEEPOD_LOG\").ok(); }");
        let ctx = FileCtx::new("crates/cli/src/main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.is_empty(), "bins may read env: {out:?}");
    }

    #[test]
    fn unchecked_simd_requires_target_feature_and_dispatch() {
        // Naked intrinsic call: undefined behavior on older CPUs.
        let f = lint_lib_src("fn a() { unsafe { _mm256_add_ps(x, y) }; }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-unchecked-simd");

        // The blessed shape: imports, a runtime dispatcher, and the
        // intrinsic inside a #[target_feature] fn.
        let good = "use core::arch::x86_64::_mm256_add_ps;\n\
                    fn d() -> bool { is_x86_feature_detected!(\"avx\") }\n\
                    #[target_feature(enable = \"avx\")]\n\
                    unsafe fn k() { _mm256_add_ps(x, y); }\n";
        assert!(lint_lib_src(good).is_empty(), "{:?}", lint_lib_src(good));

        // #[target_feature] without any runtime detection in the file
        // still fires: nothing proves the CPU has the feature.
        let undetected = "#[target_feature(enable = \"avx\")]\n\
                          unsafe fn k() { _mm256_add_ps(x, y); }\n";
        assert_eq!(lint_lib_src(undetected).len(), 1);

        // `__m256` is a *type*, not an intrinsic call; test code and
        // allow directives are exempt like every other rule.
        assert!(lint_lib_src("fn a(x: __m256) {}").is_empty());
        assert!(lint_lib_src("#[test]\nfn t() { unsafe { _mm256_add_ps(x, y) }; }\n").is_empty());
        assert!(lint_lib_src(
            "fn a() { unsafe { _mm256_add_ps(x, y) }; } // deepod-lint: allow(no-unchecked-simd)"
        )
        .is_empty());

        // Bins are NOT exempt.
        let lexed = lex("fn main() { unsafe { _mm256_add_ps(x, y) }; }");
        let ctx = FileCtx::new("crates/cli/src/main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.iter().any(|f| f.rule == "no-unchecked-simd"), "{out:?}");
    }

    #[test]
    fn unsupervised_spawn_fires_in_serve_outside_supervisor() {
        let lint_serve = |rel_path: &str, src: &str| {
            let lexed = lex(src);
            let ctx = FileCtx::new(rel_path, "serve", &lexed, false, false);
            let mut out = Vec::new();
            check_file(&ctx, &mut out);
            out.retain(|f| f.rule == "no-unsupervised-spawn");
            out
        };
        // Bare path spawn and builder-style `.spawn(` both fire.
        let f = lint_serve(
            "crates/serve/src/engine.rs",
            "fn a() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(
            lint_serve(
                "crates/serve/src/engine.rs",
                "fn a() { thread::Builder::new().spawn(|| {}); }",
            )
            .len(),
            1
        );
        // The supervisor module is the blessed spawn site.
        assert!(lint_serve(
            "crates/serve/src/supervisor.rs",
            "fn a() { std::thread::spawn(|| {}); }",
        )
        .is_empty());
        // Other crates, test code, and allow directives are exempt.
        let lexed = lex("fn a() { std::thread::spawn(|| {}); }");
        let ctx = FileCtx::new(
            "crates/tensor/src/parallel.rs",
            "tensor",
            &lexed,
            false,
            false,
        );
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(
            out.iter().all(|f| f.rule != "no-unsupervised-spawn"),
            "{out:?}"
        );
        assert!(lint_serve(
            "crates/serve/src/engine.rs",
            "#[test]\nfn t() { std::thread::spawn(|| {}); }\n",
        )
        .is_empty());
        assert!(lint_serve(
            "crates/serve/src/engine.rs",
            "fn a() { std::thread::spawn(|| {}); } // deepod-lint: allow(no-unsupervised-spawn)",
        )
        .is_empty());
    }

    #[test]
    fn deprecated_inference_shims_stay_deleted() {
        let lint_in = |crate_name: &str, rel_path: &str, src: &str| {
            let lexed = lex(src);
            let ctx = FileCtx::new(rel_path, crate_name, &lexed, false, false);
            let mut out = Vec::new();
            check_file(&ctx, &mut out);
            out.retain(|f| f.rule == "no-deprecated-inference");
            out
        };
        // Each deleted shim name fires when declared in an inference crate.
        for shim in ["estimate", "estimate_encoded", "estimate_orders"] {
            let f = lint_in(
                "core",
                "crates/core/src/model.rs",
                &format!("impl DeepOdModel {{ pub fn {shim}(&mut self) {{}} }}"),
            );
            assert_eq!(f.len(), 1, "{shim}: {f:?}");
        }
        assert_eq!(
            lint_in(
                "serve",
                "crates/serve/src/engine.rs",
                "fn estimate(x: f32) -> f32 { x }",
            )
            .len(),
            1
        );
        // The blessed batched entry point, call sites (not declarations),
        // and out-of-scope crates stay legal.
        assert!(lint_in(
            "core",
            "crates/core/src/model.rs",
            "pub fn estimate_batch(&self) {}",
        )
        .is_empty());
        assert!(lint_in(
            "core",
            "crates/core/src/model.rs",
            "fn a() { let y = estimate(x); }",
        )
        .is_empty());
        assert!(lint_in(
            "baselines",
            "crates/baselines/src/lib.rs",
            "pub fn estimate(&self) -> f32 { 0.0 }",
        )
        .is_empty());
        // Tests and allow directives are exempt like every other rule.
        assert!(lint_in(
            "core",
            "crates/core/src/model.rs",
            "#[test]\nfn t() { fn estimate() {} }\n",
        )
        .is_empty());
        assert!(lint_in(
            "core",
            "crates/core/src/model.rs",
            "fn estimate() {} // deepod-lint: allow(no-deprecated-inference)",
        )
        .is_empty());
    }

    #[test]
    fn bins_skip_panic_rules_but_not_hygiene() {
        let src = "fn main() { x.unwrap(); let b = y == 0.5; }";
        let lexed = lex(src);
        let ctx = FileCtx::new("main.rs", "cli", &lexed, false, true);
        let mut out = Vec::new();
        check_file(&ctx, &mut out);
        assert!(out.iter().all(|f| f.rule != "unwrap"), "{out:?}");
        assert!(out.iter().any(|f| f.rule == "float-eq"), "{out:?}");
    }
}

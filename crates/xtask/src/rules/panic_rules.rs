//! Panic-safety rules: `unwrap`, `expect`, `panic` — library code must
//! return typed errors instead of crashing (DESIGN.md §7). Binary entry
//! points are exempt: a CLI top level may crash with a message.

use super::{FileCtx, Finding};

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_bin {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        let line = t.line;
        if t.is_ident("unwrap")
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            ctx.push(
                out,
                "unwrap",
                line,
                "`.unwrap()` in library code; return a typed error or restructure \
                 so the invariant is explicit"
                    .into(),
            );
        }
        if t.is_ident("expect")
            && i > 0
            && toks[i - 1].is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            ctx.push(
                out,
                "expect",
                line,
                "`.expect(..)` in library code; return a typed error instead".into(),
            );
        }
        if (t.is_ident("panic") || t.is_ident("unimplemented") || t.is_ident("todo"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            ctx.push(
                out,
                "panic",
                line,
                format!(
                    "`{}!` in library code; return a typed error instead",
                    t.text
                ),
            );
        }
    }
}

//! Token-mask helpers shared by the lint rules and the audit parser.
//!
//! All three masks are simple brace-depth scans over the token stream:
//! no real parsing, but enough structure to know "is this token inside a
//! `#[cfg(test)]` item", "inside a `#[target_feature]` fn", or "inside a
//! `use` item".

use crate::lexer::{TokKind, Token};

/// Marks tokens that live inside test-only code: the body of any item
/// annotated `#[test]` (any attribute path ending in `test`, so
/// `#[tokio::test]`-style wrappers count) or `#[cfg(test)]` /
/// `#[cfg_attr(..., test)]`. `#[cfg(not(test))]` does *not* count.
pub(crate) fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    let mut test_open_depths: Vec<i32> = Vec::new();
    let mut pending_test = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            // Scan the attribute to its closing bracket.
            let mut j = i + 2;
            let mut bdepth = 1;
            let mut idents: Vec<&str> = Vec::new();
            let mut path_idents: Vec<&str> = Vec::new();
            let mut in_args = false;
            while j < tokens.len() && bdepth > 0 {
                let a = &tokens[j];
                if a.is_punct("[") {
                    bdepth += 1;
                } else if a.is_punct("]") {
                    bdepth -= 1;
                } else if a.is_punct("(") {
                    in_args = true;
                } else if a.kind == TokKind::Ident {
                    idents.push(&a.text);
                    if !in_args {
                        path_idents.push(&a.text);
                    }
                }
                j += 1;
            }
            let is_cfg_like = path_idents
                .first()
                .is_some_and(|f| *f == "cfg" || *f == "cfg_attr");
            let mentions_test = idents.contains(&"test");
            let negated = idents.contains(&"not");
            let is_test_attr = (is_cfg_like && mentions_test && !negated)
                || (!is_cfg_like && path_idents.last().is_some_and(|l| *l == "test"));
            if is_test_attr {
                pending_test = true;
            }
            for m in mask.iter_mut().take(j).skip(i) {
                *m = *m || !test_open_depths.is_empty();
            }
            i = j;
            continue;
        }
        if t.is_punct("{") {
            depth += 1;
            if pending_test {
                test_open_depths.push(depth);
                pending_test = false;
            }
        }
        mask[i] = !test_open_depths.is_empty() || pending_test;
        if t.is_punct("}") {
            if test_open_depths.last() == Some(&depth) {
                test_open_depths.pop();
            }
            depth -= 1;
        } else if t.is_punct(";") && depth == test_open_depths.last().copied().unwrap_or(0) {
            // `#[cfg(test)] use ...;` — the item ends before any brace.
            pending_test = false;
        }
        i += 1;
    }
    mask
}

/// Marks tokens that live inside a fn (or other item) annotated with
/// `#[target_feature(..)]` — the only place a raw `_mm*` intrinsic call
/// is sound, because the attribute is what lets the compiler emit the
/// instruction while the runtime dispatcher guarantees the CPU has it.
pub(crate) fn compute_target_feature_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    let mut open_depths: Vec<i32> = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            let mut j = i + 2;
            let mut bdepth = 1;
            let mut is_tf = false;
            while j < tokens.len() && bdepth > 0 {
                let a = &tokens[j];
                if a.is_punct("[") {
                    bdepth += 1;
                } else if a.is_punct("]") {
                    bdepth -= 1;
                } else if a.is_ident("target_feature") {
                    is_tf = true;
                }
                j += 1;
            }
            if is_tf {
                pending = true;
            }
            for m in mask.iter_mut().take(j).skip(i) {
                *m = *m || !open_depths.is_empty();
            }
            i = j;
            continue;
        }
        if t.is_punct("{") {
            depth += 1;
            if pending {
                open_depths.push(depth);
                pending = false;
            }
        }
        mask[i] = !open_depths.is_empty() || pending;
        if t.is_punct("}") {
            if open_depths.last() == Some(&depth) {
                open_depths.pop();
            }
            depth -= 1;
        }
        i += 1;
    }
    mask
}

/// Marks tokens that live inside a `use` item (from the `use` keyword to
/// the closing `;`), so imported *names* don't count as call sites.
pub(crate) fn compute_use_mask(tokens: &[Token]) -> Vec<bool> {
    let mut in_use = false;
    tokens
        .iter()
        .map(|t| {
            if t.kind == TokKind::Ident && t.text == "use" {
                in_use = true;
            }
            let cur = in_use;
            if in_use && t.is_punct(";") {
                in_use = false;
            }
            cur
        })
        .collect()
}

/// Index of the `(` matching the `)` at `close`, if any.
pub(crate) fn matching_open(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        let t = &tokens[j];
        if t.is_punct(")") {
            depth += 1;
        } else if t.is_punct("(") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

//! `no-env-read-in-lib`: configuration flows through
//! `deepod_core::RuntimeConfig`, resolved once in the binary — an
//! environment read buried in a library makes behavior depend on which
//! module initialized first. (`env::args` and the `env!` macro are not
//! reads of ambient configuration and stay legal.)

use super::{FileCtx, Finding};

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_bin {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("env")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_ident("var") || n.is_ident("var_os") || n.is_ident("vars"))
        {
            ctx.push(
                out,
                "no-env-read-in-lib",
                t.line,
                format!(
                    "`env::{}` in library code; resolve configuration once at binary \
                     startup via `deepod_core::RuntimeConfig` and pass it in",
                    toks[i + 2].text
                ),
            );
        }
    }
}

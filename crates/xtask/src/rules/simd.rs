//! `no-unchecked-simd`: a `_mm*` intrinsic call site outside a
//! `#[target_feature]` fn is undefined behavior on CPUs without the
//! feature, and a `#[target_feature]` fn in a file with no
//! `is_x86_feature_detected!` dispatcher proves nothing about the CPU.
//! Applies everywhere, bins included: an illegal instruction is a crash
//! no matter which binary emits it. The `audit` pass upgrades this
//! file-local rule to call-graph precision (`simd-dispatch`).

use super::{FileCtx, FileState, Finding};
use crate::lexer::TokKind;

pub(super) fn check(ctx: &FileCtx<'_>, state: &FileState, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ctx.test_mask[i] {
            continue;
        }
        // Imported intrinsic *names* don't count as call sites.
        if t.kind == TokKind::Ident && t.text.starts_with("_mm") && !state.use_mask[i] {
            if !state.target_feature_mask[i] {
                ctx.push(
                    out,
                    "no-unchecked-simd",
                    t.line,
                    format!(
                        "intrinsic `{}` outside a `#[target_feature]` fn is undefined \
                         behavior on CPUs without the feature; move it into a \
                         `#[target_feature]` fn reached via a runtime-detection dispatcher",
                        t.text
                    ),
                );
            } else if !state.has_feature_detect {
                ctx.push(
                    out,
                    "no-unchecked-simd",
                    t.line,
                    format!(
                        "intrinsic `{}` is inside a `#[target_feature]` fn, but this file \
                         never calls `is_x86_feature_detected!`; gate the call behind \
                         runtime feature detection",
                        t.text
                    ),
                );
            }
        }
    }
}

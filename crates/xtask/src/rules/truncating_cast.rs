//! `truncating-cast`: a float-producing expression cast straight to an
//! integer index type truncates silently; route index math through a
//! checked helper (or allow on an audited one).

use super::masks::matching_open;
use super::{FileCtx, Finding};
use crate::lexer::TokKind;

const INT_TARGETS: [&str; 10] = [
    "usize", "isize", "u8", "u16", "u32", "u64", "i8", "i16", "i32", "i64",
];

/// Method names that always produce a float: a call to one of these cast
/// straight to an integer type is a truncation that deserves a bounds
/// check (or an explicit allow on an audited helper).
const FLOAT_METHODS: [&str; 10] = [
    "floor",
    "ceil",
    "round",
    "trunc",
    "sqrt",
    "powf",
    "exp",
    "ln",
    "to_degrees",
    "to_radians",
];

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("as")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && INT_TARGETS.contains(&n.text.as_str()))
            && i > 0
        {
            let prev = &toks[i - 1];
            // Flag `0.5 as usize` and `x as f32 as usize` outright.
            let float_source = prev.kind == TokKind::Float
                || (prev.kind == TokKind::Ident
                    && (prev.text == "f32" || prev.text == "f64")
                    && i >= 2
                    && toks[i - 2].is_ident("as"));
            let flagged = if float_source {
                true
            } else if prev.is_punct(")") {
                // `x.floor() as usize` — the call just before the cast
                // returns a float.
                matching_open(toks, i - 1)
                    .and_then(|open| open.checked_sub(1))
                    .is_some_and(|k| {
                        toks[k].kind == TokKind::Ident
                            && FLOAT_METHODS.contains(&toks[k].text.as_str())
                    })
            } else {
                false
            };
            if flagged {
                ctx.push(
                    out,
                    "truncating-cast",
                    t.line,
                    format!(
                        "float expression cast straight to `{}` truncates silently; route \
                         index math through a checked helper (or allow on an audited one)",
                        toks[i + 1].text
                    ),
                );
            }
        }
    }
}

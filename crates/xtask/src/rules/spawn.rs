//! `no-unsupervised-spawn`: worker threads in `deepod-serve` must be
//! created through `supervisor::spawn_supervised`, which wraps the thread
//! body in `catch_unwind`, rebuilds the model replica, requeues the
//! in-flight batch, and counts the restart. A bare `thread::spawn`
//! anywhere else in the crate is a thread whose panic silently strands
//! every queued request behind a dead shard.

use super::{FileCtx, Finding};

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    // Only the serve crate runs long-lived worker threads; other crates'
    // scoped/parallel helpers are out of scope for this rule.
    if ctx.crate_name != "serve" {
        return;
    }
    // The one module allowed to spawn: it *is* the supervision layer.
    if ctx.rel_path.ends_with("supervisor.rs") {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        // `thread::spawn(..)` / `std::thread::spawn(..)`.
        let path_spawn = t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("spawn"));
        // `Builder::new()...spawn(..)` — any method-call `.spawn(`.
        let method_spawn = t.is_punct(".")
            && toks.get(i + 1).is_some_and(|n| n.is_ident("spawn"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct("("));
        if path_spawn || method_spawn {
            ctx.push(
                out,
                "no-unsupervised-spawn",
                t.line,
                "bare thread spawn in `deepod-serve`; worker threads must go \
                 through `supervisor::spawn_supervised` so panics are caught, \
                 counted, and the shard restarted"
                    .to_string(),
            );
        }
    }
}

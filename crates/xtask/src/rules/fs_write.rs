//! `no-bare-fs-write`: `fs::write` / `File::create` outside `io_guard.rs`
//! bypasses the atomic-rename + checksum write path (DESIGN.md §8).
//! Applies to bins too: a torn CLI write is exactly the crash-safety hole
//! the guard closes.

use super::{FileCtx, Finding};

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    // The one module allowed to touch the filesystem directly: it *is*
    // the crash-safe write path this rule points at.
    if ctx.rel_path.ends_with("io_guard.rs") {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        let bare = if t.is_ident("fs")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("write"))
        {
            Some("fs::write")
        } else if t.is_ident("File")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("create"))
        {
            Some("File::create")
        } else {
            None
        };
        if let Some(what) = bare {
            ctx.push(
                out,
                "no-bare-fs-write",
                t.line,
                format!(
                    "`{what}` bypasses the crash-safe write path; use \
                     `deepod_core::io_guard` (temp file + fsync + atomic \
                     rename + checksum) instead"
                ),
            );
        }
    }
}

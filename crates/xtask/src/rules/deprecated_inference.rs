//! `no-deprecated-inference`: the single-request inference shims
//! (`estimate`, `estimate_encoded`, `estimate_orders`) were deprecated in
//! favor of `estimate_batch` — the one batched entry point every caller
//! (trainer, eval, serving engine) now goes through — and then deleted.
//! This rule keeps them deleted: a fresh `fn estimate(..)` in the
//! inference crates would quietly fork the entry-point surface again,
//! and batched/sequential bit-identity would stop being checkable from
//! one seam.

use super::{FileCtx, Finding};

/// The deleted shim names; `estimate_batch` itself is the blessed API.
const SHIMS: [&str; 3] = ["estimate", "estimate_encoded", "estimate_orders"];

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    // Only the crates that perform model inference are in scope; a
    // baseline predictor or a bench helper may name things freely.
    if ctx.crate_name != "core" && ctx.crate_name != "serve" {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1) else {
            continue;
        };
        if SHIMS.iter().any(|s| name.is_ident(s)) {
            ctx.push(
                out,
                "no-deprecated-inference",
                name.line,
                format!(
                    "`fn {}` re-introduces a deprecated single-request inference \
                     shim; all inference goes through `estimate_batch` (one \
                     batched entry point, bit-identical at every thread count)",
                    name.text
                ),
            );
        }
    }
}

//! `no-bare-eprintln`: library stderr must flow through the
//! observability layer — bare `eprintln!`s ignore the DEEPOD_LOG level
//! gate and race the single-writer lock, interleaving under threads > 1.

use super::{FileCtx, Finding};

pub(super) fn check(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_bin {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        if ctx.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if (t.is_ident("eprintln") || t.is_ident("eprint"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            ctx.push(
                out,
                "no-bare-eprintln",
                t.line,
                format!(
                    "`{}!` in library code bypasses the `deepod_core::obs` level gate \
                     and single-writer lock; emit a leveled event instead",
                    t.text
                ),
            );
        }
    }
}

//! Clean fixture for `no-unsupervised-spawn`: a file whose path ends in
//! `supervisor.rs` is the blessed spawn site — spawning here is the
//! supervision layer doing its job, not a violation.

fn spawn_supervised() {
    std::thread::spawn(|| {});
    let _ = std::thread::Builder::new().spawn(|| {});
}

//! Fixture: bare filesystem writes that bypass the crash-safe
//! `deepod_core::io_guard` path. Both library idioms fire; the test
//! module's direct write (seeding a corrupt file on purpose) does not.

use std::fs::File;

pub fn save_report(path: &std::path::Path, body: &str) -> std::io::Result<()> {
    std::fs::write(path, body) // fires: torn file on crash
}

pub fn open_log(path: &std::path::Path) -> std::io::Result<File> {
    File::create(path) // fires: truncates before writing
}

#[cfg(test)]
mod tests {
    #[test]
    fn seeding_corrupt_files_is_fine_in_tests() {
        std::fs::write("/tmp/fixture", b"garbage").unwrap();
    }
}

//! Firing fixture for `no-unsupervised-spawn`: bare worker threads in
//! the serve crate outside the supervisor module. Both the path form
//! and the builder method form must fire; the allow directive and the
//! test module must not.

fn unsupervised() {
    std::thread::spawn(|| {});
}

fn builder_spawn() {
    let _ = std::thread::Builder::new().spawn(|| {});
}

fn blessed_call_site() {
    // deepod-lint: allow(no-unsupervised-spawn)
    std::thread::spawn(|| {});
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_threads_are_fine() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}

//! Fixture: idiomatic code that must produce ZERO findings — library code
//! using typed errors and tolerances, plus test code using the unwrap
//! style that is fine in tests, plus explicit allow directives.

/// Library code: typed errors, tolerant comparison, checked index math.
pub fn checked(v: &[f32], i: usize) -> Result<f32, String> {
    let x = v.get(i).copied().ok_or_else(|| format!("index {i} out of range"))?;
    if (x - 1.0).abs() < 1e-6 {
        return Ok(1.0);
    }
    let n = v.len() as f64; // widening cast: fine
    let _ranged = 0..v.len(); // `0..` must not lex as a float
    Ok(x + n as f32)
}

/// An audited exact-zero check, explicitly allowed.
pub fn is_disabled(noise: f32) -> bool {
    noise == 0.0 // deepod-lint: allow(float-eq)
}

/// Strings and comments mentioning unwrap() or panic! must not fire.
pub fn doc_mentions() -> &'static str {
    // A comment saying .unwrap() and panic! is not a call site.
    "call .unwrap() or panic! at your peril"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap_and_compare_exactly() {
        let v = [0.5f32, 1.0];
        assert_eq!(checked(&v, 1).unwrap(), 1.0);
        let exact = v[0] == 0.5;
        assert!(exact);
        let t = std::time::Instant::now(); // timing in tests is fine
        let _ = t;
        std::mem::drop(v.first().expect("non-empty"));
    }

    #[test]
    #[should_panic]
    fn tests_may_panic() {
        panic!("intentional");
    }
}

//! Audit fixture: a both-orders lock pair — one direction *transitive*
//! (`outer` holds `queue` and calls `tick`, which locks `registry`),
//! the other direct (`drain` nests `queue` under `registry`) — plus a
//! channel send performed while a guard is live.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Engine {
    queue: Mutex<Vec<u32>>,
    registry: Mutex<Vec<u32>>,
}

impl Engine {
    pub fn outer(&self) {
        let q = self.queue.lock().unwrap();
        self.tick();
        drop(q);
    }

    fn tick(&self) {
        let r = self.registry.lock().unwrap();
        drop(r);
    }

    pub fn drain(&self) {
        let r = self.registry.lock().unwrap();
        let q = self.queue.lock().unwrap();
        drop(q);
        drop(r);
    }

    pub fn notify(&self, tx: &Sender<u32>) {
        let q = self.queue.lock().unwrap();
        tx.send(q.len() as u32).unwrap();
    }
}

//! Audit fixture: every emitted metric name is eagerly registered —
//! counters via the zero-delta priming idiom, gauges via the registry's
//! `register_*` helpers.

pub fn register_metrics() {
    registry::counter_add("fixture.ticks", 0);
    registry::register_gauge("fixture.depth");
    registry::register_histogram("fixture.latency_ms");
}

pub fn tick() {
    registry::counter_inc("fixture.ticks");
    registry::gauge_set("fixture.depth", 1.0);
    registry::observe("fixture.latency_ms", 0.25);
}

//! Audit fixture: panic sources transitively reachable from the root
//! `serve_entry` — one via a direct helper (indexing), one two hops deep
//! (unwrap). Both must fire with witness chains.

pub fn serve_entry(xs: &[f32]) -> f32 {
    let v = prepare(xs);
    combine(&v)
}

fn prepare(xs: &[f32]) -> Vec<f32> {
    let first = xs[0];
    vec![first; 4]
}

fn combine(v: &[f32]) -> f32 {
    reduce_max(v)
}

fn reduce_max(v: &[f32]) -> f32 {
    v.iter().copied().reduce(f32::max).unwrap()
}

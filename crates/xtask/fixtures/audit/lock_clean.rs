//! Audit fixture: disciplined locking — every nesting acquires `queue`
//! before `registry`, and the channel handoff happens after the guard
//! is released (scope exit).

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Engine {
    queue: Mutex<Vec<u32>>,
    registry: Mutex<Vec<u32>>,
}

impl Engine {
    pub fn outer(&self) {
        let q = self.queue.lock().unwrap();
        let r = self.registry.lock().unwrap();
        drop(r);
        drop(q);
    }

    pub fn drain(&self) {
        let q = self.queue.lock().unwrap();
        self.tick();
        drop(q);
    }

    fn tick(&self) {
        let r = self.registry.lock().unwrap();
        drop(r);
    }

    pub fn notify(&self, tx: &Sender<u32>) {
        let depth = {
            let q = self.queue.lock().unwrap();
            q.len() as u32
        };
        tx.send(depth).unwrap();
    }
}

//! Audit fixture: a panic-free hot path. Checked accessors on the
//! reachable path; panics confined to unreachable helpers, test code,
//! debug_assert!, and one reviewed allow directive.

pub fn serve_entry(xs: &[f32]) -> f32 {
    debug_assert!(!xs.is_empty());
    let first = head(xs);
    first + tail_sum(xs)
}

fn head(xs: &[f32]) -> f32 {
    // deepod-audit: allow(no-panic) — reviewed: callers verify non-empty
    xs[0]
}

fn tail_sum(xs: &[f32]) -> f32 {
    xs.iter().skip(1).sum()
}

/// Never called from the root: its unwrap must not fire.
pub fn offline_tool(xs: &[f32]) -> f32 {
    xs.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_of_nonempty() {
        assert_eq!(serve_entry(&[2.0, 3.0]), 5.0);
        let v = [1.0f32];
        v.first().copied().unwrap();
    }
}

//! Audit fixture: the sanctioned unsafe/SIMD shape — SAFETY-commented
//! blocks, and `#[target_feature]` kernels reached only through callers
//! that consult the runtime detector (directly, or via the wrapper idiom
//! that documents its precondition with a `debug_assert!`).

fn active_isa() -> u32 {
    2
}

/// Lanewise kernel stand-in.
///
/// # Safety
/// Caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
unsafe fn kern(x: &mut [f32]) {
    x.reverse();
}

pub fn dispatch(x: &mut [f32]) {
    if active_isa() >= 2 {
        // SAFETY: active_isa() confirmed AVX2 on this machine.
        unsafe { kern(x) }
    } else {
        x.reverse();
    }
}

pub fn run_wrapper(x: &mut [f32]) {
    debug_assert!(active_isa() >= 2);
    // SAFETY: callers reach this wrapper only through `dispatch`-style
    // runtime detection (debug-asserted above).
    unsafe { kern(x) }
}

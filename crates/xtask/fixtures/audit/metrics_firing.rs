//! Audit fixture: a metric emitted under a name that is never eagerly
//! registered.

pub fn tick() {
    registry::counter_inc("fixture.ticks");
}

//! Audit fixture: an unsafe block with no SAFETY justification, and a
//! `#[target_feature]` kernel reached from a caller that never consults
//! the runtime feature detector.

pub fn no_comment(p: *mut f32) {
    unsafe {
        *p = 1.0;
    }
}

/// Lanewise kernel stand-in.
///
/// # Safety
/// Caller must have verified AVX2 support at runtime.
#[target_feature(enable = "avx2")]
unsafe fn kern(x: &mut [f32]) {
    x.reverse();
}

pub fn bad_dispatch(x: &mut [f32]) {
    // SAFETY: nothing actually verified — the bug under test.
    unsafe { kern(x) }
}

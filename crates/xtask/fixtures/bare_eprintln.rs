//! Fixture: bare stderr prints in library code that bypass the
//! `deepod_core::obs` level gate and single-writer lock. Both macros
//! fire; the allowed line and the test module's debug print do not.

/// Library code: progress chatter straight to stderr.
pub fn noisy_progress(step: usize) {
    eprintln!("step {step} done"); // fires: ignores DEEPOD_LOG, races writers
}

/// Partial-line variant.
pub fn noisy_tick() {
    eprint!("."); // fires: same hole, no trailing newline
}

/// An audited last-resort print (e.g. inside the obs writer itself).
pub fn audited_fatal(msg: &str) {
    // deepod-lint: allow(no-bare-eprintln)
    eprintln!("fatal: {msg}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print_debug_output() {
        eprintln!("debugging a fixture is fine");
    }
}

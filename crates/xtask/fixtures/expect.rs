//! Fixture: a seeded `expect` violation in library code.

pub fn parse(s: &str) -> u32 {
    s.parse().expect("not a number")
}

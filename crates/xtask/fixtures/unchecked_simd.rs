//! Fixture: SIMD intrinsics used without the safety scaffolding the
//! `no-unchecked-simd` rule demands.

/// Violation 1: an intrinsic call site in a plain fn — the compiler may
/// emit AVX here unconditionally, which is undefined behavior on a CPU
/// without it.
pub fn naked_intrinsic(a: *const f32) -> f32 {
    unsafe {
        let v = _mm256_loadu_ps(a);
        horizontal_sum(v)
    }
}

/// Violation 2: the fn is `#[target_feature]`, but nothing in this file
/// ever calls `is_x86_feature_detected!` — there is no proof any caller
/// checked the CPU first.
#[target_feature(enable = "avx")]
pub unsafe fn undispatched(a: *const f32, b: *const f32) -> f32 {
    let x = _mm256_loadu_ps(a);
    let y = _mm256_loadu_ps(b);
    horizontal_sum(_mm256_add_ps(x, y))
}

//! Fixture: a seeded `unwrap` violation in library code.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

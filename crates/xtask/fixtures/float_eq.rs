//! Fixture: seeded exact float comparisons.

pub fn is_unit(x: f32, y: f32) -> bool {
    x == 1.0 || 0.0 != y
}

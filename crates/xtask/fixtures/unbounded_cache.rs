//! Fixture: cache insertions with no bounding evidence anywhere in the
//! file — each marked line must fire `no-unbounded-cache`. The allowed
//! insert and the test-module insert must not.

fn remember(&mut self, k: Key, v: f32) {
    self.cache.insert(k, v); // fires: cache receiver, no bound in file
}

fn remember_lru(&mut self, k: Key, v: f32) {
    self.lru_entries.insert(k, v); // fires: lru receiver, no bound in file
}

fn remember_delegated(&mut self, k: Key, v: f32) {
    // The callee enforces its own bound: annotated, does not fire.
    self.cache.insert(k, v); // deepod-lint: allow(no-unbounded-cache)
}

fn remember_elsewhere(&mut self, k: Key, v: f32) {
    // Fires too: a `*cache*.rs` file is a cache wholesale, whatever the
    // local receiver is called.
    self.index.insert(k, v);
}

#[cfg(test)]
mod tests {
    #[test]
    fn seeding_a_cache_in_tests_is_fine() {
        cache.insert(k, v);
    }
}

//! Fixture: seeded nondeterminism sources (lint as a numeric crate).

pub fn jitter() -> u128 {
    let t = std::time::Instant::now();
    let epoch = std::time::SystemTime::UNIX_EPOCH;
    let _ = epoch;
    let mut rng = rand::thread_rng();
    let seeded = rand::rngs::StdRng::from_entropy();
    let _ = (rng, seeded);
    t.elapsed().as_nanos()
}

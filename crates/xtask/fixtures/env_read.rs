//! Fixture: environment reads buried in library code, making behavior
//! depend on which module happened to initialize first instead of on the
//! one `RuntimeConfig` resolved at binary startup. Both reads fire; the
//! audited allow, `env::args`, the `env!` macro, and the test module do
//! not.

/// Library code: a lazily read tuning knob.
pub fn knob() -> usize {
    std::env::var("DEEPOD_KNOB") // fires: lib config must come from RuntimeConfig
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Sweeping the whole environment is the same hole.
pub fn dump() -> Vec<(String, String)> {
    std::env::vars().collect() // fires: ambient configuration read
}

/// An audited escape hatch (e.g. inside the runtime resolver's docs).
pub fn audited() -> Option<std::ffi::OsString> {
    // deepod-lint: allow(no-env-read-in-lib)
    std::env::var_os("DEEPOD_AUDITED")
}

/// Argv is input, not ambient configuration; compile-time `env!` is baked
/// in by cargo. Neither fires.
pub fn legal() -> String {
    let _ = std::env::args().count();
    env!("CARGO_PKG_NAME").to_string()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_probe_the_environment() {
        let _ = std::env::var("TMPDIR");
    }
}

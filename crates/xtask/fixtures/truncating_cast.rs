//! Fixture: seeded truncating float-to-index casts.

pub fn slot(t: f64, dt: f64) -> usize {
    (t / dt).floor() as usize
}

pub fn half() -> usize {
    2.5 as usize
}

pub fn chained(x: u64) -> u32 {
    x as f64 as u32
}

//! Fixture: seeded `panic!` / `todo!` violations in library code.

pub fn choose(mode: u8) -> u32 {
    match mode {
        0 => 1,
        1 => todo!("implement mode 1"),
        _ => panic!("unknown mode"),
    }
}

//! Fixture: a stand-in `parallel` module whose pub fns lack serial
//! regression tests (drives the `parallel-coverage` rule).

pub fn fan_out(len: usize) -> usize {
    len
}

pub fn fold_back(len: usize) -> usize {
    len
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_out_threads1_matches_serial() {}
    // fold_back intentionally has no serial test.
}

//! Firing fixture for `no-deprecated-inference`: the deleted
//! single-request shims declared again in an inference crate. All three
//! names must fire; `estimate_batch`, call sites, the allow directive,
//! and the test module must not.

impl DeepOdModel {
    pub fn estimate(&mut self) -> f32 {
        0.0
    }

    pub fn estimate_encoded(&mut self) -> f32 {
        0.0
    }

    pub fn estimate_orders(&mut self) -> Vec<f32> {
        Vec::new()
    }

    pub fn estimate_batch(&self) -> Vec<f32> {
        Vec::new() // the blessed entry point
    }
}

fn call_site_is_fine() {
    let _ = estimate_batch();
}

fn blessed_declaration() {
    // deepod-lint: allow(no-deprecated-inference)
    fn estimate() {}
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_shims_are_fine() {
        fn estimate() {}
        estimate();
    }
}

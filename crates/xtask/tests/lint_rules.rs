//! Fixture tests proving every deepod-lint rule live: each seeded
//! violation fires, and the clean fixture (idiomatic library + test code)
//! produces zero false positives. Finally, the real workspace must be
//! clean — this test *is* the gate, reachable from plain `cargo test`.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use xtask::lexer::lex;
use xtask::rules::{check_parallel_coverage, collect_pub_fns, collect_test_fn_names, FileCtx};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Lints a fixture as non-test library code of the given crate and
/// returns the rule names that fired (duplicates preserved).
fn rules_fired(name: &str, crate_name: &str) -> Vec<&'static str> {
    let findings = xtask::lint_file_as(&fixture(name), crate_name).expect("fixture readable");
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn unwrap_rule_fires() {
    assert_eq!(rules_fired("unwrap.rs", "roadnet"), vec!["unwrap"]);
}

#[test]
fn expect_rule_fires() {
    assert_eq!(rules_fired("expect.rs", "roadnet"), vec!["expect"]);
}

#[test]
fn panic_rule_fires() {
    let fired = rules_fired("panic.rs", "core");
    assert_eq!(fired, vec!["panic", "panic"], "todo! and panic! both fire");
}

#[test]
fn nondeterminism_rule_fires_in_numeric_crates_only() {
    let fired = rules_fired("nondeterminism.rs", "nn");
    assert_eq!(
        fired.iter().filter(|r| **r == "nondeterminism").count(),
        4,
        "Instant::now, SystemTime, thread_rng, from_entropy: {fired:?}"
    );
    // The same file linted as a non-numeric crate is silent.
    assert!(rules_fired("nondeterminism.rs", "eval").is_empty());
}

#[test]
fn float_eq_rule_fires() {
    assert_eq!(
        rules_fired("float_eq.rs", "baselines"),
        vec!["float-eq", "float-eq"]
    );
}

#[test]
fn truncating_cast_rule_fires() {
    let fired = rules_fired("truncating_cast.rs", "tensor");
    assert_eq!(
        fired,
        vec!["truncating-cast", "truncating-cast", "truncating-cast"],
        "floor-cast, literal cast, and chained float cast"
    );
}

#[test]
fn parallel_coverage_rule_fires() {
    let src = std::fs::read_to_string(fixture("parallel_mod.rs")).expect("fixture");
    let lexed = lex(&src);
    let ctx = FileCtx::new("parallel_mod.rs", "tensor", &lexed, false, false);
    let pub_fns = collect_pub_fns(&ctx);
    assert_eq!(pub_fns.len(), 2, "fixture declares two pub fns");
    let mut test_names = BTreeSet::new();
    collect_test_fn_names(&ctx, &mut test_names);
    let mut out = Vec::new();
    check_parallel_coverage("parallel_mod.rs", &pub_fns, &test_names, &lexed, &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].rule, "parallel-coverage");
    assert!(out[0].msg.contains("fold_back"));
}

#[test]
fn bare_fs_write_rule_fires() {
    assert_eq!(
        rules_fired("bare_fs_write.rs", "eval"),
        vec!["no-bare-fs-write", "no-bare-fs-write"],
        "fs::write and File::create both fire; the test module does not"
    );
}

#[test]
fn bare_eprintln_rule_fires() {
    assert_eq!(
        rules_fired("bare_eprintln.rs", "core"),
        vec!["no-bare-eprintln", "no-bare-eprintln"],
        "eprintln! and eprint! both fire; the allow and the test module do not"
    );
}

#[test]
fn env_read_rule_fires() {
    assert_eq!(
        rules_fired("env_read.rs", "core"),
        vec!["no-env-read-in-lib", "no-env-read-in-lib"],
        "env::var and env::vars fire; allow, args, env!, and tests do not"
    );
}

#[test]
fn unchecked_simd_rule_fires() {
    assert_eq!(
        rules_fired("unchecked_simd.rs", "tensor"),
        vec![
            "no-unchecked-simd", // naked call site outside #[target_feature]
            "no-unchecked-simd", // three intrinsics inside a #[target_feature]
            "no-unchecked-simd", // fn in a file with no runtime-detection
            "no-unchecked-simd", // dispatcher
        ],
    );
}

#[test]
fn unsupervised_spawn_rule_fires() {
    assert_eq!(
        rules_fired("unsupervised_spawn.rs", "serve"),
        vec!["no-unsupervised-spawn", "no-unsupervised-spawn"],
        "path spawn and builder .spawn( fire; allow and tests do not"
    );
    // The same file linted as any other crate is silent: only the serve
    // crate runs long-lived worker threads under supervision.
    assert!(rules_fired("unsupervised_spawn.rs", "tensor").is_empty());
}

#[test]
fn unsupervised_spawn_rule_blesses_the_supervisor_module() {
    assert!(
        rules_fired("supervisor.rs", "serve").is_empty(),
        "the supervision layer is the one legal spawn site"
    );
}

#[test]
fn unbounded_cache_rule_fires() {
    assert_eq!(
        rules_fired("unbounded_cache.rs", "serve"),
        vec![
            "no-unbounded-cache", // cache-named receiver
            "no-unbounded-cache", // lru-named receiver
            "no-unbounded-cache", // any insert in a *cache*.rs file
        ],
        "allow-annotated and test-module inserts do not fire"
    );
}

#[test]
fn clean_fixture_has_zero_false_positives() {
    let findings = xtask::lint_file_as(&fixture("clean.rs"), "tensor").expect("fixture");
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = xtask::lint_workspace(root).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "deepod-lint findings in the workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Fixture tests proving every deepod-audit analysis live: each seeded
//! flow defect fires (with the right fingerprint/witness shape), each
//! clean fixture produces zero false positives, the baseline round-trips,
//! and the real workspace must be clean against the checked-in
//! `audit-baseline.json` — that last test *is* the gate, reachable from
//! plain `cargo test`.

use std::path::{Path, PathBuf};
use xtask::audit::{AuditFinding, Baseline};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("audit")
        .join(name)
}

/// Audits one fixture file as library code of crate `demo` with the
/// given no-panic roots (path suffixes are matched against the fixture
/// file name).
fn audit_one(name: &str, roots: &[(&str, &str)]) -> Vec<AuditFinding> {
    let path = fixture(name);
    xtask::audit_files_as(&[(&path, "demo")], roots).expect("fixture readable")
}

fn rules_of(findings: &[AuditFinding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// --- no-panic -------------------------------------------------------------

#[test]
fn no_panic_fires_with_witness_chains() {
    let findings = audit_one(
        "no_panic_firing.rs",
        &[("no_panic_firing.rs", "serve_entry")],
    );
    assert_eq!(rules_of(&findings), vec!["no-panic", "no-panic"]);

    let index = findings
        .iter()
        .find(|f| f.fingerprint.ends_with(":index"))
        .expect("indexing finding");
    assert!(
        index.msg.contains("`no_panic_firing::prepare`"),
        "{}",
        index.msg
    );
    assert_eq!(index.chain.len(), 2, "root -> prepare: {:?}", index.chain);
    assert!(index.chain[0].contains("serve_entry"), "{:?}", index.chain);

    let unwrap = findings
        .iter()
        .find(|f| f.fingerprint.ends_with(":unwrap"))
        .expect("unwrap finding");
    // serve_entry -> combine -> reduce_max, each hop carrying file:line.
    assert_eq!(unwrap.chain.len(), 3, "{:?}", unwrap.chain);
    assert!(
        unwrap
            .chain
            .iter()
            .all(|hop| hop.contains("no_panic_firing.rs:")),
        "every hop cites a call site: {:?}",
        unwrap.chain
    );
}

#[test]
fn no_panic_clean_has_zero_false_positives() {
    let findings = audit_one("no_panic_clean.rs", &[("no_panic_clean.rs", "serve_entry")]);
    assert_eq!(rules_of(&findings), Vec::<&str>::new(), "{findings:#?}");
}

#[test]
fn missing_root_is_itself_a_finding() {
    let findings = audit_one("no_panic_clean.rs", &[("no_panic_clean.rs", "gone_entry")]);
    assert_eq!(rules_of(&findings), vec!["no-panic"]);
    assert_eq!(
        findings[0].fingerprint,
        "no-panic:missing-root:no_panic_clean.rs:gone_entry"
    );
}

// --- unsafe-safety / simd-dispatch ---------------------------------------

#[test]
fn unsafe_rules_fire() {
    let findings = audit_one("unsafe_firing.rs", &[]);
    assert_eq!(rules_of(&findings), vec!["unsafe-safety", "simd-dispatch"]);
    assert!(
        findings[0].msg.contains("no_comment"),
        "{}",
        findings[0].msg
    );
    assert!(
        findings[1]
            .fingerprint
            .ends_with("bad_dispatch->unsafe_firing::kern"),
        "{}",
        findings[1].fingerprint
    );
}

#[test]
fn unsafe_clean_has_zero_false_positives() {
    let findings = audit_one("unsafe_clean.rs", &[]);
    assert_eq!(rules_of(&findings), Vec::<&str>::new(), "{findings:#?}");
}

// --- lock-order / lock-across-send ---------------------------------------

#[test]
fn lock_rules_fire_including_transitive_order() {
    let findings = audit_one("lock_firing.rs", &[]);
    assert_eq!(rules_of(&findings), vec!["lock-order", "lock-across-send"]);
    // The queue->registry direction only exists *transitively*
    // (outer holds queue, tick acquires registry).
    assert_eq!(findings[0].fingerprint, "lock-order:queue<->registry");
    assert!(
        findings[0].msg.contains("both orders"),
        "{}",
        findings[0].msg
    );
    assert!(
        findings[1].fingerprint.contains(":notify:queue:send"),
        "{}",
        findings[1].fingerprint
    );
}

#[test]
fn lock_clean_has_zero_false_positives() {
    let findings = audit_one("lock_clean.rs", &[]);
    assert_eq!(rules_of(&findings), Vec::<&str>::new(), "{findings:#?}");
}

// --- metrics-consistency --------------------------------------------------

#[test]
fn metrics_rule_fires() {
    let findings = audit_one("metrics_firing.rs", &[]);
    assert_eq!(rules_of(&findings), vec!["metrics-consistency"]);
    assert_eq!(findings[0].fingerprint, "metrics-consistency:fixture.ticks");
}

#[test]
fn metrics_clean_has_zero_false_positives() {
    let findings = audit_one("metrics_clean.rs", &[]);
    assert_eq!(rules_of(&findings), Vec::<&str>::new(), "{findings:#?}");
}

// --- baseline -------------------------------------------------------------

#[test]
fn baseline_loads_partitions_and_reports_stale() {
    let baseline = Baseline::load(&fixture("baseline_ok.json")).expect("well-formed");
    assert_eq!(baseline.fingerprints.len(), 2);

    let findings = audit_one(
        "no_panic_firing.rs",
        &[("no_panic_firing.rs", "serve_entry")],
    );
    let part = baseline.partition(&findings);
    // The fixture file's own path differs from the baseline's demo path,
    // so nothing matches: both findings unbaselined, both entries stale.
    assert_eq!(part.unbaselined.len(), 2);
    assert_eq!(part.baselined, 0);
    assert_eq!(part.stale.len(), 2);

    // A baseline rendered from the findings absorbs them exactly.
    let rendered = xtask::audit::baseline::render(&part.unbaselined);
    let dir = std::env::temp_dir().join(format!("deepod-audit-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.json");
    std::fs::write(&path, rendered).expect("write baseline");
    let reloaded = Baseline::load(&path).expect("round-trips");
    let part2 = reloaded.partition(&findings);
    assert_eq!(part2.unbaselined.len(), 0);
    assert_eq!(part2.baselined, 2);
    assert_eq!(part2.stale.len(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_baseline_is_empty_but_malformed_is_an_error() {
    let missing = Baseline::load(&fixture("no_such_baseline.json")).expect("missing = empty");
    assert!(missing.fingerprints.is_empty());
    let err = Baseline::load(&fixture("baseline_bad.json"));
    assert!(err.is_err(), "malformed baseline must not silently pass");
}

// --- the gate -------------------------------------------------------------

#[test]
fn workspace_audit_is_clean_against_checked_in_baseline() {
    // crates/xtask -> crates -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let findings = xtask::audit_workspace(&root).expect("workspace readable");
    let baseline = Baseline::load(&root.join("audit-baseline.json")).expect("baseline parses");
    let part = baseline.partition(&findings);
    assert!(
        part.unbaselined.is_empty(),
        "unbaselined audit findings:\n{}",
        part.unbaselined
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        part.stale.is_empty(),
        "stale baseline entries (re-run `cargo run -p xtask -- audit --update-baseline`):\n{}",
        part.stale.join("\n")
    );
}

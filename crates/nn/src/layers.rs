//! Reusable layer blocks mirroring the paper's building bricks: the
//! two-layer MLP used everywhere (Eq. 11, 17, 18, 19, 20), the LSTM unit
//! (Eq. 12–16), embeddings (Eq. 1 and §4.2), and batch normalization with
//! running statistics.
//!
//! A "layer" here is a set of [`ParamId`]s plus a `forward` method that
//! records ops on a [`Graph`]; layers own no tensors themselves, so a model
//! is fully described by its `ParamStore` and can be serialized as one.

use crate::graph::{Graph, VarId};
use crate::param::{ParamId, ParamStore};
use deepod_tensor::{Activation, Tensor};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A single fully-connected layer `y = W x + b`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Linear {
    /// Weight `[out, in]`.
    pub w: ParamId,
    /// Bias `[out]`.
    pub b: ParamId,
    /// Output width.
    pub out_dim: usize,
    /// Input width.
    pub in_dim: usize,
}

impl Linear {
    /// Registers a Xavier-initialized linear layer.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.register(
            &format!("{name}.w"),
            Tensor::xavier_uniform(out_dim, in_dim, rng),
        );
        let b = store.register(&format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Linear {
            w,
            b,
            out_dim,
            in_dim,
        }
    }

    /// Applies the layer to a rank-1 input.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: VarId) -> VarId {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        g.linear(w, x, b)
    }
}

/// The paper's recurring "two-layer Multilayer Perceptron":
/// `y = W2 · ReLU(W1 x + b1) + b2`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Mlp2 {
    /// First (hidden) layer.
    pub l1: Linear,
    /// Second (output) layer.
    pub l2: Linear,
}

impl Mlp2 {
    /// Registers a two-layer MLP `in_dim → hidden → out_dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        Mlp2 {
            l1: Linear::new(store, &format!("{name}.l1"), in_dim, hidden, rng),
            l2: Linear::new(store, &format!("{name}.l2"), hidden, out_dim, rng),
        }
    }

    /// Applies the MLP to a rank-1 input. The hidden layer records a single
    /// fused linear+ReLU node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: VarId) -> VarId {
        let w1 = g.param(store, self.l1.w);
        let b1 = g.param(store, self.l1.b);
        let h = g.linear_act(w1, x, b1, Activation::Relu);
        self.l2.forward(g, store, h)
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.l2.out_dim
    }
}

/// LSTM cell with the paper's formulation (Eq. 12–16): four gates over the
/// concatenation `[x_j, h_{j-1}]`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LstmCell {
    /// Forget gate weight `[d_h, d_x + d_h]` and bias.
    pub wf: ParamId,
    /// Input gate.
    pub wi: ParamId,
    /// Output gate.
    pub wo: ParamId,
    /// Candidate cell.
    pub wc: ParamId,
    /// Gate biases, each `[d_h]`.
    pub bf: ParamId,
    /// Input-gate bias.
    pub bi: ParamId,
    /// Output-gate bias.
    pub bo: ParamId,
    /// Candidate bias.
    pub bc: ParamId,
    /// Input width `d_x`.
    pub input_dim: usize,
    /// Hidden width `d_h`.
    pub hidden_dim: usize,
}

impl LstmCell {
    /// Registers an LSTM cell. The forget-gate bias starts at 1.0 (standard
    /// practice so early training does not erase the cell state).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let cat = input_dim + hidden_dim;
        let mk_w = |store: &mut ParamStore, tag: &str, rng: &mut StdRng| {
            store.register(
                &format!("{name}.{tag}"),
                Tensor::xavier_uniform(hidden_dim, cat, rng),
            )
        };
        let wf = mk_w(store, "wf", rng);
        let wi = mk_w(store, "wi", rng);
        let wo = mk_w(store, "wo", rng);
        let wc = mk_w(store, "wc", rng);
        let bf = store.register(&format!("{name}.bf"), Tensor::ones(&[hidden_dim]));
        let bi = store.register(&format!("{name}.bi"), Tensor::zeros(&[hidden_dim]));
        let bo = store.register(&format!("{name}.bo"), Tensor::zeros(&[hidden_dim]));
        let bc = store.register(&format!("{name}.bc"), Tensor::zeros(&[hidden_dim]));
        LstmCell {
            wf,
            wi,
            wo,
            wc,
            bf,
            bi,
            bo,
            bc,
            input_dim,
            hidden_dim,
        }
    }

    /// One LSTM step: returns `(h_j, c_j)` from input `x_j` and previous
    /// state `(h_{j-1}, c_{j-1})`.
    pub fn step(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: VarId,
        h_prev: VarId,
        c_prev: VarId,
    ) -> (VarId, VarId) {
        // Each gate is one fused linear+activation node (Eq. 12–15).
        let xh = g.concat(&[x, h_prev]);
        let wf = g.param(store, self.wf);
        let bf = g.param(store, self.bf);
        let f = g.linear_act(wf, xh, bf, Activation::Sigmoid);
        let wi = g.param(store, self.wi);
        let bi = g.param(store, self.bi);
        let i = g.linear_act(wi, xh, bi, Activation::Sigmoid);
        let wo = g.param(store, self.wo);
        let bo = g.param(store, self.bo);
        let o = g.linear_act(wo, xh, bo, Activation::Sigmoid);
        let wc = g.param(store, self.wc);
        let bc = g.param(store, self.bc);
        let c_cand = g.linear_act(wc, xh, bc, Activation::Tanh);

        let fc = g.mul(f, c_prev);
        let ic = g.mul(i, c_cand);
        let c = g.add(fc, ic);
        let ct = g.tanh(c);
        let h = g.mul(o, ct);
        (h, c)
    }

    /// Runs the cell over a sequence of rank-1 inputs, starting from zero
    /// state, and returns the final hidden vector `h_n`.
    pub fn run_sequence(&self, g: &mut Graph, store: &ParamStore, inputs: &[VarId]) -> VarId {
        assert!(!inputs.is_empty(), "LSTM sequence must be non-empty");
        let mut h = g.input(Tensor::zeros(&[self.hidden_dim]));
        let mut c = g.input(Tensor::zeros(&[self.hidden_dim]));
        for &x in inputs {
            let (nh, nc) = self.step(g, store, x, h, c);
            h = nh;
            c = nc;
        }
        h
    }
}

/// An embedding table: a `[vocab, dim]` matrix looked up by row index
/// (Eq. 1 / §4.2's W_s and W_t without materializing one-hot codes).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Embedding {
    /// The embedding matrix parameter.
    pub table: ParamId,
    /// Number of rows.
    pub vocab: usize,
    /// Embedding width.
    pub dim: usize,
}

impl Embedding {
    /// Registers an embedding table with small uniform initialization.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        let bound = (3.0 / dim as f32).sqrt();
        let t = Tensor::rand_uniform(&[vocab, dim], -bound, bound, rng);
        Embedding {
            table: store.register(name, t),
            vocab,
            dim,
        }
    }

    /// Replaces the table with pre-trained vectors (graph-embedding init,
    /// §4.1/§4.2). Panics on shape mismatch.
    pub fn load_pretrained(&self, store: &mut ParamStore, vectors: Tensor) {
        store.set_value(self.table, vectors);
    }

    /// Looks up one row as a rank-1 vector.
    pub fn lookup(&self, g: &mut Graph, store: &ParamStore, index: usize) -> VarId {
        let t = g.param(store, self.table);
        g.gather_row(t, index)
    }

    /// Looks up several rows as a `[k, dim]` matrix.
    pub fn lookup_many(&self, g: &mut Graph, store: &ParamStore, indices: &[usize]) -> VarId {
        let t = g.param(store, self.table);
        g.gather(t, indices)
    }
}

/// Batch normalization over the channel axis of `[c,h,w]` tensors.
///
/// Normalization always uses the running statistics (see DESIGN.md §2.1:
/// DeepOD's interval tensors are processed per-sample, so per-batch moments
/// over a Δd=1 tensor would be degenerate); in training mode the running
/// stats are EMA-updated from the observed activations before use.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Learnable scale `[c]`.
    pub gamma: ParamId,
    /// Learnable shift `[c]`.
    pub beta: ParamId,
    /// Running mean per channel (not a graph parameter).
    pub running_mean: Vec<f32>,
    /// Running variance per channel.
    pub running_var: Vec<f32>,
    /// EMA momentum for the running stats.
    pub momentum: f32,
    /// Numerical floor inside the square root.
    pub eps: f32,
    /// Channel count.
    pub channels: usize,
}

impl BatchNorm2d {
    /// Registers a batch-norm layer for `channels` channels.
    pub fn new(store: &mut ParamStore, name: &str, channels: usize) -> Self {
        let gamma = store.register(&format!("{name}.gamma"), Tensor::ones(&[channels]));
        let beta = store.register(&format!("{name}.beta"), Tensor::zeros(&[channels]));
        BatchNorm2d {
            gamma,
            beta,
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }

    /// Applies batch normalization. When `training` is true the running
    /// statistics are first updated from the input's per-channel moments.
    pub fn forward(
        &mut self,
        g: &mut Graph,
        store: &ParamStore,
        x: VarId,
        training: bool,
    ) -> VarId {
        let xv = g.value(x);
        assert_eq!(xv.dim(0), self.channels, "channel mismatch");
        if training {
            let hw = xv.dim(1) * xv.dim(2);
            for c in 0..self.channels {
                let s = &xv.as_slice()[c * hw..(c + 1) * hw];
                let mean = s.iter().sum::<f32>() / hw as f32;
                let var = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / hw as f32;
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
            }
        }
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        let mu = self.running_mean.clone();
        let var = self.running_var.clone();
        g.batch_norm(x, gamma, beta, &mu, &var, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdamOptimizer;
    use deepod_tensor::rng_from_seed;

    #[test]
    fn mlp2_shapes_and_forward() {
        let mut rng = rng_from_seed(0);
        let mut store = ParamStore::new();
        let mlp = Mlp2::new(&mut store, "m", 4, 8, 3, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[4]));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.value(y).dims(), &[3]);
        assert_eq!(mlp.out_dim(), 3);
    }

    #[test]
    fn lstm_final_state_shape_and_determinism() {
        let mut rng = rng_from_seed(1);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 3, 5, &mut rng);
        let mut g = Graph::new();
        let xs: Vec<VarId> = (0..4)
            .map(|i| g.input(Tensor::full(&[3], i as f32 * 0.1)))
            .collect();
        let h = cell.run_sequence(&mut g, &store, &xs);
        assert_eq!(g.value(h).dims(), &[5]);

        // Same inputs → same output (pure function of params).
        let mut g2 = Graph::new();
        let xs2: Vec<VarId> = (0..4)
            .map(|i| g2.input(Tensor::full(&[3], i as f32 * 0.1)))
            .collect();
        let h2 = cell.run_sequence(&mut g2, &store, &xs2);
        assert_eq!(g.value(h).as_slice(), g2.value(h2).as_slice());
    }

    #[test]
    fn lstm_gates_bounded() {
        // Hidden state of an LSTM is o ⊙ tanh(c): bounded to [-1, 1] even
        // under saturating inputs (f32 rounding can hit the bound exactly).
        let mut rng = rng_from_seed(2);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 4, &mut rng);
        let mut g = Graph::new();
        let xs: Vec<VarId> = (0..10)
            .map(|_| g.input(Tensor::full(&[2], 100.0)))
            .collect();
        let h = cell.run_sequence(&mut g, &store, &xs);
        assert!(g.value(h).as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn embedding_lookup_and_pretrained() {
        let mut rng = rng_from_seed(3);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "emb", 6, 2, &mut rng);
        let pre = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[6, 2]);
        emb.load_pretrained(&mut store, pre);
        let mut g = Graph::new();
        let v = emb.lookup(&mut g, &store, 2);
        assert_eq!(g.value(v).as_slice(), &[4.0, 5.0]);
        let m = emb.lookup_many(&mut g, &store, &[0, 5]);
        assert_eq!(g.value(m).as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn batchnorm_running_stats_move_toward_input() {
        let mut rng = rng_from_seed(4);
        let mut store = ParamStore::new();
        let mut bn = BatchNorm2d::new(&mut store, "bn", 1);
        let _ = &mut rng;
        for _ in 0..50 {
            let mut g = Graph::new();
            let x = g.input(Tensor::full(&[1, 2, 2], 10.0));
            let _ = bn.forward(&mut g, &store, x, true);
        }
        assert!(
            (bn.running_mean[0] - 10.0).abs() < 0.2,
            "mean {}",
            bn.running_mean[0]
        );
        assert!(bn.running_var[0] < 0.2, "var {}", bn.running_var[0]);
    }

    #[test]
    fn batchnorm_eval_mode_does_not_update() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm2d::new(&mut store, "bn", 1);
        let before = bn.running_mean.clone();
        let mut g = Graph::new();
        let x = g.input(Tensor::full(&[1, 1, 3], 42.0));
        let _ = bn.forward(&mut g, &store, x, false);
        assert_eq!(bn.running_mean, before);
    }

    #[test]
    fn lstm_learns_sequence_sum_sign() {
        // Tiny end-to-end check: classify whether the sum of a ±1 sequence
        // is positive, trained through the full tape.
        let mut rng = rng_from_seed(5);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 1, 6, &mut rng);
        let head = Linear::new(&mut store, "head", 6, 1, &mut rng);
        let mut opt = AdamOptimizer::new(0.02);

        let seqs: Vec<Vec<f32>> = vec![
            vec![1.0, 1.0, 1.0],
            vec![-1.0, -1.0, -1.0],
            vec![1.0, 1.0, -1.0],
            vec![-1.0, -1.0, 1.0],
            vec![1.0, -1.0, 1.0],
            vec![-1.0, 1.0, -1.0],
        ];
        let labels: Vec<f32> = seqs
            .iter()
            .map(|s| {
                if s.iter().sum::<f32>() > 0.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();

        for _ in 0..150 {
            for (s, &y) in seqs.iter().zip(&labels) {
                let mut g = Graph::new();
                let xs: Vec<VarId> = s
                    .iter()
                    .map(|&v| g.input(Tensor::from_vec(vec![v], &[1])))
                    .collect();
                let h = cell.run_sequence(&mut g, &store, &xs);
                let logit = head.forward(&mut g, &store, h);
                let p = g.sigmoid(logit);
                let t = g.input(Tensor::from_vec(vec![y], &[1]));
                let loss = g.mean_abs_error(p, t);
                let grads = g.backward(loss);
                opt.step(&mut store, &grads);
            }
        }

        let mut correct = 0;
        for (s, &y) in seqs.iter().zip(&labels) {
            let mut g = Graph::new();
            let xs: Vec<VarId> = s
                .iter()
                .map(|&v| g.input(Tensor::from_vec(vec![v], &[1])))
                .collect();
            let h = cell.run_sequence(&mut g, &store, &xs);
            let logit = head.forward(&mut g, &store, h);
            let p = g.sigmoid(logit);
            if (g.value(p).item() > 0.5) == (y > 0.5) {
                correct += 1;
            }
        }
        assert!(correct >= 5, "only {correct}/6 correct");
    }
}

//! Additional layer tests: shape errors, serialization of layer bundles,
//! optimizer-state independence, and conv/batch-norm edge cases that the
//! DeepOD encoders rely on.

use crate::layers::{BatchNorm2d, Embedding, Linear, LstmCell, Mlp2};
use crate::{AdamOptimizer, Graph, ParamStore};
use deepod_tensor::{rng_from_seed, Tensor};

#[test]
fn linear_rejects_wrong_input_width() {
    let mut rng = rng_from_seed(0);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, "l", 4, 3, &mut rng);
    let mut g = Graph::new();
    let x = g.input(Tensor::ones(&[5])); // wrong width
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        lin.forward(&mut g, &store, x)
    }));
    assert!(result.is_err(), "width mismatch must panic");
}

#[test]
fn layer_handles_survive_store_serde() {
    // Layers are Copy handles into the store: serializing the store and
    // rebuilding layers from their (serialized) handles must reproduce
    // outputs exactly.
    let mut rng = rng_from_seed(1);
    let mut store = ParamStore::new();
    let mlp = Mlp2::new(&mut store, "m", 3, 6, 2, &mut rng);

    let mut g = Graph::new();
    let x = g.input(Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]));
    let out = mlp.forward(&mut g, &store, x);
    let before = g.value(out).clone();

    let store_json = serde_json::to_string(&store).unwrap();
    let mlp_json = serde_json::to_string(&mlp).unwrap();
    let store2: ParamStore = serde_json::from_str(&store_json).unwrap();
    let mlp2: Mlp2 = serde_json::from_str(&mlp_json).unwrap();

    let mut g2 = Graph::new();
    let x2 = g2.input(Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]));
    let out2 = mlp2.forward(&mut g2, &store2, x2);
    let after = g2.value(out2).clone();
    assert_eq!(before.as_slice(), after.as_slice());
}

#[test]
fn two_optimizers_do_not_share_state() {
    // Adam state is per-optimizer: two optimizers stepping the same store
    // alternate cleanly (fresh bias-correction each).
    let mut store = ParamStore::new();
    let w = store.register("w", Tensor::zeros(&[1]));
    let mut a = AdamOptimizer::new(0.1);
    let mut b = AdamOptimizer::new(0.1);
    let grad = |v: f32| {
        let mut g = crate::Gradients::new();
        g.accumulate(w, crate::GradSlot::Dense(Tensor::from_vec(vec![v], &[1])));
        g
    };
    a.step(&mut store, &grad(1.0));
    let after_a = store.value(w).as_slice()[0];
    b.step(&mut store, &grad(1.0));
    let after_b = store.value(w).as_slice()[0];
    // Both steps move in the same direction with first-step magnitude ~lr.
    assert!(after_a < 0.0);
    assert!(after_b < after_a);
    assert!((after_a - -0.1).abs() < 1e-4);
    assert!((after_b - -0.2).abs() < 1e-4);
}

#[test]
fn embedding_lookup_out_of_range_panics() {
    let mut rng = rng_from_seed(2);
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "e", 5, 3, &mut rng);
    let mut g = Graph::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        emb.lookup(&mut g, &store, 7)
    }));
    assert!(result.is_err());
}

#[test]
fn lstm_zero_length_panics_but_len_one_ok() {
    let mut rng = rng_from_seed(3);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "l", 2, 3, &mut rng);
    let mut g = Graph::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cell.run_sequence(&mut g, &store, &[])
    }));
    assert!(result.is_err());

    let mut g = Graph::new();
    let x = g.input(Tensor::ones(&[2]));
    let h = cell.run_sequence(&mut g, &store, &[x]);
    assert_eq!(g.value(h).numel(), 3);
}

#[test]
fn batchnorm_gamma_beta_affine() {
    // With known running stats, BN output is a pure affine map; check the
    // learned affine applies per channel.
    let mut store = ParamStore::new();
    let mut bn = BatchNorm2d::new(&mut store, "bn", 2);
    bn.running_mean = vec![0.0, 0.0];
    bn.running_var = vec![1.0, 1.0];
    bn.eps = 0.0;
    store.set_value(bn.gamma, Tensor::from_vec(vec![2.0, 3.0], &[2]));
    store.set_value(bn.beta, Tensor::from_vec(vec![1.0, -1.0], &[2]));
    let mut g = Graph::new();
    let x = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 2]));
    let y = bn.forward(&mut g, &store, x, false);
    deepod_tensor::assert_close(g.value(y).as_slice(), &[3.0, 5.0, 8.0, 11.0], 1e-5);
}

#[test]
fn conv_rectangular_kernels() {
    // (1,3) kernels (horizontal) vs (3,1) (vertical) must differ on an
    // anisotropic input.
    let mut g = Graph::new();
    let x = g.input(Tensor::from_vec(
        (0..12).map(|i| i as f32).collect(),
        &[1, 3, 4],
    ));
    let kv = g.input(Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 1, 3, 1]));
    let kh = g.input(Tensor::from_vec(vec![1.0, 1.0, 1.0], &[1, 1, 1, 3]));
    let yv = g.conv2d(x, kv);
    let yh = g.conv2d(x, kh);
    assert_eq!(g.value(yv).dims(), &[1, 3, 4]);
    assert_eq!(g.value(yh).dims(), &[1, 3, 4]);
    assert_ne!(g.value(yv).as_slice(), g.value(yh).as_slice());
    // Center element of vertical sum: x[0,1] rows 0+1+2 at col 1 = 1+5+9.
    assert_eq!(g.value(yv).at(&[0, 1, 1]), 15.0);
    // Horizontal sum at (1,1): 4+5+6.
    assert_eq!(g.value(yh).at(&[0, 1, 1]), 15.0);
}

#[test]
fn gradient_accumulation_across_samples_matches_batch() {
    // Merging per-sample gradients then scaling equals averaging manually.
    let mut rng = rng_from_seed(4);
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, "l", 2, 1, &mut rng);
    let xs = [vec![1.0f32, 2.0], vec![-1.0, 0.5]];
    let ys = [3.0f32, -1.0];

    let mut merged = crate::Gradients::new();
    let mut per_sample = Vec::new();
    for (x, &y) in xs.iter().zip(&ys) {
        let mut g = Graph::new();
        let xv = g.input(Tensor::from_vec(x.clone(), &[2]));
        let pred = lin.forward(&mut g, &store, xv);
        let t = g.input(Tensor::from_vec(vec![y], &[1]));
        let loss = g.mean_abs_error(pred, t);
        let grads = g.backward(loss);
        per_sample.push(grads.get(lin.w).unwrap().to_dense(&[1, 2]));
        let mut g2 = Graph::new();
        let xv2 = g2.input(Tensor::from_vec(x.clone(), &[2]));
        let pred2 = lin.forward(&mut g2, &store, xv2);
        let t2 = g2.input(Tensor::from_vec(vec![y], &[1]));
        let loss2 = g2.mean_abs_error(pred2, t2);
        merged.merge(g2.backward(loss2));
    }
    merged.scale(0.5);
    let merged_w = merged.get(lin.w).unwrap().to_dense(&[1, 2]);
    let manual: Vec<f32> = (0..2)
        .map(|i| 0.5 * (per_sample[0].as_slice()[i] + per_sample[1].as_slice()[i]))
        .collect();
    deepod_tensor::assert_close(merged_w.as_slice(), &manual, 1e-6);
}

//! Reverse-mode sweep over a recorded [`Graph`] and the gradient container
//! handed to optimizers.

use crate::graph::{Graph, Op, VarId};
use crate::param::ParamId;
use deepod_tensor::Tensor;
use std::collections::HashMap;

/// Gradient of one parameter, either dense (weight matrices, biases) or as
/// a set of touched rows (embedding matrices reached through `gather`, where
/// materializing a dense gradient would dominate the training cost).
#[derive(Debug, Clone)]
pub enum GradSlot {
    /// Dense gradient tensor with the parameter's shape.
    Dense(Tensor),
    /// Sparse row gradients for a `[rows, cols]` parameter.
    SparseRows {
        rows: usize,
        cols: usize,
        entries: HashMap<usize, Vec<f32>>,
    },
}

impl GradSlot {
    /// Merges another slot for the same parameter into this one.
    fn merge(&mut self, other: GradSlot) {
        match (self, other) {
            (GradSlot::Dense(a), GradSlot::Dense(b)) => a.axpy(1.0, &b),
            (GradSlot::Dense(a), GradSlot::SparseRows { cols, entries, .. }) => {
                for (r, row) in entries {
                    let dst = &mut a.as_mut_slice()[r * cols..(r + 1) * cols];
                    for (d, s) in dst.iter_mut().zip(&row) {
                        *d += s;
                    }
                }
            }
            (this @ GradSlot::SparseRows { .. }, GradSlot::Dense(b)) => {
                let mut dense = this.to_dense_like(&b);
                dense.axpy(1.0, &b);
                *this = GradSlot::Dense(dense);
            }
            (
                GradSlot::SparseRows {
                    entries: a, cols, ..
                },
                GradSlot::SparseRows { entries: b, .. },
            ) => {
                for (r, row) in b {
                    match a.entry(r) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            for (d, s) in e.get_mut().iter_mut().zip(&row) {
                                *d += s;
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(row);
                        }
                    }
                }
                let _ = cols;
            }
        }
    }

    fn to_dense_like(&self, like: &Tensor) -> Tensor {
        match self {
            GradSlot::Dense(t) => t.clone(),
            GradSlot::SparseRows { cols, entries, .. } => {
                let mut out = Tensor::zeros(like.dims());
                for (&r, row) in entries {
                    let dst = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
                    dst.copy_from_slice(row);
                }
                out
            }
        }
    }

    /// Materializes the gradient as a dense tensor of the given shape.
    pub fn to_dense(&self, dims: &[usize]) -> Tensor {
        match self {
            GradSlot::Dense(t) => {
                assert_eq!(t.dims(), dims, "gradient shape mismatch");
                t.clone()
            }
            GradSlot::SparseRows {
                rows,
                cols,
                entries,
            } => {
                assert_eq!(dims, &[*rows, *cols], "gradient shape mismatch");
                let mut out = Tensor::zeros(dims);
                for (&r, row) in entries {
                    let dst = &mut out.as_mut_slice()[r * cols..(r + 1) * cols];
                    dst.copy_from_slice(row);
                }
                out
            }
        }
    }
}

/// Gradients produced by one backward pass, keyed by parameter.
#[derive(Default, Debug)]
pub struct Gradients {
    slots: HashMap<ParamId, GradSlot>,
}

impl Gradients {
    /// Creates an empty gradient set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `slot` into the gradient of `id`.
    pub fn accumulate(&mut self, id: ParamId, slot: GradSlot) {
        match self.slots.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(slot),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(slot);
            }
        }
    }

    /// Merges another gradient set (e.g. from another minibatch sample).
    pub fn merge(&mut self, other: Gradients) {
        for (id, slot) in other.slots {
            self.accumulate(id, slot);
        }
    }

    /// Scales every gradient by `s` (used to average over a minibatch).
    pub fn scale(&mut self, s: f32) {
        for slot in self.slots.values_mut() {
            match slot {
                GradSlot::Dense(t) => {
                    for v in t.as_mut_slice() {
                        *v *= s;
                    }
                }
                GradSlot::SparseRows { entries, .. } => {
                    for row in entries.values_mut() {
                        for v in row {
                            *v *= s;
                        }
                    }
                }
            }
        }
    }

    /// The gradient slot for a parameter, if any gradient reached it.
    pub fn get(&self, id: ParamId) -> Option<&GradSlot> {
        self.slots.get(&id)
    }

    /// Iterates over `(param, slot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &GradSlot)> {
        self.slots.iter().map(|(&k, v)| (k, v))
    }

    /// Number of parameters that received gradient.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no gradient was produced.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Global L2 norm across all slots (for gradient clipping).
    pub fn global_norm(&self) -> f32 {
        let mut acc = 0.0f64;
        for slot in self.slots.values() {
            match slot {
                GradSlot::Dense(t) => {
                    acc += t
                        .as_slice()
                        .iter()
                        .map(|&v| (v as f64) * (v as f64))
                        .sum::<f64>()
                }
                GradSlot::SparseRows { entries, .. } => {
                    for row in entries.values() {
                        acc += row.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
                    }
                }
            }
        }
        acc.sqrt() as f32
    }

    /// Rescales all gradients so the global norm is at most `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
        }
    }
}

impl Graph {
    /// Runs reverse-mode differentiation from the scalar node `loss` and
    /// returns the parameter gradients. Panics when `loss` is not a scalar.
    pub fn backward(&self, loss: VarId) -> Gradients {
        assert_eq!(
            self.value(loss).numel(),
            1,
            "backward seed must be scalar, got {}",
            self.value(loss).shape()
        );

        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[loss.0] = Some(Tensor::from_vec(vec![1.0], self.value(loss).dims()));

        let mut out = Gradients::new();

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            let pv = |k: usize| self.value(node.parents[k]);
            let give = |grads: &mut Vec<Option<Tensor>>, k: usize, t: Tensor| {
                let pid = node.parents[k].0;
                match &mut grads[pid] {
                    Some(existing) => existing.axpy(1.0, &t),
                    slot @ None => *slot = Some(t),
                }
            };

            match &node.op {
                Op::Input => {}
                Op::Param(pid) => {
                    out.accumulate(*pid, GradSlot::Dense(g));
                }
                Op::Add => {
                    give(&mut grads, 0, g.clone());
                    give(&mut grads, 1, g);
                }
                Op::Sub => {
                    give(&mut grads, 0, g.clone());
                    give(&mut grads, 1, g.scale(-1.0));
                }
                Op::Mul => {
                    give(&mut grads, 0, g.mul(pv(1)));
                    give(&mut grads, 1, g.mul(pv(0)));
                }
                Op::Neg => give(&mut grads, 0, g.scale(-1.0)),
                Op::Scale(s) => give(&mut grads, 0, g.scale(*s)),
                Op::MatMul => {
                    // C = A B: dA = dC Bᵀ, dB = Aᵀ dC.
                    let da = g.matmul(&pv(1).transpose());
                    let db = pv(0).transpose().matmul(&g);
                    give(&mut grads, 0, da);
                    give(&mut grads, 1, db);
                }
                Op::LinearAct(act) => {
                    // y = act(W x + b): with dz = g ⊙ act'(y),
                    // dW = dz xᵀ (outer product), dx = Wᵀ dz, db = dz.
                    let y = &node.value;
                    let w = pv(0);
                    let x = pv(1);
                    let (m, k) = (w.dim(0), w.dim(1));
                    let dz: Vec<f32> = g
                        .as_slice()
                        .iter()
                        .zip(y.as_slice())
                        .map(|(&gv, &yv)| gv * act.derivative_from_output(yv))
                        .collect();
                    let xs = x.as_slice();
                    let ws = w.as_slice();
                    let mut dw = vec![0.0f32; m * k];
                    let mut dx = vec![0.0f32; k];
                    for (i, &d) in dz.iter().enumerate() {
                        let wrow = &ws[i * k..(i + 1) * k];
                        let drow = &mut dw[i * k..(i + 1) * k];
                        for ((dwv, dxv), (&wv, &xv)) in
                            drow.iter_mut().zip(&mut dx).zip(wrow.iter().zip(xs))
                        {
                            *dwv = d * xv;
                            *dxv += d * wv;
                        }
                    }
                    give(&mut grads, 0, Tensor::from_vec(dw, &[m, k]));
                    give(&mut grads, 1, Tensor::from_vec(dx, x.dims()));
                    give(&mut grads, 2, Tensor::from_vec(dz, &[m]));
                }
                Op::AddBiasRows => {
                    give(&mut grads, 0, g.clone());
                    // Bias gradient: column sums.
                    let cols = g.dim(1);
                    let mut db = vec![0.0f32; cols];
                    for r in 0..g.dim(0) {
                        for (d, &v) in db.iter_mut().zip(g.row(r)) {
                            *d += v;
                        }
                    }
                    give(&mut grads, 1, Tensor::from_vec(db, &[cols]));
                }
                Op::Sigmoid => {
                    let y = &node.value;
                    let dg = g
                        .as_slice()
                        .iter()
                        .zip(y.as_slice())
                        .map(|(&gv, &yv)| gv * yv * (1.0 - yv))
                        .collect();
                    give(&mut grads, 0, Tensor::from_vec(dg, g.dims()));
                }
                Op::Tanh => {
                    let y = &node.value;
                    let dg = g
                        .as_slice()
                        .iter()
                        .zip(y.as_slice())
                        .map(|(&gv, &yv)| gv * (1.0 - yv * yv))
                        .collect();
                    give(&mut grads, 0, Tensor::from_vec(dg, g.dims()));
                }
                Op::Relu => {
                    let x = pv(0);
                    let dg = g
                        .as_slice()
                        .iter()
                        .zip(x.as_slice())
                        .map(|(&gv, &xv)| if xv > 0.0 { gv } else { 0.0 })
                        .collect();
                    give(&mut grads, 0, Tensor::from_vec(dg, g.dims()));
                }
                Op::Abs => {
                    let x = pv(0);
                    let dg = g
                        .as_slice()
                        .iter()
                        .zip(x.as_slice())
                        .map(|(&gv, &xv)| gv * xv.signum())
                        .collect();
                    give(&mut grads, 0, Tensor::from_vec(dg, g.dims()));
                }
                Op::Sqrt => {
                    let y = &node.value;
                    let dg = g
                        .as_slice()
                        .iter()
                        .zip(y.as_slice())
                        .map(|(&gv, &yv)| gv * 0.5 / yv.max(1e-12))
                        .collect();
                    give(&mut grads, 0, Tensor::from_vec(dg, g.dims()));
                }
                Op::ConcatVecs(lens) => {
                    let mut off = 0;
                    for (k, &len) in lens.iter().enumerate() {
                        let part = g.as_slice()[off..off + len].to_vec();
                        give(&mut grads, k, Tensor::from_vec(part, &[len]));
                        off += len;
                    }
                }
                Op::StackRows => {
                    let cols = g.dim(1);
                    for k in 0..node.parents.len() {
                        give(&mut grads, k, Tensor::from_vec(g.row(k).to_vec(), &[cols]));
                    }
                }
                Op::MeanRows => {
                    let rows = pv(0).dim(0);
                    let cols = pv(0).dim(1);
                    let inv = 1.0 / rows as f32;
                    let mut dg = Tensor::zeros(&[rows, cols]);
                    for r in 0..rows {
                        for (d, &gv) in dg.row_mut(r).iter_mut().zip(g.as_slice()) {
                            *d = gv * inv;
                        }
                    }
                    give(&mut grads, 0, dg);
                }
                Op::SumAll => {
                    give(&mut grads, 0, Tensor::full(pv(0).dims(), g.item()));
                }
                Op::MeanAll => {
                    let inv = 1.0 / pv(0).numel() as f32;
                    give(&mut grads, 0, Tensor::full(pv(0).dims(), g.item() * inv));
                }
                Op::Reshape(old_dims) => {
                    give(&mut grads, 0, g.reshape(old_dims));
                }
                Op::Gather(indices) => {
                    // If the parent is a parameter leaf, hand the optimizer a
                    // sparse slot directly and skip the dense materialization.
                    let parent = &self.nodes[node.parents[0].0];
                    let cols = parent.value.dim(1);
                    let rows = parent.value.dim(0);
                    if let Op::Param(pid) = parent.op {
                        let mut entries: HashMap<usize, Vec<f32>> = HashMap::new();
                        for (k, &row_idx) in indices.iter().enumerate() {
                            let src = &g.as_slice()[k * cols..(k + 1) * cols];
                            let e = entries.entry(row_idx).or_insert_with(|| vec![0.0; cols]);
                            for (d, &s) in e.iter_mut().zip(src) {
                                *d += s;
                            }
                        }
                        out.accumulate(
                            pid,
                            GradSlot::SparseRows {
                                rows,
                                cols,
                                entries,
                            },
                        );
                    } else {
                        let mut dg = Tensor::zeros(&[rows, cols]);
                        for (k, &row_idx) in indices.iter().enumerate() {
                            let src = &g.as_slice()[k * cols..(k + 1) * cols];
                            let dst = dg.row_mut(row_idx);
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += s;
                            }
                        }
                        give(&mut grads, 0, dg);
                    }
                }
                Op::Conv2d { kh, kw } => {
                    let gi = crate::conv::conv2d_grad_input(&g, pv(1));
                    let gk = crate::conv::conv2d_grad_kernel(&g, pv(0), *kh, *kw);
                    give(&mut grads, 0, gi);
                    give(&mut grads, 1, gk);
                }
                Op::BatchNorm { mu, var, eps } => {
                    // y = gamma * (x - mu) * inv_std + beta, with mu/var constant.
                    let x = pv(0);
                    let gamma = pv(1);
                    let c = x.dim(0);
                    let hw = x.dim(1) * x.dim(2);
                    let mut dx = Tensor::zeros(x.dims());
                    let mut dgamma = vec![0.0f32; c];
                    let mut dbeta = vec![0.0f32; c];
                    for ch in 0..c {
                        let inv_std = 1.0 / (var[ch] + eps).sqrt();
                        let gch = gamma.as_slice()[ch];
                        for k in 0..hw {
                            let idx = ch * hw + k;
                            let gv = g.as_slice()[idx];
                            let xhat = (x.as_slice()[idx] - mu[ch]) * inv_std;
                            dx.as_mut_slice()[idx] = gv * gch * inv_std;
                            dgamma[ch] += gv * xhat;
                            dbeta[ch] += gv;
                        }
                    }
                    give(&mut grads, 0, dx);
                    give(&mut grads, 1, Tensor::from_vec(dgamma, &[c]));
                    give(&mut grads, 2, Tensor::from_vec(dbeta, &[c]));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;

    #[test]
    fn simple_chain_gradient() {
        // loss = mean(|w*x - y|) with w=2, x=[1,2], y=[5,5]
        // pred = [2,4], diff = [-3,-1], grad wrt w = mean(sign(d)*x) = -(1+2)/2.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![2.0], &[1]));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let y = g.input(Tensor::from_vec(vec![5.0, 5.0], &[2]));
        let wmat = g.reshape(wv, &[1, 1]);
        let xmat = g.reshape(x, &[2, 1]);
        let pred = g.matmul(xmat, wmat);
        let predv = g.reshape(pred, &[2]);
        let loss = g.mean_abs_error(predv, y);
        let grads = g.backward(loss);
        let gw = grads.get(w).unwrap().to_dense(&[1]);
        deepod_tensor::assert_close(gw.as_slice(), &[-1.5], 1e-5);
    }

    #[test]
    fn gather_produces_sparse_slot() {
        let mut store = ParamStore::new();
        let emb = store.register("emb", Tensor::ones(&[10, 4]));
        let mut g = Graph::new();
        let e = g.param(&store, emb);
        let picked = g.gather(e, &[3, 3, 7]);
        let s = g.sum_all(picked);
        let grads = g.backward(s);
        match grads.get(emb).unwrap() {
            GradSlot::SparseRows {
                entries,
                rows,
                cols,
            } => {
                assert_eq!((*rows, *cols), (10, 4));
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[&3], vec![2.0; 4]); // row 3 gathered twice
                assert_eq!(entries[&7], vec![1.0; 4]);
            }
            other => panic!("expected sparse slot, got {other:?}"),
        }
    }

    #[test]
    fn merge_and_scale() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::zeros(&[2]));
        let mut a = Gradients::new();
        a.accumulate(w, GradSlot::Dense(Tensor::from_vec(vec![1.0, 2.0], &[2])));
        let mut b = Gradients::new();
        b.accumulate(w, GradSlot::Dense(Tensor::from_vec(vec![3.0, 4.0], &[2])));
        a.merge(b);
        a.scale(0.5);
        let d = a.get(w).unwrap().to_dense(&[2]);
        assert_eq!(d.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn sparse_merges_with_dense() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::zeros(&[3, 2]));
        let mut a = Gradients::new();
        let mut entries = HashMap::new();
        entries.insert(1usize, vec![1.0, 1.0]);
        a.accumulate(
            w,
            GradSlot::SparseRows {
                rows: 3,
                cols: 2,
                entries,
            },
        );
        let mut b = Gradients::new();
        b.accumulate(w, GradSlot::Dense(Tensor::ones(&[3, 2])));
        a.merge(b);
        let d = a.get(w).unwrap().to_dense(&[3, 2]);
        assert_eq!(d.as_slice(), &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn clip_global_norm_bounds() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::zeros(&[2]));
        let mut gr = Gradients::new();
        gr.accumulate(w, GradSlot::Dense(Tensor::from_vec(vec![3.0, 4.0], &[2])));
        assert!((gr.global_norm() - 5.0).abs() < 1e-6);
        gr.clip_global_norm(1.0);
        assert!((gr.global_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "backward seed must be scalar")]
    fn non_scalar_seed_panics() {
        let mut g = Graph::new();
        let a = g.input(Tensor::zeros(&[2]));
        let _ = g.backward(a);
    }
}

//! Tape-based automatic differentiation and neural-network layers for the
//! DeepOD travel-time-estimation stack.
//!
//! The paper's model (SIGMOD '20) is built from a small, fixed set of
//! operations: fully-connected layers, an LSTM, 2-D convolutions with
//! `(3,1)`/`(1,1)` kernels, batch normalization, embedding lookups, average
//! pooling, concatenation, and two losses (MAE and a Euclidean
//! representation-binding loss), all trained with Adam. This crate
//! implements exactly that set as a define-by-run tape:
//!
//! * [`ParamStore`] owns all trainable tensors and their Adam state.
//! * [`Graph`] records a forward computation over [`VarId`] handles; calling
//!   [`Graph::backward`] produces [`Gradients`] keyed by parameter.
//! * [`AdamOptimizer`] applies updates (with lazy/sparse handling for
//!   embedding rows so a lookup of 3 segments does not touch a 10 000-row
//!   matrix).
//! * The `layers` module packages the paper's recurring blocks: two-layer
//!   MLPs (Eq. 11/17/18/19/20), the LSTM unit (Eq. 12–16), the ResNet-style
//!   interval convolution block (Eq. 5–8) and batch normalization.
//!
//! Every op's backward pass is verified against central finite differences
//! in `gradcheck` tests.
//!
//! # Example: fit a line
//!
//! ```
//! use deepod_nn::{Graph, ParamStore, AdamOptimizer};
//! use deepod_tensor::{Tensor, rng_from_seed};
//!
//! let mut rng = rng_from_seed(0);
//! let mut store = ParamStore::new();
//! let w = store.register("w", Tensor::rand_uniform(&[1, 1], -0.1, 0.1, &mut rng));
//! let b = store.register("b", Tensor::zeros(&[1]));
//! let mut opt = AdamOptimizer::new(0.05);
//!
//! for _ in 0..300 {
//!     let mut g = Graph::new();
//!     let x = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]));
//!     let y = g.input(Tensor::from_vec(vec![3.0, 5.0, 7.0], &[3, 1]));
//!     let wv = g.param(&store, w);
//!     let bv = g.param(&store, b);
//!     let xw = g.matmul(x, wv);
//!     let pred = g.add_bias_rows(xw, bv);
//!     let loss = g.mean_abs_error(pred, y);
//!     let grads = g.backward(loss);
//!     opt.step(&mut store, &grads);
//! }
//! let wv = store.value(w).as_slice()[0];
//! assert!((wv - 2.0).abs() < 0.2, "w = {wv}");
//! ```

mod backward;
mod conv;
mod graph;
mod optim;
mod param;

pub mod layers;

pub use backward::{GradSlot, Gradients};
pub use conv::{conv2d_forward, conv2d_grad_input, conv2d_grad_kernel};
pub use graph::{Graph, VarId};
pub use optim::{AdamOptimizer, AdamParamState, AdamSnapshot, LrSchedule, SgdOptimizer};
pub use param::{ParamId, ParamStore};

#[cfg(test)]
mod gradcheck;
#[cfg(test)]
mod layers_tests;

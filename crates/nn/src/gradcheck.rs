//! Finite-difference verification of every backward rule.
//!
//! For each op we build a small graph `loss = f(params)`, compute analytic
//! gradients via the tape, and compare against central differences of the
//! re-executed forward pass.

use crate::graph::{Graph, VarId};
use crate::param::{ParamId, ParamStore};
use deepod_tensor::{rng_from_seed, Tensor};

/// Checks `d loss / d param` for every parameter against central finite
/// differences. `build` must construct the same graph for a given store.
fn check(store: &mut ParamStore, build: impl Fn(&mut Graph, &ParamStore) -> VarId, tol: f32) {
    let mut g = Graph::new();
    let loss = build(&mut g, store);
    let grads = g.backward(loss);
    drop(g);

    let eps = 1e-2f32;
    let ids: Vec<ParamId> = store.ids().collect();
    for pid in ids {
        let dims = store.value(pid).dims().to_vec();
        let analytic = match grads.get(pid) {
            Some(slot) => slot.to_dense(&dims),
            None => Tensor::zeros(&dims),
        };
        for i in 0..store.value(pid).numel() {
            let orig = store.value(pid).as_slice()[i];

            store.value_mut(pid).as_mut_slice()[i] = orig + eps;
            let mut gp = Graph::new();
            let lp = build(&mut gp, store);
            let fp = gp.value(lp).item();
            drop(gp);

            store.value_mut(pid).as_mut_slice()[i] = orig - eps;
            let mut gm = Graph::new();
            let lm = build(&mut gm, store);
            let fm = gm.value(lm).item();
            drop(gm);

            store.value_mut(pid).as_mut_slice()[i] = orig;

            let fd = (fp - fm) / (2.0 * eps);
            let an = analytic.as_slice()[i];
            let scale = 1.0f32.max(fd.abs()).max(an.abs());
            assert!(
                (fd - an).abs() <= tol * scale,
                "param {} elem {i}: finite-diff {fd} vs analytic {an}",
                store.name(pid)
            );
        }
    }
}

fn rand_param(store: &mut ParamStore, name: &str, dims: &[usize], seed: u64) -> ParamId {
    let mut rng = rng_from_seed(seed);
    // Keep values away from ReLU/abs kinks.
    let t = Tensor::rand_uniform(dims, 0.2, 1.0, &mut rng);
    store.register(name, t)
}

fn rand_param_signed(store: &mut ParamStore, name: &str, dims: &[usize], seed: u64) -> ParamId {
    let mut rng = rng_from_seed(seed);
    let t = Tensor::rand_uniform(dims, -1.0, 1.0, &mut rng);
    store.register(name, t)
}

#[test]
fn grad_matmul_chain() {
    let mut store = ParamStore::new();
    let a = rand_param_signed(&mut store, "a", &[3, 4], 1);
    let b = rand_param_signed(&mut store, "b", &[4, 2], 2);
    check(
        &mut store,
        |g, s| {
            let av = g.param(s, a);
            let bv = g.param(s, b);
            let c = g.matmul(av, bv);
            let t = g.tanh(c);
            g.sum_all(t)
        },
        2e-2,
    );
}

#[test]
fn grad_elementwise_ops() {
    let mut store = ParamStore::new();
    let a = rand_param(&mut store, "a", &[5], 3);
    let b = rand_param(&mut store, "b", &[5], 4);
    check(
        &mut store,
        |g, s| {
            let av = g.param(s, a);
            let bv = g.param(s, b);
            let m = g.mul(av, bv);
            let d = g.sub(m, av);
            let sm = g.sigmoid(d);
            let sc = g.scale(sm, 1.5);
            g.mean_all(sc)
        },
        2e-2,
    );
}

#[test]
fn grad_sqrt_abs() {
    let mut store = ParamStore::new();
    let a = rand_param(&mut store, "a", &[4], 5);
    check(
        &mut store,
        |g, s| {
            let av = g.param(s, a);
            let sq = g.mul(av, av);
            let r = g.sqrt(sq);
            let ab = g.abs(r);
            g.sum_all(ab)
        },
        2e-2,
    );
}

#[test]
fn grad_linear_relu_mlp() {
    let mut store = ParamStore::new();
    let w1 = rand_param_signed(&mut store, "w1", &[4, 3], 6);
    let b1 = rand_param(&mut store, "b1", &[4], 7);
    let w2 = rand_param_signed(&mut store, "w2", &[1, 4], 8);
    let b2 = rand_param(&mut store, "b2", &[1], 9);
    check(
        &mut store,
        |g, s| {
            let x = g.input(Tensor::from_vec(vec![0.3, -0.4, 0.9], &[3]));
            let w1v = g.param(s, w1);
            let b1v = g.param(s, b1);
            let h = g.linear(w1v, x, b1v);
            let h = g.relu(h);
            let w2v = g.param(s, w2);
            let b2v = g.param(s, b2);
            let y = g.linear(w2v, h, b2v);
            g.sum_all(y)
        },
        2e-2,
    );
}

#[test]
fn grad_fused_linear_act_all_activations() {
    use deepod_tensor::Activation;
    for (k, act) in [
        Activation::Identity,
        Activation::Relu,
        Activation::Sigmoid,
        Activation::Tanh,
    ]
    .into_iter()
    .enumerate()
    {
        let mut store = ParamStore::new();
        let w = rand_param_signed(&mut store, "w", &[4, 3], 40 + k as u64);
        let b = rand_param(&mut store, "b", &[4], 50 + k as u64);
        check(
            &mut store,
            |g, s| {
                let x = g.input(Tensor::from_vec(vec![0.7, -0.2, 0.4], &[3]));
                let wv = g.param(s, w);
                let bv = g.param(s, b);
                let y = g.linear_act(wv, x, bv, act);
                g.sum_all(y)
            },
            2e-2,
        );
    }
}

#[test]
fn fused_linear_act_bit_matches_unfused_chain() {
    // The fused node must reproduce the former reshape→matmul→reshape→add
    // (+activation) chain exactly — values AND gradients — so fusing the
    // layers cannot perturb trained models.
    use deepod_tensor::Activation;
    type ActBuilder = fn(&mut Graph, VarId) -> VarId;
    let acts: [(Activation, ActBuilder); 3] = [
        (Activation::Relu, |g, v| g.relu(v)),
        (Activation::Sigmoid, |g, v| g.sigmoid(v)),
        (Activation::Tanh, |g, v| g.tanh(v)),
    ];
    for (i, (act, unfused_act)) in acts.into_iter().enumerate() {
        let mut store = ParamStore::new();
        let w = rand_param_signed(&mut store, "w", &[5, 4], 60 + i as u64);
        let b = rand_param_signed(&mut store, "b", &[5], 70 + i as u64);
        let xt = Tensor::from_vec(vec![0.3, -0.8, 0.1, 0.9], &[4]);

        let mut gf = Graph::new();
        let x = gf.input(xt.clone());
        let wv = gf.param(&store, w);
        let bv = gf.param(&store, b);
        let yf = gf.linear_act(wv, x, bv, act);
        let lf = gf.sum_all(yf);
        let gradf = gf.backward(lf);

        let mut gu = Graph::new();
        let x = gu.input(xt);
        let wv = gu.param(&store, w);
        let bv = gu.param(&store, b);
        let xm = gu.reshape(x, &[4, 1]);
        let wx = gu.matmul(wv, xm);
        let wxv = gu.reshape(wx, &[5]);
        let lin = gu.add(wxv, bv);
        let yu = unfused_act(&mut gu, lin);
        let lu = gu.sum_all(yu);
        let gradu = gu.backward(lu);

        assert_eq!(
            gf.value(yf).as_slice(),
            gu.value(yu).as_slice(),
            "{act:?} values"
        );
        for pid in [w, b] {
            let dims = store.value(pid).dims().to_vec();
            assert_eq!(
                gradf.get(pid).unwrap().to_dense(&dims).as_slice(),
                gradu.get(pid).unwrap().to_dense(&dims).as_slice(),
                "{act:?} grad of {}",
                store.name(pid)
            );
        }
    }
}

#[test]
fn grad_concat_stack_meanrows() {
    let mut store = ParamStore::new();
    let a = rand_param_signed(&mut store, "a", &[3], 10);
    let b = rand_param_signed(&mut store, "b", &[3], 11);
    check(
        &mut store,
        |g, s| {
            let av = g.param(s, a);
            let bv = g.param(s, b);
            let m = g.stack_rows(&[av, bv]);
            let pooled = g.mean_rows(m);
            let c = g.concat(&[pooled, av]);
            let t = g.tanh(c);
            g.sum_all(t)
        },
        2e-2,
    );
}

#[test]
fn grad_gather() {
    let mut store = ParamStore::new();
    let table = rand_param_signed(&mut store, "emb", &[6, 3], 12);
    check(
        &mut store,
        |g, s| {
            let t = g.param(s, table);
            let picked = g.gather(t, &[1, 4, 1]);
            let sq = g.mul(picked, picked);
            g.sum_all(sq)
        },
        2e-2,
    );
}

#[test]
fn grad_conv2d() {
    let mut store = ParamStore::new();
    let x = rand_param_signed(&mut store, "x", &[2, 4, 3], 13);
    let k = rand_param_signed(&mut store, "k", &[3, 2, 3, 1], 14);
    check(
        &mut store,
        |g, s| {
            let xv = g.param(s, x);
            let kv = g.param(s, k);
            let y = g.conv2d(xv, kv);
            let t = g.tanh(y);
            g.sum_all(t)
        },
        2e-2,
    );
}

#[test]
fn grad_batchnorm() {
    let mut store = ParamStore::new();
    let x = rand_param_signed(&mut store, "x", &[2, 3, 2], 15);
    let gamma = rand_param(&mut store, "gamma", &[2], 16);
    let beta = rand_param_signed(&mut store, "beta", &[2], 17);
    check(
        &mut store,
        |g, s| {
            let xv = g.param(s, x);
            let gv = g.param(s, gamma);
            let bv = g.param(s, beta);
            let y = g.batch_norm(xv, gv, bv, &[0.1, -0.2], &[1.5, 0.8], 1e-5);
            let t = g.tanh(y);
            g.sum_all(t)
        },
        2e-2,
    );
}

#[test]
fn grad_euclidean_distance() {
    let mut store = ParamStore::new();
    let a = rand_param_signed(&mut store, "a", &[4], 18);
    let b = rand_param_signed(&mut store, "b", &[4], 19);
    check(
        &mut store,
        |g, s| {
            let av = g.param(s, a);
            let bv = g.param(s, b);
            g.euclidean_distance(av, bv)
        },
        2e-2,
    );
}

#[test]
fn grad_lstm_step() {
    use crate::layers::LstmCell;
    let mut rng = rng_from_seed(20);
    let mut store = ParamStore::new();
    let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
    check(
        &mut store,
        |g, s| {
            let x1 = g.input(Tensor::from_vec(vec![0.5, -0.3], &[2]));
            let x2 = g.input(Tensor::from_vec(vec![-0.2, 0.8], &[2]));
            let h = cell.run_sequence(g, s, &[x1, x2]);
            g.sum_all(h)
        },
        3e-2,
    );
}

#[test]
fn grad_add_bias_rows() {
    let mut store = ParamStore::new();
    let m = rand_param_signed(&mut store, "m", &[3, 2], 21);
    let b = rand_param_signed(&mut store, "b", &[2], 22);
    check(
        &mut store,
        |g, s| {
            let mv = g.param(s, m);
            let bv = g.param(s, b);
            let y = g.add_bias_rows(mv, bv);
            let t = g.sigmoid(y);
            g.sum_all(t)
        },
        2e-2,
    );
}

//! Optimizers: Adam (the paper's choice, Alg. 1 line 13) with lazy sparse
//! row updates, plain SGD for the graph-embedding pre-training, and the
//! paper's learning-rate schedule (initial 0.01, divided by 5 every 2
//! epochs — §6.1).

use crate::backward::{GradSlot, Gradients};
use crate::param::{ParamId, ParamStore};
use deepod_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Learning-rate schedule.
#[derive(Clone, Debug)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant(f32),
    /// `base / divisor^(epoch / every)` — the paper reduces the LR by 1/5
    /// every 2 epochs starting from 0.01.
    StepDecay {
        base: f32,
        divisor: f32,
        every_epochs: usize,
    },
}

impl LrSchedule {
    /// The paper's schedule: 0.01 divided by 5 every 2 epochs.
    pub fn paper_default() -> Self {
        LrSchedule::StepDecay {
            base: 0.01,
            divisor: 5.0,
            every_epochs: 2,
        }
    }

    /// Learning rate for a (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant(lr) => *lr,
            LrSchedule::StepDecay {
                base,
                divisor,
                every_epochs,
            } => base / divisor.powi((epoch / every_epochs) as i32),
        }
    }
}

#[derive(Clone, Default)]
struct AdamState {
    m: Option<Tensor>,
    v: Option<Tensor>,
    /// Per-row step counters for lazily-updated embedding rows.
    row_steps: HashMap<usize, u64>,
    step: u64,
}

/// Serializable snapshot of one parameter's Adam moment state
/// (see [`AdamSnapshot`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdamParamState {
    /// Index of the parameter in its [`ParamStore`] ([`ParamId::index`]).
    pub param: usize,
    /// First-moment estimate, if this parameter has been updated densely.
    pub m: Option<Tensor>,
    /// Second-moment estimate.
    pub v: Option<Tensor>,
    /// Dense bias-correction step counter.
    pub step: u64,
    /// Per-row bias-correction counters for lazily-updated embedding rows,
    /// sorted by row index so the serialized form is deterministic.
    pub row_steps: Vec<(usize, u64)>,
}

/// Full serializable optimizer state: hyper-parameters plus the moment
/// tensors and bias-correction counters of every parameter the optimizer
/// has touched. [`AdamOptimizer::snapshot`] / [`AdamOptimizer::restore`]
/// round-trip through this so a checkpointed training run resumes with
/// bit-identical update math.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdamSnapshot {
    /// Current learning rate (re-derived from the schedule each epoch, but
    /// captured for completeness).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Per-parameter moment state, sorted by parameter index.
    pub states: Vec<AdamParamState>,
}

/// Adam optimizer (Kingma & Ba) with per-parameter moment state.
///
/// Dense gradients get the textbook update. Sparse row gradients (embedding
/// lookups) get *lazy* Adam: only the touched rows' moments and values are
/// updated, with per-row bias-correction counters, so a minibatch touching
/// 50 of 10 000 road segments costs O(50·d) instead of O(10 000·d).
pub struct AdamOptimizer {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Decoupled (AdamW-style) weight decay; 0 = off.
    weight_decay: f32,
    states: HashMap<ParamId, AdamState>,
}

impl AdamOptimizer {
    /// Creates an Adam optimizer with default betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        AdamOptimizer {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            states: HashMap::new(),
        }
    }

    /// Enables decoupled weight decay (`value -= lr·λ·value` per update,
    /// applied only to parameters that received gradient this step — for
    /// embedding tables that means only the touched rows).
    pub fn set_weight_decay(&mut self, wd: f32) {
        self.weight_decay = wd;
    }

    /// Updates the learning rate (driven by [`LrSchedule`]).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Captures the complete optimizer state (hyper-parameters + moments)
    /// in a deterministic, serializable form.
    pub fn snapshot(&self) -> AdamSnapshot {
        let mut states: Vec<AdamParamState> = self
            .states
            .iter()
            .map(|(pid, s)| {
                let mut row_steps: Vec<(usize, u64)> =
                    s.row_steps.iter().map(|(&r, &n)| (r, n)).collect();
                row_steps.sort_unstable();
                AdamParamState {
                    param: pid.index(),
                    m: s.m.clone(),
                    v: s.v.clone(),
                    step: s.step,
                    row_steps,
                }
            })
            .collect();
        states.sort_unstable_by_key(|s| s.param);
        AdamSnapshot {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            weight_decay: self.weight_decay,
            states,
        }
    }

    /// Replaces this optimizer's state with a [`snapshot`](Self::snapshot),
    /// resuming the exact update stream. The snapshot's parameter indices
    /// refer to the [`ParamStore`] the model was checkpointed with; stores
    /// are rebuilt in registration order on load, so the indices line up.
    pub fn restore(&mut self, snap: &AdamSnapshot) {
        self.lr = snap.lr;
        self.beta1 = snap.beta1;
        self.beta2 = snap.beta2;
        self.eps = snap.eps;
        self.weight_decay = snap.weight_decay;
        self.states = snap
            .states
            .iter()
            .map(|s| {
                (
                    ParamId(s.param),
                    AdamState {
                        m: s.m.clone(),
                        v: s.v.clone(),
                        row_steps: s.row_steps.iter().copied().collect(),
                        step: s.step,
                    },
                )
            })
            .collect();
    }

    /// Builds an optimizer directly from a snapshot.
    pub fn from_snapshot(snap: &AdamSnapshot) -> Self {
        let mut opt = AdamOptimizer::new(snap.lr);
        opt.restore(snap);
        opt
    }

    /// Applies one update step for every parameter with a gradient.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (pid, slot) in grads.iter() {
            if !store.is_trainable(pid) {
                continue;
            }
            let dims = store.value(pid).dims().to_vec();
            let state = self.states.entry(pid).or_default();
            match slot {
                GradSlot::Dense(g) => {
                    state.step += 1;
                    let m = state.m.get_or_insert_with(|| Tensor::zeros(&dims));
                    let v = state.v.get_or_insert_with(|| Tensor::zeros(&dims));
                    let t = state.step as i32;
                    let bc1 = 1.0 - self.beta1.powi(t);
                    let bc2 = 1.0 - self.beta2.powi(t);
                    let value = store.value_mut(pid);
                    for i in 0..value.numel() {
                        let gi = g.as_slice()[i];
                        let mi = &mut m.as_mut_slice()[i];
                        *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                        let vi = &mut v.as_mut_slice()[i];
                        *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                        let mhat = *mi / bc1;
                        let vhat = *vi / bc2;
                        let slot = &mut value.as_mut_slice()[i];
                        *slot -=
                            self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *slot);
                    }
                }
                GradSlot::SparseRows { cols, entries, .. } => {
                    let m = state.m.get_or_insert_with(|| Tensor::zeros(&dims));
                    let v = state.v.get_or_insert_with(|| Tensor::zeros(&dims));
                    let value = store.value_mut(pid);
                    for (&row, grow) in entries {
                        let steps = state.row_steps.entry(row).or_insert(0);
                        *steps += 1;
                        let t = *steps as i32;
                        let bc1 = 1.0 - self.beta1.powi(t);
                        let bc2 = 1.0 - self.beta2.powi(t);
                        let base = row * cols;
                        for (j, &gi) in grow.iter().enumerate().take(*cols) {
                            let mi = &mut m.as_mut_slice()[base + j];
                            *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                            let vi = &mut v.as_mut_slice()[base + j];
                            *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                            let mhat = *mi / bc1;
                            let vhat = *vi / bc2;
                            let slot = &mut value.as_mut_slice()[base + j];
                            *slot -= self.lr
                                * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *slot);
                        }
                    }
                }
            }
        }
    }
}

/// Plain SGD, used by the skip-gram graph-embedding pre-training where Adam
/// state over huge co-occurrence matrices is unnecessary.
pub struct SgdOptimizer {
    lr: f32,
}

impl SgdOptimizer {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        SgdOptimizer { lr }
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies `value -= lr * grad` for every parameter with a gradient.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (pid, slot) in grads.iter() {
            if !store.is_trainable(pid) {
                continue;
            }
            match slot {
                GradSlot::Dense(g) => store.value_mut(pid).axpy(-self.lr, g),
                GradSlot::SparseRows { cols, entries, .. } => {
                    let value = store.value_mut(pid);
                    for (&row, grow) in entries {
                        let dst = &mut value.as_mut_slice()[row * cols..(row + 1) * cols];
                        for (d, &s) in dst.iter_mut().zip(grow) {
                            *d -= self.lr * s;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::GradSlot;
    use crate::Graph;

    #[test]
    fn schedule_matches_paper() {
        let s = LrSchedule::paper_default();
        assert!((s.lr_at(0) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(1) - 0.01).abs() < 1e-9);
        assert!((s.lr_at(2) - 0.002).abs() < 1e-9);
        assert!((s.lr_at(4) - 0.0004).abs() < 1e-9);
        assert_eq!(LrSchedule::Constant(0.5).lr_at(100), 0.5);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (w - 3)^2 via its gradient 2(w - 3)
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![0.0], &[1]));
        let mut opt = AdamOptimizer::new(0.1);
        for _ in 0..200 {
            let wv = store.value(w).as_slice()[0];
            let mut g = Gradients::new();
            g.accumulate(
                w,
                GradSlot::Dense(Tensor::from_vec(vec![2.0 * (wv - 3.0)], &[1])),
            );
            opt.step(&mut store, &g);
        }
        let wv = store.value(w).as_slice()[0];
        assert!((wv - 3.0).abs() < 0.05, "w = {wv}");
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(vec![10.0], &[1]));
        let mut opt = SgdOptimizer::new(0.1);
        for _ in 0..100 {
            let wv = store.value(w).as_slice()[0];
            let mut g = Gradients::new();
            g.accumulate(
                w,
                GradSlot::Dense(Tensor::from_vec(vec![2.0 * (wv - 3.0)], &[1])),
            );
            opt.step(&mut store, &g);
        }
        let wv = store.value(w).as_slice()[0];
        assert!((wv - 3.0).abs() < 1e-3, "w = {wv}");
    }

    #[test]
    fn frozen_params_not_updated() {
        let mut store = ParamStore::new();
        let w = store.register_frozen("w", Tensor::from_vec(vec![1.0], &[1]));
        let mut opt = AdamOptimizer::new(0.1);
        let mut g = Gradients::new();
        g.accumulate(w, GradSlot::Dense(Tensor::from_vec(vec![5.0], &[1])));
        opt.step(&mut store, &g);
        assert_eq!(store.value(w).as_slice(), &[1.0]);
    }

    #[test]
    fn lazy_adam_only_touches_gathered_rows() {
        let mut store = ParamStore::new();
        let emb = store.register("emb", Tensor::ones(&[5, 2]));
        let mut opt = AdamOptimizer::new(0.1);

        let mut g = Graph::new();
        let e = g.param(&store, emb);
        let picked = g.gather(e, &[2]);
        let s = g.sum_all(picked);
        let grads = g.backward(s);
        opt.step(&mut store, &grads);

        let v = store.value(emb);
        // Rows 0,1,3,4 untouched; row 2 moved.
        for r in [0usize, 1, 3, 4] {
            assert_eq!(v.row(r), &[1.0, 1.0], "row {r} should be untouched");
        }
        assert!(v.row(2)[0] < 1.0);
    }

    #[test]
    fn snapshot_restore_resumes_identical_update_stream() {
        // Two optimizers: one runs 2N steps straight; the other runs N,
        // round-trips through a serialized snapshot, then runs N more. The
        // final parameter values must be bit-identical.
        let make = || {
            let mut store = ParamStore::new();
            let w = store.register("w", Tensor::from_vec(vec![5.0, -3.0], &[2]));
            let emb = store.register("emb", Tensor::ones(&[4, 2]));
            (store, w, emb)
        };
        let grad_at = |k: usize, w: ParamId, emb: ParamId| {
            let mut g = Gradients::new();
            g.accumulate(
                w,
                GradSlot::Dense(Tensor::from_vec(vec![0.3 * k as f32, -0.1], &[2])),
            );
            // Touch alternating embedding rows so lazy per-row counters are
            // exercised by the snapshot.
            g.accumulate(
                emb,
                GradSlot::SparseRows {
                    rows: 4,
                    cols: 2,
                    entries: [(k % 4, vec![0.5, 0.25])].into_iter().collect(),
                },
            );
            g
        };

        let (mut store_a, wa, ea) = make();
        let mut opt_a = AdamOptimizer::new(0.05);
        opt_a.set_weight_decay(1e-3);
        for k in 0..10 {
            opt_a.step(&mut store_a, &grad_at(k, wa, ea));
        }

        let (mut store_b, wb, eb) = make();
        let mut opt_b = AdamOptimizer::new(0.05);
        opt_b.set_weight_decay(1e-3);
        for k in 0..5 {
            opt_b.step(&mut store_b, &grad_at(k, wb, eb));
        }
        let json = serde_json::to_string(&opt_b.snapshot()).unwrap();
        let snap: AdamSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, opt_b.snapshot(), "snapshot serde round trip");
        let mut opt_b2 = AdamOptimizer::from_snapshot(&snap);
        for k in 5..10 {
            opt_b2.step(&mut store_b, &grad_at(k, wb, eb));
        }

        for (a, b) in [(wa, wb), (ea, eb)] {
            let va = store_a.value(a).as_slice();
            let vb = store_b.value(b).as_slice();
            let bits_a: Vec<u32> = va.iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u32> = vb.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "resumed optimizer diverged");
        }
    }

    #[test]
    fn end_to_end_regression_converges() {
        // y = 2x + 1 learned by a 1-unit linear model with Adam on the tape.
        let mut rng = deepod_tensor::rng_from_seed(42);
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::rand_uniform(&[1, 1], -0.1, 0.1, &mut rng));
        let b = store.register("b", Tensor::zeros(&[1]));
        let mut opt = AdamOptimizer::new(0.05);
        let xs = [0.0f32, 1.0, 2.0, 3.0, 4.0];
        for _ in 0..400 {
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let bv = g.param(&store, b);
            let x = g.input(Tensor::from_vec(xs.to_vec(), &[5, 1]));
            let t = g.input(Tensor::from_vec(
                xs.iter().map(|v| 2.0 * v + 1.0).collect(),
                &[5, 1],
            ));
            let wx = g.matmul(x, wv);
            let pred = g.add_bias_rows(wx, bv);
            let diff = g.sub(pred, t);
            let sq = g.mul(diff, diff);
            let loss = g.mean_all(sq);
            let grads = g.backward(loss);
            opt.step(&mut store, &grads);
        }
        let wv = store.value(w).as_slice()[0];
        let bv = store.value(b).as_slice()[0];
        assert!((wv - 2.0).abs() < 0.1, "w = {wv}");
        assert!((bv - 1.0).abs() < 0.2, "b = {bv}");
    }
}

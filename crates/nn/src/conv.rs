//! 2-D convolution kernels used by the Time Interval Encoder (§4.3) and the
//! External Features Encoder (§4.5).
//!
//! Layout conventions: inputs are `[in_c, h, w]`, kernels are
//! `[out_c, in_c, kh, kw]`, outputs `[out_c, h, w]`. Convolutions use
//! "same" zero padding (stride 1), which matches the paper's Eq. 5–7 where
//! a Δd×d_t tensor keeps its spatial size through the ResNet block.

use deepod_tensor::Tensor;

/// Forward 2-D convolution with same padding and stride 1.
pub fn conv2d_forward(input: &Tensor, kernel: &Tensor) -> Tensor {
    assert_eq!(input.rank(), 3, "conv input must be [in_c, h, w]");
    assert_eq!(
        kernel.rank(),
        4,
        "conv kernel must be [out_c, in_c, kh, kw]"
    );
    let (in_c, h, w) = (input.dim(0), input.dim(1), input.dim(2));
    let (out_c, k_in_c, kh, kw) = (kernel.dim(0), kernel.dim(1), kernel.dim(2), kernel.dim(3));
    assert_eq!(
        in_c, k_in_c,
        "channel mismatch: input {in_c}, kernel {k_in_c}"
    );
    let (ph, pw) = (kh / 2, kw / 2);

    let x = input.as_slice();
    let k = kernel.as_slice();
    let mut out = vec![0.0f32; out_c * h * w];

    for oc in 0..out_c {
        for ic in 0..in_c {
            let kbase = ((oc * in_c) + ic) * kh * kw;
            let xbase = ic * h * w;
            for dy in 0..kh {
                for dx in 0..kw {
                    let kv = k[kbase + dy * kw + dx];
                    // Exact-zero skip is intentional: only a bit-zero
                    // weight (sparsity, padding) may shortcut the inner
                    // accumulation without changing results.
                    // deepod-lint: allow(float-eq)
                    if kv == 0.0 {
                        continue;
                    }
                    // Output (i, j) reads input (i + dy - ph, j + dx - pw).
                    let oy_lo = ph.saturating_sub(dy);
                    let oy_hi = (h + ph).min(h + dy).saturating_sub(dy).min(h);
                    // Valid j span is contiguous: pw ≤ j + dx < w + pw.
                    let oj_lo = pw.saturating_sub(dx);
                    let oj_hi = (w + pw).saturating_sub(dx).min(w);
                    if oj_lo >= oj_hi {
                        continue;
                    }
                    for i in oy_lo..oy_hi {
                        let iy = i + dy - ph;
                        if iy >= h {
                            continue;
                        }
                        let obase = (oc * h + i) * w;
                        let ibase = xbase + iy * w + (oj_lo + dx - pw);
                        deepod_tensor::kernels::axpy(
                            &mut out[obase + oj_lo..obase + oj_hi],
                            &x[ibase..ibase + (oj_hi - oj_lo)],
                            kv,
                        );
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[out_c, h, w])
}

/// Gradient of the convolution with respect to its input.
pub fn conv2d_grad_input(grad_out: &Tensor, kernel: &Tensor) -> Tensor {
    let (out_c, h, w) = (grad_out.dim(0), grad_out.dim(1), grad_out.dim(2));
    let (k_out_c, in_c, kh, kw) = (kernel.dim(0), kernel.dim(1), kernel.dim(2), kernel.dim(3));
    assert_eq!(out_c, k_out_c, "grad/kernel out-channel mismatch");
    let (ph, pw) = (kh / 2, kw / 2);

    let go = grad_out.as_slice();
    let k = kernel.as_slice();
    let mut gi = vec![0.0f32; in_c * h * w];

    for oc in 0..out_c {
        for ic in 0..in_c {
            let kbase = ((oc * in_c) + ic) * kh * kw;
            for dy in 0..kh {
                for dx in 0..kw {
                    let kv = k[kbase + dy * kw + dx];
                    // Exact-zero skip is intentional: only a bit-zero
                    // weight (sparsity, padding) may shortcut the inner
                    // accumulation without changing results.
                    // deepod-lint: allow(float-eq)
                    if kv == 0.0 {
                        continue;
                    }
                    // Valid j span is contiguous: pw ≤ j + dx < w + pw.
                    let oj_lo = pw.saturating_sub(dx);
                    let oj_hi = (w + pw).saturating_sub(dx).min(w);
                    if oj_lo >= oj_hi {
                        continue;
                    }
                    for i in 0..h {
                        let iy = i + dy;
                        if iy < ph || iy - ph >= h {
                            continue;
                        }
                        let iy = iy - ph;
                        let gbase = (ic * h + iy) * w + (oj_lo + dx - pw);
                        let obase = (oc * h + i) * w;
                        deepod_tensor::kernels::axpy(
                            &mut gi[gbase..gbase + (oj_hi - oj_lo)],
                            &go[obase + oj_lo..obase + oj_hi],
                            kv,
                        );
                    }
                }
            }
        }
    }
    Tensor::from_vec(gi, &[in_c, h, w])
}

/// Gradient of the convolution with respect to its kernel.
pub fn conv2d_grad_kernel(grad_out: &Tensor, input: &Tensor, kh: usize, kw: usize) -> Tensor {
    let (out_c, h, w) = (grad_out.dim(0), grad_out.dim(1), grad_out.dim(2));
    let in_c = input.dim(0);
    assert_eq!(input.dim(1), h, "spatial mismatch");
    assert_eq!(input.dim(2), w, "spatial mismatch");
    let (ph, pw) = (kh / 2, kw / 2);

    let go = grad_out.as_slice();
    let x = input.as_slice();
    let mut gk = vec![0.0f32; out_c * in_c * kh * kw];

    for oc in 0..out_c {
        for ic in 0..in_c {
            let kbase = ((oc * in_c) + ic) * kh * kw;
            for dy in 0..kh {
                for dx in 0..kw {
                    let mut acc = 0.0f32;
                    for i in 0..h {
                        let iy = i + dy;
                        if iy < ph || iy - ph >= h {
                            continue;
                        }
                        let iy = iy - ph;
                        for j in 0..w {
                            let jx = j + dx;
                            if jx < pw || jx - pw >= w {
                                continue;
                            }
                            acc += go[(oc * h + i) * w + j] * x[(ic * h + iy) * w + (jx - pw)];
                        }
                    }
                    gk[kbase + dy * kw + dx] = acc;
                }
            }
        }
    }
    Tensor::from_vec(gk, &[out_c, in_c, kh, kw])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference (slow, obviously-correct) forward used to validate the
    /// optimized loops above.
    fn conv2d_reference(input: &Tensor, kernel: &Tensor) -> Tensor {
        let (in_c, h, w) = (input.dim(0), input.dim(1), input.dim(2));
        let (out_c, _, kh, kw) = (kernel.dim(0), kernel.dim(1), kernel.dim(2), kernel.dim(3));
        let (ph, pw) = (kh as isize / 2, kw as isize / 2);
        let mut out = Tensor::zeros(&[out_c, h, w]);
        for oc in 0..out_c {
            for i in 0..h as isize {
                for j in 0..w as isize {
                    let mut acc = 0.0;
                    for ic in 0..in_c {
                        for dy in 0..kh as isize {
                            for dx in 0..kw as isize {
                                let (iy, jx) = (i + dy - ph, j + dx - pw);
                                if iy < 0 || iy >= h as isize || jx < 0 || jx >= w as isize {
                                    continue;
                                }
                                acc += input.at(&[ic, iy as usize, jx as usize])
                                    * kernel.at(&[oc, ic, dy as usize, dx as usize]);
                            }
                        }
                    }
                    *out.at_mut(&[oc, i as usize, j as usize]) = acc;
                }
            }
        }
        out
    }

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = deepod_tensor::rng_from_seed(seed);
        Tensor::rand_uniform(dims, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn forward_matches_reference_3x1() {
        let x = rand_t(&[1, 5, 4], 1);
        let k = rand_t(&[4, 1, 3, 1], 2);
        let fast = conv2d_forward(&x, &k);
        let slow = conv2d_reference(&x, &k);
        deepod_tensor::assert_close(fast.as_slice(), slow.as_slice(), 1e-5);
    }

    #[test]
    fn forward_matches_reference_1x1() {
        let x = rand_t(&[8, 3, 6], 3);
        let k = rand_t(&[1, 8, 1, 1], 4);
        let fast = conv2d_forward(&x, &k);
        let slow = conv2d_reference(&x, &k);
        deepod_tensor::assert_close(fast.as_slice(), slow.as_slice(), 1e-5);
    }

    #[test]
    fn forward_matches_reference_3x3() {
        let x = rand_t(&[2, 6, 6], 5);
        let k = rand_t(&[3, 2, 3, 3], 6);
        let fast = conv2d_forward(&x, &k);
        let slow = conv2d_reference(&x, &k);
        deepod_tensor::assert_close(fast.as_slice(), slow.as_slice(), 1e-5);
    }

    #[test]
    fn single_row_input_with_3x1_kernel() {
        // Δd = 1 intervals are the common case in DeepOD: the 3×1 kernel
        // only sees the center tap.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3]);
        let mut k = Tensor::zeros(&[1, 1, 3, 1]);
        *k.at_mut(&[0, 0, 0, 0]) = 10.0; // top tap: zero-padded out
        *k.at_mut(&[0, 0, 1, 0]) = 2.0; // center tap
        *k.at_mut(&[0, 0, 2, 0]) = 10.0; // bottom tap: zero-padded out
        let y = conv2d_forward(&x, &k);
        assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn grad_input_matches_finite_difference() {
        let x = rand_t(&[2, 4, 3], 7);
        let k = rand_t(&[3, 2, 3, 1], 8);
        let go = rand_t(&[3, 4, 3], 9);
        let gi = conv2d_grad_input(&go, &k);

        let eps = 1e-2f32;
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fp = conv2d_forward(&xp, &k).dot(&go);
            let fm = conv2d_forward(&xm, &k).dot(&go);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - gi.as_slice()[idx]).abs() < 1e-2,
                "input grad {idx}: fd {fd} vs {}",
                gi.as_slice()[idx]
            );
        }
    }

    #[test]
    fn grad_kernel_matches_finite_difference() {
        let x = rand_t(&[2, 4, 3], 10);
        let k = rand_t(&[2, 2, 3, 1], 11);
        let go = rand_t(&[2, 4, 3], 12);
        let gk = conv2d_grad_kernel(&go, &x, 3, 1);

        let eps = 1e-2f32;
        for idx in 0..k.numel() {
            let mut kp = k.clone();
            kp.as_mut_slice()[idx] += eps;
            let mut km = k.clone();
            km.as_mut_slice()[idx] -= eps;
            let fp = conv2d_forward(&x, &kp).dot(&go);
            let fm = conv2d_forward(&x, &km).dot(&go);
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (fd - gk.as_slice()[idx]).abs() < 1e-2,
                "kernel grad {idx}: fd {fd} vs {}",
                gk.as_slice()[idx]
            );
        }
    }
}

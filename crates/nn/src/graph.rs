//! The define-by-run computation tape.
//!
//! A [`Graph`] records every operation of one forward pass as a node;
//! [`Graph::backward`](crate::Graph::backward) (implemented in the
//! `backward` module) replays the tape in reverse to produce parameter
//! gradients. Graphs are cheap to build and are thrown away after each
//! minibatch sample.

use crate::param::{ParamId, ParamStore};
use deepod_tensor::{Activation, Tensor};
use std::sync::Arc;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VarId(pub(crate) usize);

/// Operation tag recorded per node; carries whatever metadata the backward
/// pass needs beyond the parent values.
#[derive(Debug)]
pub(crate) enum Op {
    /// Leaf constant — no gradient flows past it.
    Input,
    /// Leaf bound to a parameter in the store.
    Param(ParamId),
    Add,
    Sub,
    Mul,
    Neg,
    Scale(f32),
    /// Matrix product `[m,k] x [k,n]`.
    MatMul,
    /// Fused fully-connected node `act(W x + b)` for rank-1 `x`; parents
    /// are `(w, x, b)`. Forward runs the fused tensor kernel; backward
    /// recovers the activation derivative from the stored output.
    LinearAct(Activation),
    /// Adds a `[n]` bias to every row of a `[m,n]` matrix.
    AddBiasRows,
    Sigmoid,
    Tanh,
    Relu,
    Abs,
    Sqrt,
    /// Concatenation of rank-1 parents; stores each part's length.
    ConcatVecs(Vec<usize>),
    /// Stacks rank-1 parents of equal length into a matrix.
    StackRows,
    /// Column mean of a matrix (`[r,c] -> [c]`, the paper's avg pooling).
    MeanRows,
    SumAll,
    MeanAll,
    /// Shape change with identical element count; stores the input dims.
    Reshape(Vec<usize>),
    /// Row gather from a `[n,d]` matrix; stores the looked-up row indices.
    Gather(Vec<usize>),
    /// Same-padded stride-1 conv; parents are (input, kernel).
    Conv2d {
        kh: usize,
        kw: usize,
    },
    /// Channel-wise affine normalization `(x - mu) / sqrt(var + eps)`
    /// followed by `gamma * xhat + beta`; parents are (input, gamma, beta)
    /// and mu/var are captured constants (running statistics — see
    /// DESIGN.md §2.1 for why).
    BatchNorm {
        mu: Vec<f32>,
        var: Vec<f32>,
        eps: f32,
    },
}

pub(crate) struct Node {
    pub value: Arc<Tensor>,
    pub op: Op,
    pub parents: Vec<VarId>,
}

/// A recorded forward computation.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(256),
        }
    }

    /// Number of recorded nodes (useful in tests and perf diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The tensor value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Tensor, op: Op, parents: Vec<VarId>) -> VarId {
        self.push_rc(Arc::new(value), op, parents)
    }

    fn push_rc(&mut self, value: Arc<Tensor>, op: Op, parents: Vec<VarId>) -> VarId {
        let id = VarId(self.nodes.len());
        self.nodes.push(Node { value, op, parents });
        id
    }

    /// Records a constant leaf.
    pub fn input(&mut self, value: Tensor) -> VarId {
        self.push(value, Op::Input, vec![])
    }

    /// Records a scalar constant leaf.
    pub fn constant(&mut self, v: f32) -> VarId {
        self.input(Tensor::scalar(v))
    }

    /// Records a leaf bound to `store[id]`; gradients reaching it are
    /// accumulated for the optimizer.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        self.push_rc(store.value_rc(id), Op::Param(id), vec![])
    }

    /// Element-wise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add, vec![a, b])
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub, vec![a, b])
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul, vec![a, b])
    }

    /// Element-wise negation.
    pub fn neg(&mut self, a: VarId) -> VarId {
        let v = self.value(a).scale(-1.0);
        self.push(v, Op::Neg, vec![a])
    }

    /// Multiplication by a compile-time scalar.
    pub fn scale(&mut self, a: VarId, s: f32) -> VarId {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(s), vec![a])
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul, vec![a, b])
    }

    /// `W x + b` for a rank-1 `x`: the fully-connected primitive. `w` is
    /// `[out, in]`, `x` is `[in]`, `b` is `[out]`. Recorded as one fused
    /// node (formerly a five-node reshape → matmul → reshape → add chain).
    pub fn linear(&mut self, w: VarId, x: VarId, b: VarId) -> VarId {
        self.linear_act(w, x, b, Activation::Identity)
    }

    /// Fused `act(W x + b)` for a rank-1 `x`: one tape node covering the
    /// fully-connected layer *and* its activation. Values and gradients are
    /// bit-identical to the unfused `linear` + activation-node sequence
    /// (the kernel accumulates in the same ascending-`k` order and the
    /// activation derivative is an exact function of the stored output).
    pub fn linear_act(&mut self, w: VarId, x: VarId, b: VarId, act: Activation) -> VarId {
        let v = self
            .value(w)
            .matvec_bias_act(self.value(x), self.value(b), act);
        self.push(v, Op::LinearAct(act), vec![w, x, b])
    }

    /// Adds a `[n]` bias vector to every row of a `[m,n]` matrix.
    pub fn add_bias_rows(&mut self, m: VarId, bias: VarId) -> VarId {
        let (rows, cols) = (self.value(m).dim(0), self.value(m).dim(1));
        assert_eq!(self.value(bias).numel(), cols, "bias length mismatch");
        let mut v = self.value(m).clone();
        for r in 0..rows {
            let row = v.row_mut(r);
            for (x, &b) in row.iter_mut().zip(self.value(bias).as_slice()) {
                *x += b;
            }
        }
        self.push(v, Op::AddBiasRows, vec![m, bias])
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid, vec![a])
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh, vec![a])
    }

    /// Rectified linear unit (Eq. 9).
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu, vec![a])
    }

    /// Element-wise absolute value.
    pub fn abs(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::abs);
        self.push(v, Op::Abs, vec![a])
    }

    /// Element-wise square root; inputs must be non-negative.
    pub fn sqrt(&mut self, a: VarId) -> VarId {
        let v = self.value(a).map(f32::sqrt);
        self.push(v, Op::Sqrt, vec![a])
    }

    /// Concatenates rank-1 vectors.
    pub fn concat(&mut self, parts: &[VarId]) -> VarId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let lens: Vec<usize> = tensors.iter().map(|t| t.numel()).collect();
        let v = Tensor::concat_vecs(&tensors);
        self.push(v, Op::ConcatVecs(lens), parts.to_vec())
    }

    /// Stacks equal-length rank-1 vectors into a `[rows, cols]` matrix.
    pub fn stack_rows(&mut self, parts: &[VarId]) -> VarId {
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let v = Tensor::stack_rows(&tensors);
        self.push(v, Op::StackRows, parts.to_vec())
    }

    /// Column-wise mean (`[r,c] -> [c]`): the avg pooling of Eq. 10.
    pub fn mean_rows(&mut self, a: VarId) -> VarId {
        let v = self.value(a).mean_rows();
        self.push(v, Op::MeanRows, vec![a])
    }

    /// Sum of all elements, producing a scalar node.
    pub fn sum_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.value(a).sum());
        self.push(v, Op::SumAll, vec![a])
    }

    /// Mean of all elements, producing a scalar node.
    pub fn mean_all(&mut self, a: VarId) -> VarId {
        let v = Tensor::scalar(self.value(a).mean());
        self.push(v, Op::MeanAll, vec![a])
    }

    /// Reshape (element count preserved).
    pub fn reshape(&mut self, a: VarId, dims: &[usize]) -> VarId {
        let old = self.value(a).dims().to_vec();
        let v = self.value(a).reshape(dims);
        self.push(v, Op::Reshape(old), vec![a])
    }

    /// Gathers rows `indices` from a `[n,d]` matrix into a `[k,d]` matrix —
    /// the embedding lookup of §4.1/§4.2 (one-hot × W without materializing
    /// the one-hot).
    pub fn gather(&mut self, matrix: VarId, indices: &[usize]) -> VarId {
        let m = self.value(matrix);
        assert_eq!(m.rank(), 2, "gather source must be a matrix");
        let d = m.dim(1);
        let n = m.dim(0);
        let mut data = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            assert!(i < n, "gather index {i} out of range ({n} rows)");
            data.extend_from_slice(m.row(i));
        }
        let v = Tensor::from_vec(data, &[indices.len(), d]);
        self.push(v, Op::Gather(indices.to_vec()), vec![matrix])
    }

    /// Gathers a single row as a rank-1 vector.
    pub fn gather_row(&mut self, matrix: VarId, index: usize) -> VarId {
        let g = self.gather(matrix, &[index]);
        let d = self.value(g).dim(1);
        self.reshape(g, &[d])
    }

    /// Same-padded stride-1 2-D convolution; `input` is `[in_c,h,w]`,
    /// `kernel` is `[out_c,in_c,kh,kw]`.
    pub fn conv2d(&mut self, input: VarId, kernel: VarId) -> VarId {
        let (kh, kw) = (self.value(kernel).dim(2), self.value(kernel).dim(3));
        let v = crate::conv::conv2d_forward(self.value(input), self.value(kernel));
        self.push(v, Op::Conv2d { kh, kw }, vec![input, kernel])
    }

    /// Channel-wise batch normalization of a `[c,h,w]` tensor using the
    /// supplied per-channel statistics (running stats in this codebase —
    /// see DESIGN.md), with learnable `gamma`/`beta` of shape `[c]`.
    pub fn batch_norm(
        &mut self,
        input: VarId,
        gamma: VarId,
        beta: VarId,
        mu: &[f32],
        var: &[f32],
        eps: f32,
    ) -> VarId {
        let x = self.value(input);
        assert_eq!(x.rank(), 3, "batch_norm input must be [c,h,w]");
        let c = x.dim(0);
        assert_eq!(mu.len(), c, "mu length mismatch");
        assert_eq!(var.len(), c, "var length mismatch");
        assert_eq!(self.value(gamma).numel(), c, "gamma length mismatch");
        assert_eq!(self.value(beta).numel(), c, "beta length mismatch");
        let hw = x.dim(1) * x.dim(2);
        let g = self.value(gamma).as_slice().to_vec();
        let b = self.value(beta).as_slice().to_vec();
        let mut out = x.clone();
        for ch in 0..c {
            let inv_std = 1.0 / (var[ch] + eps).sqrt();
            let slice = &mut out.as_mut_slice()[ch * hw..(ch + 1) * hw];
            for v in slice {
                *v = g[ch] * ((*v - mu[ch]) * inv_std) + b[ch];
            }
        }
        self.push(
            out,
            Op::BatchNorm {
                mu: mu.to_vec(),
                var: var.to_vec(),
                eps,
            },
            vec![input, gamma, beta],
        )
    }

    // ----- composite losses -----

    /// Mean absolute error between two same-shape nodes (the paper's main
    /// loss, Alg. 1 line 11).
    pub fn mean_abs_error(&mut self, pred: VarId, target: VarId) -> VarId {
        let d = self.sub(pred, target);
        let a = self.abs(d);
        self.mean_all(a)
    }

    /// Euclidean distance `||a - b||₂` between two same-shape nodes (the
    /// auxiliary loss binding `code` to `stcode`, Alg. 1 line 10).
    pub fn euclidean_distance(&mut self, a: VarId, b: VarId) -> VarId {
        let d = self.sub(a, b);
        let sq = self.mul(d, d);
        let s = self.sum_all(sq);
        // Guard the sqrt against a zero input (derivative would be inf).
        let eps = self.constant(1e-8);
        let s = self.add(s, eps);
        self.sqrt(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(vec![1.0, -2.0], &[2]));
        let b = g.input(Tensor::from_vec(vec![3.0, 4.0], &[2]));
        let s = g.add(a, b);
        assert_eq!(g.value(s).as_slice(), &[4.0, 2.0]);
        let r = g.relu(a);
        assert_eq!(g.value(r).as_slice(), &[1.0, 0.0]);
        let m = g.mul(a, b);
        assert_eq!(g.value(m).as_slice(), &[3.0, -8.0]);
    }

    #[test]
    fn linear_matches_manual() {
        let mut g = Graph::new();
        let w = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let x = g.input(Tensor::from_vec(vec![5.0, 6.0], &[2]));
        let b = g.input(Tensor::from_vec(vec![0.5, -0.5], &[2]));
        let y = g.linear(w, x, b);
        assert_eq!(g.value(y).as_slice(), &[17.5, 38.5]);
    }

    #[test]
    fn gather_rows() {
        let mut g = Graph::new();
        let m = g.input(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            &[3, 2],
        ));
        let picked = g.gather(m, &[2, 0]);
        assert_eq!(g.value(picked).dims(), &[2, 2]);
        assert_eq!(g.value(picked).as_slice(), &[5.0, 6.0, 1.0, 2.0]);
        let row = g.gather_row(m, 1);
        assert_eq!(g.value(row).as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn concat_and_stack_shapes() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = g.input(Tensor::from_vec(vec![3.0], &[1]));
        let c = g.concat(&[&a, &b].map(|v| *v));
        assert_eq!(g.value(c).as_slice(), &[1.0, 2.0, 3.0]);

        let d = g.input(Tensor::from_vec(vec![4.0, 5.0], &[2]));
        let m = g.stack_rows(&[a, d]);
        assert_eq!(g.value(m).dims(), &[2, 2]);
    }

    #[test]
    fn batch_norm_normalizes() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[1, 2, 2]));
        let gamma = g.input(Tensor::ones(&[1]));
        let beta = g.input(Tensor::zeros(&[1]));
        let y = g.batch_norm(x, gamma, beta, &[5.0], &[5.0], 0.0);
        let inv = 1.0 / 5.0f32.sqrt();
        deepod_tensor::assert_close(
            g.value(y).as_slice(),
            &[-3.0 * inv, -inv, 1.0 * inv, 3.0 * inv],
            1e-5,
        );
    }

    #[test]
    fn losses() {
        let mut g = Graph::new();
        let p = g.input(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let t = g.input(Tensor::from_vec(vec![2.0, 4.0], &[2]));
        let mae = g.mean_abs_error(p, t);
        assert_eq!(g.value(mae).item(), 1.5);
        let eu = g.euclidean_distance(p, t);
        deepod_tensor::assert_close(&[g.value(eu).item()], &[5.0f32.sqrt()], 1e-3);
    }
}

//! Parameter storage: every trainable tensor in a model lives in a
//! [`ParamStore`], addressed by a [`ParamId`].
//!
//! Keeping parameters outside the computation graph lets the graph be
//! rebuilt per minibatch (define-by-run) while weights persist, and gives
//! the optimizer one place to hold Adam moment state.

use deepod_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Opaque handle to a parameter in a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index into the owning store (stable for the store's lifetime).
    pub fn index(&self) -> usize {
        self.0
    }
}

#[derive(Clone, Serialize, Deserialize)]
struct ParamEntry {
    name: String,
    value: Arc<Tensor>,
    /// When false the optimizer skips this parameter (used by ablations that
    /// freeze an embedding).
    trainable: bool,
}

/// Owns all trainable tensors of a model.
///
/// Values are reference-counted so the [`Graph`](crate::Graph) can hold them
/// during a forward pass without copying; the optimizer mutates them through
/// [`Arc::make_mut`] after all graphs are dropped.
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle. Names are free-form
    /// labels used in diagnostics and serialization; duplicates are allowed
    /// (e.g. per-layer `"bias"`), the handle is the identity.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        let id = ParamId(self.entries.len());
        self.entries.push(ParamEntry {
            name: name.to_string(),
            value: Arc::new(value),
            trainable: true,
        });
        id
    }

    /// Registers a non-trainable parameter (constant buffer such as frozen
    /// embeddings or batch-norm running statistics snapshots).
    pub fn register_frozen(&mut self, name: &str, value: Tensor) -> ParamId {
        let id = self.register(name, value);
        self.entries[id.0].trainable = false;
        id
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters have been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shared handle to a parameter's current value.
    pub fn value_rc(&self, id: ParamId) -> Arc<Tensor> {
        Arc::clone(&self.entries[id.0].value)
    }

    /// Borrow of a parameter's current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Whether the optimizer should update this parameter.
    pub fn is_trainable(&self, id: ParamId) -> bool {
        self.entries[id.0].trainable
    }

    /// Marks a parameter trainable or frozen.
    pub fn set_trainable(&mut self, id: ParamId, trainable: bool) {
        self.entries[id.0].trainable = trainable;
    }

    /// Replaces a parameter's value wholesale (used to load pre-trained
    /// graph embeddings as initialization, §4.1/§4.2 of the paper).
    /// Panics when the replacement shape differs.
    pub fn set_value(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.entries[id.0].value.shape(),
            value.shape(),
            "set_value shape mismatch for '{}'",
            self.entries[id.0].name
        );
        self.entries[id.0].value = Arc::new(value);
    }

    /// Mutable access used by optimizers. Clones the tensor only if a graph
    /// still holds a reference (it should not, in correct usage).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        Arc::make_mut(&mut self.entries[id.0].value)
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(ParamId)
    }

    /// Total number of scalar parameters (trainable only).
    pub fn num_scalars(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.trainable)
            .map(|e| e.value.numel())
            .sum()
    }

    /// Approximate serialized model size in bytes: the sum of all parameter
    /// buffers. This is the quantity reported in the paper's Table 5.
    pub fn size_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.value.size_bytes()).sum()
    }

    /// Global L2 norm over all trainable parameters — handy for divergence
    /// diagnostics in training logs.
    pub fn global_norm(&self) -> f32 {
        self.entries
            .iter()
            .filter(|e| e.trainable)
            .map(|e| {
                let n = e.value.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.register("w", Tensor::ones(&[2, 2]));
        let b = s.register("b", Tensor::zeros(&[2]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(a), "w");
        assert_eq!(s.value(b).numel(), 2);
        assert!(s.is_trainable(a));
    }

    #[test]
    fn frozen_params() {
        let mut s = ParamStore::new();
        let f = s.register_frozen("const", Tensor::ones(&[3]));
        assert!(!s.is_trainable(f));
        s.set_trainable(f, true);
        assert!(s.is_trainable(f));
    }

    #[test]
    fn set_value_replaces() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::zeros(&[2]));
        s.set_value(id, Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(s.value(id).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_value_shape_mismatch_panics() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::zeros(&[2]));
        s.set_value(id, Tensor::zeros(&[3]));
    }

    #[test]
    fn scalar_count_skips_frozen() {
        let mut s = ParamStore::new();
        s.register("w", Tensor::zeros(&[4, 4]));
        s.register_frozen("c", Tensor::zeros(&[100]));
        assert_eq!(s.num_scalars(), 16);
        assert_eq!(s.size_bytes(), (16 + 100) * 4);
    }

    #[test]
    fn value_mut_updates_in_place() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::zeros(&[2]));
        s.value_mut(id).as_mut_slice()[0] = 5.0;
        assert_eq!(s.value(id).as_slice(), &[5.0, 0.0]);
    }
}

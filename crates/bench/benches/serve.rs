//! Serving-layer benchmarks (`BENCH_serve.json`): the cost of answering a
//! fixed workload of 64 requests through the [`deepod_serve`] engine at
//! micro-batch sizes 1 / 8 / 64, plus the raw `estimate_batch` call those
//! batches bottom out in. Each `serve/workload64_batchN` number is the
//! wall-clock for all 64 answers, so a smaller mean directly means higher
//! throughput — the batched configurations must not be slower than the
//! batch-1 (single-query) one. Run with
//! `DEEPOD_BENCH_JSON=BENCH_serve.json cargo bench -p deepod-bench -- serve`.

use criterion::{criterion_group, criterion_main, Criterion};
use deepod_core::{DeepOdConfig, DeepOdModel, EmbeddingInit, FeatureContext, PredictRequest};
use deepod_roadnet::CityProfile;
use deepod_serve::{Backend, EngineConfig, InferenceEngine};
use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};
use std::hint::black_box;
use std::sync::Arc;

const WORKLOAD: usize = 64;

fn setup() -> (
    Arc<CityDataset>,
    FeatureContext,
    DeepOdModel,
    Vec<PredictRequest>,
) {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 80));
    // Untrained weights: inference cost depends only on the architecture,
    // and skipping training keeps the bench setup in milliseconds.
    let cfg = DeepOdConfig {
        init: EmbeddingInit::Random,
        ..DeepOdConfig::default()
    };
    let ctx = FeatureContext::build(&ds, cfg.slot_seconds);
    let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid bench config");
    let reqs: Vec<PredictRequest> = (0..WORKLOAD)
        .map(|i| PredictRequest::Raw(ds.train[i % ds.train.len()].od))
        .collect();
    (Arc::new(ds), ctx, model, reqs)
}

/// The full serving path — submit 64 requests, collect 64 replies —
/// at the three characteristic micro-batch sizes. `max_wait_ms: 0` makes
/// the batch size the only coalescing variable being measured.
fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    for max_batch in [1usize, 8, 64] {
        let (ds, ctx, model, reqs) = setup();
        let engine = InferenceEngine::start(
            Backend::Model(Box::new(model)),
            ctx,
            ds,
            EngineConfig {
                max_batch,
                max_wait_ms: 0,
                queue_capacity: WORKLOAD,
                threads: 0,
            },
        );
        group.bench_function(&format!("workload64_batch{max_batch}"), |b| {
            b.iter(|| {
                let rxs: Vec<_> = reqs
                    .iter()
                    .map(|r| engine.submit(r.clone()).expect("queue accepts"))
                    .collect();
                for rx in rxs {
                    black_box(rx.recv().expect("engine answers"));
                }
            });
        });
        engine.shutdown();
    }

    // The pure model cost the engine adds its queueing on top of: one
    // direct estimate_batch call over the same 64 requests.
    let (ds, ctx, model, reqs) = setup();
    group.bench_function("workload64_direct_estimate_batch", |b| {
        b.iter(|| black_box(model.estimate_batch(&ctx, &ds.net, black_box(&reqs), 0)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(4))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_serve
}
criterion_main!(benches);

//! Serving-layer benchmarks (`BENCH_serve.json`): the cost of answering a
//! fixed workload of 64 requests through the [`deepod_serve`] engine at
//! micro-batch sizes 1 / 8 / 64, plus the raw `estimate_batch` call those
//! batches bottom out in. Each `serve/workload64_batchN` number is the
//! wall-clock for all 64 answers, so a smaller mean directly means higher
//! throughput — the batched configurations must not be slower than the
//! batch-1 (single-query) one.
//!
//! On top of the closed-loop numbers, an **open-loop arrival sweep** drives
//! the engine at fixed inter-arrival intervals (clients do not wait for
//! replies before sending the next request) and reports per-request latency
//! percentiles at workers ∈ {1, 4}: `serve/openloop_w{W}_u{U}_p{50,99}`,
//! where `U` is the offered load as a percentage of the calibrated
//! single-worker service rate. Closed-loop means hide queueing delay;
//! the open-loop tail is where extra worker shards actually pay off.
//!
//! Finally, a **hot-OD cache sweep** (DESIGN.md §15) measures the serving
//! cache tier: per-request latency of cache hits vs the uncached miss path
//! (`serve/cache_{hit,miss}_p{50,99}` — a hit skips queue admission and the
//! model entirely, so its p50 must sit far below the miss path), and the
//! closed-loop mean at hot-set repeat rates of 0% / 50% / 95%
//! (`serve/hotod_h{H}_mean`).
//!
//! Run with
//! `DEEPOD_BENCH_JSON=BENCH_serve.json cargo bench -p deepod-bench -- serve`.

use criterion::{criterion_group, criterion_main, record_stats, Criterion, Stats};
use deepod_core::oracle::OdKeyer;
use deepod_core::{DeepOdConfig, DeepOdModel, EmbeddingInit, FeatureContext, PredictRequest};
use deepod_roadnet::CityProfile;
use deepod_serve::{Backend, CacheConfig, EngineConfig, InferenceEngine, ServeCache};
use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKLOAD: usize = 64;

/// Requests per open-loop run: enough that a p99 is ~5 observations.
const OPENLOOP_REQUESTS: usize = 512;

fn setup() -> (
    Arc<CityDataset>,
    FeatureContext,
    DeepOdModel,
    Vec<PredictRequest>,
) {
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 80));
    // Untrained weights: inference cost depends only on the architecture,
    // and skipping training keeps the bench setup in milliseconds.
    let cfg = DeepOdConfig {
        init: EmbeddingInit::Random,
        ..DeepOdConfig::default()
    };
    let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid bench config");
    let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid bench config");
    let reqs: Vec<PredictRequest> = (0..WORKLOAD)
        .map(|i| PredictRequest::Raw(ds.train[i % ds.train.len()].od))
        .collect();
    (Arc::new(ds), ctx, model, reqs)
}

fn engine_with(workers: usize, max_batch: usize, max_wait_ms: u64) -> InferenceEngine {
    let (ds, ctx, model, _) = setup();
    InferenceEngine::start(
        Backend::Model(Box::new(model)),
        ctx,
        ds,
        EngineConfig {
            max_batch,
            max_wait_ms,
            queue_capacity: OPENLOOP_REQUESTS,
            workers,
            ..EngineConfig::default()
        },
    )
}

/// The full serving path — submit 64 requests, collect 64 replies —
/// at the three characteristic micro-batch sizes. `max_wait_ms: 0` makes
/// the batch size the only coalescing variable being measured.
fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    for max_batch in [1usize, 8, 64] {
        let (ds, ctx, model, reqs) = setup();
        let engine = InferenceEngine::start(
            Backend::Model(Box::new(model)),
            ctx,
            ds,
            EngineConfig {
                max_batch,
                max_wait_ms: 0,
                queue_capacity: WORKLOAD,
                ..EngineConfig::default()
            },
        );
        group.bench_function(&format!("workload64_batch{max_batch}"), |b| {
            b.iter(|| {
                let rxs: Vec<_> = reqs
                    .iter()
                    .map(|r| engine.submit(r.clone()).expect("queue accepts"))
                    .collect();
                for rx in rxs {
                    black_box(rx.recv().expect("engine answers"));
                }
            });
        });
        engine.shutdown();
    }

    // The pure model cost the engine adds its queueing on top of: one
    // direct estimate_batch call over the same 64 requests.
    let (ds, ctx, model, reqs) = setup();
    group.bench_function("workload64_direct_estimate_batch", |b| {
        b.iter(|| black_box(model.estimate_batch(&ctx, &ds.net, black_box(&reqs), 0)));
    });
    group.finish();

    bench_openloop();
    bench_cache();
}

/// `sorted` must be ascending; nearest-rank percentile.
fn percentile(sorted: &[f64], p: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (sorted.len() * p).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Calibrates the mean closed-loop service time of one request (batch-1,
/// single worker), which anchors the open-loop arrival intervals.
fn calibrate_service_ns(reqs: &[PredictRequest]) -> f64 {
    let engine = engine_with(1, 1, 0);
    // Warm the path once before timing.
    for r in reqs.iter().take(8) {
        engine
            .submit(r.clone())
            .expect("queue accepts")
            .recv()
            .expect("engine answers");
    }
    let t0 = Instant::now();
    let mut answered = 0u32;
    for r in reqs.iter().cycle().take(64) {
        engine
            .submit(r.clone())
            .expect("queue accepts")
            .recv()
            .expect("engine answers");
        answered += 1;
    }
    let per_req = t0.elapsed().as_nanos() as f64 / f64::from(answered);
    engine.shutdown();
    per_req.max(1.0)
}

/// One open-loop run: submit `OPENLOOP_REQUESTS` requests at a fixed
/// inter-arrival interval regardless of reply progress; a collector thread
/// clocks each request's submit→reply latency. Returns latencies in ns,
/// sorted ascending.
fn openloop_latencies(
    engine: &InferenceEngine,
    reqs: &[PredictRequest],
    interval: Duration,
) -> Vec<f64> {
    let (tx, rx) = std::sync::mpsc::channel::<(Instant, deepod_serve::ReplyHandle)>();
    let collector = std::thread::spawn(move || {
        let mut lat = Vec::with_capacity(OPENLOOP_REQUESTS);
        while let Ok((submitted, handle)) = rx.recv() {
            handle.recv().expect("engine answers");
            lat.push(submitted.elapsed().as_nanos() as f64);
        }
        lat
    });
    let start = Instant::now();
    for (i, r) in reqs.iter().cycle().take(OPENLOOP_REQUESTS).enumerate() {
        // Open-loop: arrivals are scheduled by the clock, not by replies.
        let due = interval * i as u32;
        if let Some(wait) = due.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        let handle = engine.submit(r.clone()).expect("queue accepts");
        tx.send((Instant::now(), handle)).expect("collector alive");
    }
    drop(tx);
    let mut lat = collector.join().expect("collector thread");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    lat
}

/// The open-loop sweep: workers ∈ {1, 4} × offered load ∈ {50%, 90%} of
/// the calibrated single-worker service rate, reporting p50/p99 latency.
fn bench_openloop() {
    let (_, _, _, reqs) = setup();
    let service_ns = calibrate_service_ns(&reqs);
    for workers in [1usize, 4] {
        for load_pct in [50u64, 90] {
            // interval = service_time / load: 50% load ⇒ arrivals at twice
            // the service time, 90% ⇒ just above saturation of one worker.
            let interval = Duration::from_nanos((service_ns * 100.0 / load_pct as f64) as u64);
            let engine = engine_with(workers, 8, 1);
            let lat = openloop_latencies(&engine, &reqs, interval);
            engine.shutdown();
            for (pct, name) in [(50usize, "p50"), (99, "p99")] {
                let v = percentile(&lat, pct);
                record_stats(Stats {
                    id: format!("serve/openloop_w{workers}_u{load_pct}_{name}"),
                    mean_ns: v,
                    min_ns: v,
                    max_ns: v,
                    samples: lat.len(),
                    iters_per_sample: 1,
                });
            }
        }
    }
}

/// Builds an engine with the serving cache tier enabled (LRU only, no
/// oracle artifact): week-long TTL slots so no entry can expire inside a
/// bench run, capacity far above the touched key count so eviction never
/// interferes with what is being measured.
fn engine_with_cache(workers: usize) -> (InferenceEngine, Vec<PredictRequest>) {
    let (ds, ctx, model, reqs) = setup();
    let keyer = OdKeyer::for_network(&ds.net, 500.0, *ctx.slots());
    let cache = ServeCache::new(
        keyer,
        None,
        CacheConfig {
            capacity: 4096,
            ttl_seconds: 604_800.0,
            shards: 4,
        },
    )
    .expect("week-divisor ttl");
    let engine = InferenceEngine::start_with_cache(
        Backend::Model(Box::new(model)),
        None,
        Some(Arc::new(cache)),
        ctx,
        ds,
        EngineConfig {
            max_batch: 8,
            max_wait_ms: 0,
            queue_capacity: OPENLOOP_REQUESTS,
            workers,
            ..EngineConfig::default()
        },
    );
    (engine, reqs)
}

/// A request whose cache key no prior request in the same run produced:
/// same OD cell pair, departure shifted to the i-th distinct time slot.
fn unique_slot_request(reqs: &[PredictRequest], i: usize) -> PredictRequest {
    let PredictRequest::Raw(od) = &reqs[0] else {
        unreachable!("bench workload is raw requests");
    };
    let mut od = *od;
    od.depart = i as f64 * 300.0 + 150.0;
    PredictRequest::Raw(od)
}

/// Closed-loop submit→reply latency for each request, sorted ascending.
fn closedloop_latencies(engine: &InferenceEngine, reqs: &[PredictRequest]) -> Vec<f64> {
    let mut lat = Vec::with_capacity(reqs.len());
    for r in reqs {
        let t0 = Instant::now();
        let handle = engine.submit(r.clone()).expect("queue accepts");
        black_box(handle.recv().expect("engine answers"));
        lat.push(t0.elapsed().as_nanos() as f64);
    }
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    lat
}

/// The serving-cache sweep: hit vs miss per-request latency, then the
/// closed-loop mean under hot-OD workloads at 0% / 50% / 95% repeats.
fn bench_cache() {
    const HOT: usize = 8;
    const M: usize = 256;

    // Hit vs miss percentiles. The hot set is warmed first (each reply
    // received ⇒ its entry is inserted), so the repeat pass is all hits;
    // the miss pass uses a fresh time slot per request, so it is all
    // misses through the full queue+model path.
    let (engine, reqs) = engine_with_cache(1);
    let hot: Vec<PredictRequest> = reqs.iter().take(HOT).cloned().collect();
    for r in &hot {
        engine
            .submit(r.clone())
            .expect("queue accepts")
            .recv()
            .expect("engine answers");
    }
    let hits: Vec<PredictRequest> = (0..M).map(|i| hot[i % HOT].clone()).collect();
    let hit_lat = closedloop_latencies(&engine, &hits);
    let misses: Vec<PredictRequest> = (0..M).map(|i| unique_slot_request(&reqs, i)).collect();
    let miss_lat = closedloop_latencies(&engine, &misses);
    engine.shutdown();
    for (lat, path) in [(&hit_lat, "hit"), (&miss_lat, "miss")] {
        for (pct, name) in [(50usize, "p50"), (99, "p99")] {
            let v = percentile(lat, pct);
            record_stats(Stats {
                id: format!("serve/cache_{path}_{name}"),
                mean_ns: v,
                min_ns: v,
                max_ns: v,
                samples: lat.len(),
                iters_per_sample: 1,
            });
        }
    }

    // Hot-OD workloads: H% of requests repeat one of 8 hot ODs, the rest
    // are fresh slots. Mean per-request cost falls as the hit rate rises.
    for hot_pct in [0usize, 50, 95] {
        let (engine, reqs) = engine_with_cache(1);
        let hot: Vec<PredictRequest> = reqs.iter().take(HOT).cloned().collect();
        for r in &hot {
            engine
                .submit(r.clone())
                .expect("queue accepts")
                .recv()
                .expect("engine answers");
        }
        let workload: Vec<PredictRequest> = (0..M)
            .map(|i| {
                if i % 100 < hot_pct {
                    hot[i % HOT].clone()
                } else {
                    unique_slot_request(&reqs, i)
                }
            })
            .collect();
        let t0 = Instant::now();
        for r in &workload {
            black_box(
                engine
                    .submit(r.clone())
                    .expect("queue accepts")
                    .recv()
                    .expect("engine answers"),
            );
        }
        let mean = t0.elapsed().as_nanos() as f64 / M as f64;
        engine.shutdown();
        record_stats(Stats {
            id: format!("serve/hotod_h{hot_pct}_mean"),
            mean_ns: mean,
            min_ns: mean,
            max_ns: mean,
            samples: M,
            iters_per_sample: 1,
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_serve
}
criterion_main!(benches);

//! Criterion micro-benchmarks: the per-component costs behind Table 5's
//! efficiency numbers — online estimation latency per method, encoder
//! forward passes, routing, map matching and random-walk generation.
//!
//! Run with `cargo bench -p deepod-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepod_baselines::{
    GbmConfig, GbmPredictor, LinearRegression, TempConfig, TempPredictor, TtePredictor,
};
use deepod_core::{DeepOdConfig, EmbeddingInit, TrainOptions, Trainer};
use deepod_graphembed::{DeepWalk, EmbedGraph, GraphEmbedder};
use deepod_roadnet::{dijkstra_shortest_path, CityConfig, CityProfile, NodeId, SpatialGrid};
use deepod_traj::{
    sample_gps, DatasetBuilder, DatasetConfig, GpsNoise, HmmMapMatcher, MapMatchConfig,
};
use std::hint::black_box;

fn small_dataset() -> deepod_traj::CityDataset {
    DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 400))
}

fn small_config() -> DeepOdConfig {
    DeepOdConfig {
        epochs: 1,
        batch_size: 16,
        init: EmbeddingInit::Random,
        ..DeepOdConfig::default()
    }
}

/// Online estimation latency (Table 5's "estimation time" column).
fn bench_estimation(c: &mut Criterion) {
    let ds = small_dataset();
    let mut group = c.benchmark_group("estimation_latency");

    let mut trainer = Trainer::new(&ds, small_config(), TrainOptions::default());
    trainer.train();
    let od = ds.test.first().unwrap_or(&ds.train[0]).od;
    group.bench_function("deepod", |b| {
        b.iter(|| black_box(trainer.predict_od(black_box(&od))));
    });

    let mut temp = TempPredictor::new(TempConfig::default());
    temp.fit(&ds);
    group.bench_function("temp", |b| {
        b.iter(|| black_box(temp.predict(black_box(&od))));
    });

    let mut lr = LinearRegression::new(1e-3);
    lr.fit(&ds);
    group.bench_function("linear_regression", |b| {
        b.iter(|| black_box(lr.predict(black_box(&od))));
    });

    let mut gbm = GbmPredictor::new(GbmConfig { num_trees: 30, ..Default::default() });
    gbm.fit(&ds);
    group.bench_function("gbm", |b| {
        b.iter(|| black_box(gbm.predict(black_box(&od))));
    });

    group.finish();
}

/// One training step (forward + backward + Adam) per sample.
fn bench_training_step(c: &mut Criterion) {
    let ds = small_dataset();
    let mut trainer = Trainer::new(&ds, small_config(), TrainOptions::default());
    let sample = trainer.train_samples()[0].clone();
    c.bench_function("deepod_sample_gradients", |b| {
        b.iter(|| black_box(trainer.model().sample_gradients(black_box(&sample))));
    });
}

/// Routing throughput on the Chengdu-sized network.
fn bench_routing(c: &mut Criterion) {
    let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
    let n = net.num_nodes() as u32;
    let mut i = 0u32;
    c.bench_function("dijkstra_cross_town", |b| {
        b.iter(|| {
            i = (i + 7) % n;
            let from = NodeId(i);
            let to = NodeId((i + n / 2) % n);
            black_box(dijkstra_shortest_path(&net, from, to, |e| net.edge(e).length))
        });
    });
}

/// Map matching throughput (points per second backing the fleet example).
fn bench_map_matching(c: &mut Criterion) {
    let ds = small_dataset();
    let grid = SpatialGrid::build(&ds.net, 250.0);
    let matcher = HmmMapMatcher::new(&ds.net, &grid, MapMatchConfig::default());
    let mut rng = deepod_tensor::rng_from_seed(0xBE);
    let raw = sample_gps(&ds.net, &ds.train[0].trajectory, 3.0, GpsNoise { sigma: 6.0 }, &mut rng);
    c.bench_function("hmm_map_match_one_trip", |b| {
        b.iter(|| black_box(matcher.match_trajectory(black_box(&raw))));
    });
}

/// DeepWalk embedding of a temporal-graph-sized ring.
fn bench_graph_embedding(c: &mut Criterion) {
    let mut g = EmbedGraph::with_nodes(288);
    for i in 0..288 {
        g.add_link(i, (i + 1) % 288, 1.0);
        g.add_link((i + 1) % 288, i, 1.0);
    }
    c.bench_function("deepwalk_day_graph_16d", |b| {
        b.iter_batched(
            || deepod_tensor::rng_from_seed(1),
            |mut rng| black_box(DeepWalk::default().embed(&g, 16, &mut rng)),
            BatchSize::PerIteration,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_estimation, bench_training_step, bench_routing, bench_map_matching, bench_graph_embedding
}
criterion_main!(benches);

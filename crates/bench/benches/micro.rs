//! Criterion micro-benchmarks: the per-component costs behind Table 5's
//! efficiency numbers — online estimation latency per method, encoder
//! forward passes, routing, map matching and random-walk generation.
//!
//! Run with `cargo bench -p deepod-bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use deepod_baselines::{
    GbmConfig, GbmPredictor, LinearRegression, TempConfig, TempPredictor, TtePredictor,
};
use deepod_core::{DeepOdConfig, EmbeddingInit, TrainOptions, Trainer};
use deepod_graphembed::{DeepWalk, EmbedGraph, GraphEmbedder};
use deepod_roadnet::{dijkstra_shortest_path, CityConfig, CityProfile, NodeId, SpatialGrid};
use deepod_traj::{
    sample_gps, DatasetBuilder, DatasetConfig, GpsNoise, HmmMapMatcher, MapMatchConfig,
};
use std::hint::black_box;

fn small_dataset() -> deepod_traj::CityDataset {
    DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 400))
}

fn small_config() -> DeepOdConfig {
    DeepOdConfig {
        epochs: 1,
        batch_size: 16,
        init: EmbeddingInit::Random,
        ..DeepOdConfig::default()
    }
}

/// Online estimation latency (Table 5's "estimation time" column).
fn bench_estimation(c: &mut Criterion) {
    let ds = small_dataset();
    let mut group = c.benchmark_group("estimation_latency");

    let mut trainer = Trainer::new(&ds, small_config(), TrainOptions::default()).expect("trainer");
    trainer.train();
    let od = ds.test.first().unwrap_or(&ds.train[0]).od;
    group.bench_function("deepod", |b| {
        b.iter(|| black_box(trainer.predict_od(black_box(&od))));
    });

    let mut temp = TempPredictor::new(TempConfig::default());
    temp.fit(&ds);
    group.bench_function("temp", |b| {
        b.iter(|| black_box(temp.predict(black_box(&od))));
    });

    let mut lr = LinearRegression::new(1e-3);
    lr.fit(&ds);
    group.bench_function("linear_regression", |b| {
        b.iter(|| black_box(lr.predict(black_box(&od))));
    });

    let mut gbm = GbmPredictor::new(GbmConfig {
        num_trees: 30,
        ..Default::default()
    });
    gbm.fit(&ds);
    group.bench_function("gbm", |b| {
        b.iter(|| black_box(gbm.predict(black_box(&od))));
    });

    group.finish();
}

/// One training step (forward + backward + Adam) per sample.
fn bench_training_step(c: &mut Criterion) {
    let ds = small_dataset();
    let mut trainer = Trainer::new(&ds, small_config(), TrainOptions::default()).expect("trainer");
    let sample = trainer.train_samples()[0].clone();
    c.bench_function("deepod_sample_gradients", |b| {
        b.iter(|| black_box(trainer.model().sample_gradients(black_box(&sample))));
    });
}

/// Routing throughput on the Chengdu-sized network.
fn bench_routing(c: &mut Criterion) {
    let net = CityConfig::profile(CityProfile::SynthChengdu).generate();
    let n = net.num_nodes() as u32;
    let mut i = 0u32;
    c.bench_function("dijkstra_cross_town", |b| {
        b.iter(|| {
            i = (i + 7) % n;
            let from = NodeId(i);
            let to = NodeId((i + n / 2) % n);
            black_box(dijkstra_shortest_path(&net, from, to, |e| {
                net.edge(e).length
            }))
        });
    });
}

/// Map matching throughput (points per second backing the fleet example).
fn bench_map_matching(c: &mut Criterion) {
    let ds = small_dataset();
    let grid = SpatialGrid::build(&ds.net, 250.0);
    let matcher = HmmMapMatcher::new(&ds.net, &grid, MapMatchConfig::default());
    let mut rng = deepod_tensor::rng_from_seed(0xBE);
    let raw = sample_gps(
        &ds.net,
        &ds.train[0].trajectory,
        3.0,
        GpsNoise { sigma: 6.0 },
        &mut rng,
    );
    c.bench_function("hmm_map_match_one_trip", |b| {
        b.iter(|| black_box(matcher.match_trajectory(black_box(&raw))));
    });
}

/// Dense-kernel and training-throughput benches (`BENCH_kernels.json`):
/// the blocked matmul at the three module-characteristic shapes, the
/// scalar-reference vs production dispatch path, the small-matmul fork
/// crossover, the packed/SIMD kernels, the int8 serving path, and a full
/// training epoch at one worker vs the configured count. Run with
/// `DEEPOD_BENCH_JSON=BENCH_kernels.json cargo bench -p deepod-bench -- kernels`.
fn bench_kernels(c: &mut Criterion) {
    use deepod_tensor::{kernels, Tensor};
    let mut group = c.benchmark_group("kernels");

    // (label, m, k, n) — m×k · k×n at the sizes dominating each module's
    // forward pass: M_O the OD head, M_T the trajectory encoder, M_E the
    // external-factor encoder (tuned dims, batch-of-rows on the left).
    let shapes = [
        ("matmul_MO_64x96x64", 64, 96, 64),
        ("matmul_MT_128x64x64", 128, 64, 64),
        ("matmul_ME_32x48x32", 32, 48, 32),
    ];
    let mut rng = deepod_tensor::rng_from_seed(0xD0D);
    for (label, m, k, n) in shapes {
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b_mat = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        group.bench_function(label, |b| {
            b.iter(|| black_box(black_box(&a).matmul(black_box(&b_mat))));
        });
    }

    // Reference vs production path at 256³. `serial` is the scalar blocked
    // kernel (the pre-SIMD baseline and the T = 1 bit-identity reference);
    // `parallel` is the default dispatch — packed SIMD micro-kernels plus
    // the re-tuned row split, which clamps default fan-out to the machine
    // so a single-core host no longer pays fork overhead to lose.
    let big_a = Tensor::rand_uniform(&[256, 256], -1.0, 1.0, &mut rng);
    let big_b = Tensor::rand_uniform(&[256, 256], -1.0, 1.0, &mut rng);
    group.bench_function("matmul_256_serial", |b| {
        b.iter_batched(
            || vec![0.0f32; 256 * 256],
            |mut out| {
                kernels::matmul_ref(big_a.as_slice(), big_b.as_slice(), &mut out, 256, 256);
                black_box(out)
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("matmul_256_parallel", |b| {
        b.iter(|| black_box(black_box(&big_a).matmul_with_threads(black_box(&big_b), 0)));
    });

    // Fork crossover: a 64³ product (0.5 MFLOP) sits far below
    // PAR_MIN_FLOPS, so the size floor refuses to fan out even when the
    // caller asks for 8 workers — both entries take the serial kernel and
    // must time the same, which is the regression being pinned (before the
    // floor, a forked 64³ paid span-spawn overhead for nothing).
    let small_a = Tensor::rand_uniform(&[64, 64], -1.0, 1.0, &mut rng);
    let small_b = Tensor::rand_uniform(&[64, 64], -1.0, 1.0, &mut rng);
    group.bench_function("matmul_crossover_64_t1", |b| {
        b.iter(|| black_box(black_box(&small_a).matmul_with_threads(black_box(&small_b), 1)));
    });
    group.bench_function("matmul_crossover_64_t8", |b| {
        b.iter(|| black_box(black_box(&small_a).matmul_with_threads(black_box(&small_b), 8)));
    });
    group.finish();

    // The packed/SIMD kernel layer against the scalar reference, at the
    // matmul shape above and the serving matvec shape (one Mlp2 layer).
    let mut group = c.benchmark_group("kernels_simd");
    group.bench_function("matmul_256_simd", |b| {
        b.iter_batched(
            || vec![0.0f32; 256 * 256],
            |mut out| {
                kernels::matmul(big_a.as_slice(), big_b.as_slice(), &mut out, 256, 256);
                black_box(out)
            },
            BatchSize::SmallInput,
        );
    });
    let w = Tensor::rand_uniform(&[512, 512], -1.0, 1.0, &mut rng);
    let x = Tensor::rand_uniform(&[512], -1.0, 1.0, &mut rng);
    let bias = Tensor::rand_uniform(&[512], -1.0, 1.0, &mut rng);
    for (label, simd) in [("matvec_512_scalar_ref", false), ("matvec_512_simd", true)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || vec![0.0f32; 512],
                |mut out| {
                    let f = if simd {
                        kernels::matvec_bias_act
                    } else {
                        kernels::matvec_ref
                    };
                    f(
                        w.as_slice(),
                        x.as_slice(),
                        bias.as_slice(),
                        deepod_tensor::Activation::Relu,
                        &mut out,
                    );
                    black_box(out)
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    // The int8 serving path against f32, end to end through
    // `estimate_batch` (the serving hot loop) and at the raw matvec.
    let mut group = c.benchmark_group("kernels_int8");
    let qrows = kernels::quantize_rows(w.as_slice(), 512, 512);
    let packed = kernels::pack_quantized(&qrows);
    group.bench_function("matvec_512_int8", |b| {
        b.iter_batched(
            || vec![0.0f32; 512],
            |mut out| {
                kernels::matvec_i8_bias_act(
                    &packed,
                    &qrows.scales,
                    bias.as_slice(),
                    x.as_slice(),
                    deepod_tensor::Activation::Relu,
                    &mut out,
                );
                black_box(out)
            },
            BatchSize::SmallInput,
        );
    });
    {
        use deepod_core::{FeatureContext, PredictRequest, QuantizedModel};
        let ds = small_dataset();
        let cfg = small_config();
        let mut trainer = Trainer::new(&ds, cfg.clone(), TrainOptions::default()).expect("trainer");
        trainer.train();
        let model = trainer.model().clone();
        let quantized = QuantizedModel::from_model(&model);
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid bench config");
        let reqs: Vec<PredictRequest> = ds
            .test
            .iter()
            .chain(ds.train.iter())
            .take(64)
            .map(|o| PredictRequest::Raw(o.od))
            .collect();
        group.bench_function("estimate_batch_64_f32", |b| {
            b.iter(|| black_box(model.estimate_batch(&ctx, &ds.net, black_box(&reqs), 1)));
        });
        group.bench_function("estimate_batch_64_int8", |b| {
            b.iter(|| black_box(quantized.estimate_batch(&ctx, &ds.net, black_box(&reqs), 1)));
        });
    }
    group.finish();

    // One full training epoch, serial vs configured thread count (the
    // headline data-parallel number; on a single-core host both paths
    // measure the same work plus fan-out overhead).
    let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 150));
    let mut group = c.benchmark_group("kernels_train");
    // At least two workers, so the fork path is measured even on a
    // single-core host (where it reports pure fan-out overhead).
    let threads = deepod_bench::threads().max(2);
    for (label, t) in [("train_epoch_serial", 1), ("train_epoch_parallel", threads)] {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let opts = TrainOptions {
                        threads: t,
                        ..Default::default()
                    };
                    Trainer::new(&ds, small_config(), opts).expect("trainer")
                },
                |mut trainer| black_box(trainer.train()),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

/// DeepWalk embedding of a temporal-graph-sized ring.
fn bench_graph_embedding(c: &mut Criterion) {
    let mut g = EmbedGraph::with_nodes(288);
    for i in 0..288 {
        g.add_link(i, (i + 1) % 288, 1.0);
        g.add_link((i + 1) % 288, i, 1.0);
    }
    c.bench_function("deepwalk_day_graph_16d", |b| {
        b.iter_batched(
            || deepod_tensor::rng_from_seed(1),
            |mut rng| black_box(DeepWalk::default().embed(&g, 16, &mut rng)),
            BatchSize::PerIteration,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_estimation, bench_training_step, bench_routing, bench_map_matching, bench_graph_embedding, bench_kernels
}
criterion_main!(benches);

//! Open-loop load generation for the TCP serving front end
//! (`deepod bench-serve`).
//!
//! Closed-loop benchmarks (send, wait, send) measure service time but
//! hide queueing delay: the client politely slows down exactly when the
//! server saturates, so the tail never shows. An **open-loop** generator
//! schedules arrivals on the clock — request `i` is sent at
//! `start + i / offered_rps`, whether or not earlier replies have come
//! back — which is how independent users actually arrive, and which makes
//! the saturation knee visible: past capacity, latency grows without
//! bound and the typed per-client rejects kick in.
//!
//! The schedule is deterministic (fixed inter-arrival gaps, no Poisson
//! jitter): run-to-run differences then come from the server, not the
//! generator's RNG.
//!
//! Latency is measured **from the scheduled arrival**, not from the
//! moment the sender thread managed to write the frame — if the sender
//! falls behind the schedule, that lateness is queueing delay the client
//! experienced and must count (the "coordinated omission" trap).

use deepod_serve::client::ServeClient;
use deepod_serve::protocol::WireRequest;
use std::io;
use std::time::{Duration, Instant};

/// Nearest-rank percentile over ascending-sorted nanosecond latencies.
pub fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * p).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// One open-loop run to execute.
#[derive(Clone, Copy, Debug)]
pub struct LoadSpec {
    /// Scheduled arrival rate, requests per second.
    pub offered_rps: f64,
    /// Requests sent in total (including warmup).
    pub total: usize,
    /// Leading requests excluded from the statistics (cold caches,
    /// first-batch coalescing).
    pub warmup: usize,
}

/// What one open-loop run measured.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// The scheduled arrival rate.
    pub offered_rps: f64,
    /// Completed responses per second over the measured window.
    pub achieved_rps: f64,
    /// Measured (post-warmup) requests.
    pub sent: usize,
    /// Measured requests answered with an ETA.
    pub ok: usize,
    /// Measured requests answered with a typed error (sheds, per-client
    /// rejects — the overload signal).
    pub errors: usize,
    /// Latency percentiles over *answered* measured requests, in
    /// nanoseconds from scheduled arrival to reply.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Fastest answered request (ns).
    pub min_ns: u64,
    /// Slowest answered request (ns).
    pub max_ns: u64,
    /// The knee detector: the run is past saturation when throughput
    /// fell measurably short of the offered rate or the server started
    /// shedding.
    pub saturated: bool,
}

/// Requests kept in flight by the calibration client. Lock-step (window
/// of 1) would measure the batching latency floor — one request per
/// `max_wait_ms` coalescing window — not capacity; a pipelined window
/// lets the server batch, like real concurrent clients do. Kept under
/// the serve front end's default per-connection in-flight cap so
/// calibration itself is never shed.
const CALIBRATE_WINDOW: usize = 16;

/// Closed-loop calibration: drives `total` requests with
/// [`CALIBRATE_WINDOW`] of them pipelined (each reply immediately
/// replaced by the next request) and returns the sustained service rate
/// in requests/second — the capacity anchor the open-loop sweep
/// expresses its offered loads against.
pub fn calibrate(addr: &str, template: &[WireRequest], total: usize) -> io::Result<f64> {
    if template.is_empty() || total == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "calibration needs at least one template request",
        ));
    }
    let mut client = ServeClient::connect(addr)?;
    client.set_read_timeout(Some(Duration::from_secs(30)))?;
    let req_at = |i: usize| {
        let mut req = template[i % template.len()];
        req.id = i as u64;
        req
    };
    // Warm the path (connection, first coalesced batch) before timing.
    for i in 0..template.len().min(8) {
        client.send(&req_at(i))?;
        client.recv()?;
    }
    let window = CALIBRATE_WINDOW.min(total);
    let t0 = Instant::now();
    for i in 0..window {
        client.send(&req_at(i))?;
    }
    for i in window..total {
        client.recv()?;
        client.send(&req_at(i))?;
    }
    for _ in 0..window {
        client.recv()?;
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    Ok(total as f64 / secs)
}

/// One open-loop run against a serving endpoint. Requests cycle through
/// `template` with ids rewritten to the schedule index, the sender paces
/// them on the fixed arrival schedule, and a receiver thread matches
/// replies back to their scheduled instants. Exactly one reply per
/// request is expected (the wire contract); a read timeout guards
/// against a wedged server.
pub fn run_open_loop(
    addr: &str,
    template: &[WireRequest],
    spec: &LoadSpec,
) -> io::Result<OpenLoopReport> {
    if template.is_empty() || spec.total == 0 || spec.offered_rps <= 0.0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "open-loop run needs template requests, a positive total, and a positive rate",
        ));
    }
    let client = ServeClient::connect(addr)?;
    let (mut sender, mut receiver) = client.split();
    receiver.set_read_timeout(Some(Duration::from_secs(30)))?;
    let interval = Duration::from_secs_f64(1.0 / spec.offered_rps);
    let total = spec.total;
    let start = Instant::now();

    // Receiver thread: one reply per request, matched to its scheduled
    // arrival by id. Latency from the *schedule*, not the send instant.
    let collector = std::thread::spawn(move || {
        let mut answered: Vec<(u64, bool, u64, Instant)> = Vec::with_capacity(total);
        for _ in 0..total {
            let resp = match receiver.recv() {
                Ok(resp) => resp,
                Err(_) => break, // timeout or server gone: report what we have
            };
            let now = Instant::now();
            let Some(id) = resp.id() else {
                // A reply without an id (a frame-level reject) cannot be
                // matched to a schedule slot; count it as an error later
                // via the missing-slot accounting.
                continue;
            };
            let scheduled = start + interval * (id as u32);
            let latency = now.saturating_duration_since(scheduled).as_nanos() as u64;
            answered.push((id, resp.is_ok(), latency, now));
        }
        answered
    });

    for i in 0..total {
        let due = start + interval * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let mut req = template[i % template.len()];
        req.id = i as u64;
        sender.send(&req)?;
    }

    let answered = collector
        .join()
        .map_err(|_| io::Error::other("open-loop collector thread panicked"))?;

    let warmup = spec.warmup as u64;
    let measured_sent = total.saturating_sub(spec.warmup);
    let mut ok_lat: Vec<u64> = Vec::with_capacity(measured_sent);
    let mut ok = 0usize;
    let mut errors = 0usize;
    let mut last_completion: Option<Instant> = None;
    for &(id, is_ok, latency, at) in &answered {
        if id < warmup {
            continue;
        }
        if is_ok {
            ok += 1;
            ok_lat.push(latency);
        } else {
            errors += 1;
        }
        last_completion = Some(last_completion.map_or(at, |t| t.max(at)));
    }
    ok_lat.sort_unstable();
    let mean_ns = if ok_lat.is_empty() {
        0.0
    } else {
        ok_lat.iter().map(|&ns| ns as f64).sum::<f64>() / ok_lat.len() as f64
    };
    // Throughput window: from the first measured scheduled arrival to the
    // last observed completion.
    let window_start = start + interval * (warmup as u32);
    let achieved_rps = match last_completion {
        Some(end) => {
            let secs = end.saturating_duration_since(window_start).as_secs_f64();
            (ok + errors) as f64 / secs.max(1e-9)
        }
        None => 0.0,
    };
    // Knee detector: lost replies, shed replies, or throughput measurably
    // below the offered rate all mean the server is past its capacity.
    let lost = measured_sent.saturating_sub(ok + errors);
    let err_fraction = (errors + lost) as f64 / (measured_sent.max(1)) as f64;
    let saturated = err_fraction > 0.05 || achieved_rps < 0.95 * spec.offered_rps;
    Ok(OpenLoopReport {
        offered_rps: spec.offered_rps,
        achieved_rps,
        sent: measured_sent,
        ok,
        errors: errors + lost,
        p50_ns: percentile(&ok_lat, 50),
        p90_ns: percentile(&ok_lat, 90),
        p99_ns: percentile(&ok_lat, 99),
        mean_ns,
        min_ns: ok_lat.first().copied().unwrap_or(0),
        max_ns: ok_lat.last().copied().unwrap_or(0),
        saturated,
    })
}

/// One benchmark entry destined for a `BENCH_*.json` report — the
/// criterion-compatible fields plus free-form extras (percentiles,
/// offered/achieved rates) whose values are pre-rendered JSON.
#[derive(Clone, Debug)]
pub struct BenchEntry {
    /// Benchmark id, e.g. `serve/net_openloop_w4_u90`.
    pub id: String,
    /// Mean latency (ns).
    pub mean_ns: f64,
    /// Minimum latency (ns).
    pub min_ns: f64,
    /// Maximum latency (ns).
    pub max_ns: f64,
    /// Measurements behind the stats.
    pub samples: usize,
    /// Iterations per sample (1 for per-request measurements).
    pub iters_per_sample: usize,
    /// Extra `"key": value` pairs; values are already-rendered JSON
    /// (numbers or booleans).
    pub extra: Vec<(String, String)>,
}

impl From<&OpenLoopReport> for BenchEntry {
    fn from(r: &OpenLoopReport) -> BenchEntry {
        BenchEntry {
            id: String::new(),
            mean_ns: r.mean_ns,
            min_ns: r.min_ns as f64,
            max_ns: r.max_ns as f64,
            samples: r.ok,
            iters_per_sample: 1,
            extra: vec![
                ("p50_ns".into(), format!("{}", r.p50_ns)),
                ("p90_ns".into(), format!("{}", r.p90_ns)),
                ("p99_ns".into(), format!("{}", r.p99_ns)),
                ("offered_rps".into(), format!("{:.1}", r.offered_rps)),
                ("achieved_rps".into(), format!("{:.1}", r.achieved_rps)),
                ("errors".into(), format!("{}", r.errors)),
                ("saturated".into(), format!("{}", r.saturated)),
            ],
        }
    }
}

fn render_value(v: &serde::json::Value, out: &mut String) {
    use serde::json::Value;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{b}");
        }
        Value::Num(raw) => out.push_str(raw),
        Value::Str(s) => serde::json::escape_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                serde::json::escape_str(k, out);
                out.push_str(": ");
                render_value(item, out);
            }
            out.push('}');
        }
    }
}

/// Merges `entries` into an existing `BENCH_*.json` report: entries whose
/// id starts with `own_prefix` are replaced wholesale, foreign entries
/// (e.g. criterion's closed-loop numbers) are preserved verbatim, and an
/// unreadable existing report is treated as empty rather than fatal.
pub fn merge_bench_json(
    existing: Option<&str>,
    own_prefix: &str,
    entries: &[BenchEntry],
) -> String {
    use serde::json::{self, Value};
    let mut kept: Vec<String> = Vec::new();
    if let Some(Ok(parsed)) = existing.map(json::parse) {
        if let Ok(list) = json::obj_field(&parsed, "benchmarks").and_then(json::expect_arr) {
            for entry in list {
                let foreign = match json::obj_field(entry, "id") {
                    Ok(Value::Str(id)) => !id.starts_with(own_prefix),
                    _ => true,
                };
                if foreign {
                    let mut line = String::new();
                    render_value(entry, &mut line);
                    kept.push(line);
                }
            }
        }
    }
    for e in entries {
        let mut line = format!(
            "{{\"id\": {:?}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
             \"samples\": {}, \"iters_per_sample\": {}",
            e.id, e.mean_ns, e.min_ns, e.max_ns, e.samples, e.iters_per_sample
        );
        for (k, v) in &e.extra {
            use std::fmt::Write as _;
            let _ = write!(line, ", {k:?}: {v}");
        }
        line.push('}');
        kept.push(line);
    }
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, line) in kept.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    ");
        out.push_str(line);
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&lat, 50), 50);
        assert_eq!(percentile(&lat, 99), 99);
        assert_eq!(percentile(&lat, 100), 100);
        assert_eq!(percentile(&[42], 99), 42);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn merge_replaces_own_and_keeps_foreign() {
        let existing = r#"{
  "benchmarks": [
    {"id": "serve/workload64_batch1", "mean_ns": 100.0, "min_ns": 90.0, "max_ns": 110.0, "samples": 20, "iters_per_sample": 3},
    {"id": "serve/net_openloop_w1_u50", "mean_ns": 5.0, "min_ns": 5.0, "max_ns": 5.0, "samples": 1, "iters_per_sample": 1}
  ]
}"#;
        let fresh = BenchEntry {
            id: "serve/net_openloop_w1_u50".into(),
            mean_ns: 7.5,
            min_ns: 7.0,
            max_ns: 8.0,
            samples: 10,
            iters_per_sample: 1,
            extra: vec![
                ("p99_ns".into(), "8".into()),
                ("saturated".into(), "false".into()),
            ],
        };
        let merged = merge_bench_json(Some(existing), "serve/net_openloop", &[fresh]);
        assert!(
            merged.contains("serve/workload64_batch1"),
            "foreign kept: {merged}"
        );
        assert!(
            merged.contains("\"mean_ns\": 7.5"),
            "own replaced: {merged}"
        );
        assert!(
            !merged.contains("\"mean_ns\": 5.0"),
            "stale own dropped: {merged}"
        );
        assert!(
            merged.contains("\"p99_ns\": 8"),
            "extras rendered: {merged}"
        );
        // The merged report is itself parseable.
        let parsed = serde::json::parse(&merged).expect("merged report parses");
        let list = serde::json::obj_field(&parsed, "benchmarks")
            .and_then(serde::json::expect_arr)
            .expect("benchmarks array");
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn merge_tolerates_garbage_existing_report() {
        let merged = merge_bench_json(Some("not json at all"), "serve/net_openloop", &[]);
        assert!(serde::json::parse(&merged).is_ok());
    }
}

//! Shared harness for the per-table/figure benchmark binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). They all share the same dataset
//! construction, the same tuned DeepOD configuration, and the same
//! reporting conventions (a rendered text table on stdout, a CSV under
//! `results/`).
//!
//! # Scale
//!
//! Two scales are supported, selected by the first CLI argument or the
//! `DEEPOD_SCALE` environment variable (resolved in each binary via
//! [`startup`]):
//!
//! * `quick` (default) — minutes-per-experiment settings used by CI.
//! * `full` — larger datasets and longer training, closer to the paper's
//!   regime, for overnight runs.

use deepod_core::{DeepOdConfig, EmbeddingInit, TrainOptions};
use deepod_roadnet::CityProfile;
use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};

pub mod loadgen;

/// Experiment scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// CI-friendly: small datasets, short training.
    Quick,
    /// Paper-regime: larger datasets, longer training.
    Full,
}

impl Scale {
    /// Resolves a scale choice string (default quick). The caller supplies
    /// the choice — typically `argv[1]` falling back to `DEEPOD_SCALE` via
    /// [`startup`] — so this library never reads the environment.
    pub fn resolve(choice: Option<&str>) -> Scale {
        match choice {
            Some("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }
}

/// One-stop startup for a benchmark binary: applies the process
/// [`deepod_core::RuntimeConfig`] (thread count, log gate, metrics keys)
/// from the provided environment lookup, then resolves the scale from
/// `argv[1]` falling back to `DEEPOD_SCALE`. Bench binaries call
/// `deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok())`
/// as their first line — the env closures keep all environment reads in
/// the binaries themselves (deepod-lint rule `no-env-read-in-lib`).
pub fn startup(argv1: Option<String>, env: impl Fn(&str) -> Option<String>) -> Scale {
    let runtime =
        deepod_core::RuntimeConfig::resolve(deepod_core::RuntimeOverrides::default(), &env);
    if let Err(e) = runtime.apply() {
        // Benchmarks have no fault-injection story; a malformed spec in
        // the environment is a configuration error worth dying over.
        // deepod-lint: allow(no-bare-eprintln)
        eprintln!("fatal: {e}");
        std::process::exit(deepod_tensor::failpoint::CONFIG_EXIT_CODE);
    }
    Scale::resolve(argv1.or_else(|| env("DEEPOD_SCALE")).as_deref())
}

/// The three city profiles in the paper's order.
pub const CITIES: [CityProfile; 3] = [
    CityProfile::SynthChengdu,
    CityProfile::SynthXian,
    CityProfile::SynthBeijing,
];

/// Display name of a profile.
pub fn city_name(p: CityProfile) -> &'static str {
    match p {
        CityProfile::SynthChengdu => "Chengdu",
        CityProfile::SynthXian => "Xi'an",
        CityProfile::SynthBeijing => "Beijing",
    }
}

/// Number of simulated orders per city and scale. The ratios mirror the
/// paper (Chengdu > Xi'an; Beijing the largest).
pub fn num_orders(p: CityProfile, scale: Scale) -> usize {
    let base = match p {
        CityProfile::SynthChengdu => 2500,
        CityProfile::SynthXian => 1800,
        CityProfile::SynthBeijing => 3200,
    };
    match scale {
        Scale::Quick => base,
        Scale::Full => base * 3,
    }
}

/// Builds the standard dataset for a city at a scale.
pub fn dataset(p: CityProfile, scale: Scale) -> CityDataset {
    DatasetBuilder::build(&DatasetConfig::for_profile(p, num_orders(p, scale)))
}

/// The paper's per-city tuned auxiliary-loss weight (§6.3: 0.7 Chengdu,
/// 0.3 Xi'an, 0.5 Beijing). Our Fig. 9 reproduction re-derives the tuned
/// value on the synthetic data; this accessor carries the defaults used by
/// the other experiments.
pub fn tuned_loss_weight(p: CityProfile) -> f32 {
    match p {
        CityProfile::SynthChengdu => 0.3,
        CityProfile::SynthXian => 0.3,
        CityProfile::SynthBeijing => 0.3,
    }
}

/// The tuned DeepOD configuration for a city at a scale (the result of our
/// Fig. 8-style sweep on the synthetic substrate: d_s = 32, d_t = 16,
/// d⁴_m = d⁸_m = 32, d⁷_m = d⁹_m = 64, d_h = 32).
pub fn tuned_config(p: CityProfile, scale: Scale) -> DeepOdConfig {
    let mut cfg = DeepOdConfig {
        ds: 32,
        dt_dim: 16,
        d1m: 32,
        d2m: 16,
        d3m: 32,
        d4m: 32,
        d5m: 16,
        d6m: 8,
        d7m: 64,
        d9m: 64,
        dh: 32,
        dtraf: 8,
        batch_size: 16,
        loss_weight: tuned_loss_weight(p),
        init: EmbeddingInit::Node2Vec,
        stcode_supervision: false,
        ..DeepOdConfig::default()
    };
    cfg.epochs = match scale {
        Scale::Quick => 18,
        Scale::Full => 30,
    };
    cfg
}

/// A down-scaled DeepOD config for the many-runs sweeps (Fig. 8/9, Table 7,
/// Fig. 14) where dozens of trainings must finish in minutes.
pub fn sweep_config(p: CityProfile, scale: Scale) -> DeepOdConfig {
    let mut cfg = tuned_config(p, scale);
    cfg.epochs = match scale {
        Scale::Quick => 6,
        Scale::Full => 16,
    };
    cfg
}

/// Smaller datasets for the sweeps.
pub fn sweep_dataset(p: CityProfile, scale: Scale) -> CityDataset {
    let n = match scale {
        Scale::Quick => num_orders(p, Scale::Quick) / 3,
        Scale::Full => num_orders(p, Scale::Quick),
    };
    DatasetBuilder::build(&DatasetConfig::for_profile(p, n))
}

/// Standard training options for harness runs. `threads: 0` defers to the
/// process-wide configured count (installed by [`startup`] from
/// `DEEPOD_THREADS`, or the machine's available parallelism).
pub fn train_options() -> TrainOptions {
    TrainOptions {
        eval_every: 25,
        patience: 20,
        max_eval_samples: 256,
        clip_norm: 5.0,
        weight_decay: 1e-3,
        threads: 0,
        verbose: false,
    }
}

/// The worker-thread count harness runs will use (as installed by
/// [`startup`], or the machine's available parallelism).
pub fn threads() -> usize {
    deepod_tensor::parallel::configured_threads()
}

/// Prints a header line for an experiment binary.
pub fn banner(experiment: &str, scale: Scale) {
    println!(
        "== DeepOD reproduction :: {experiment} (scale: {scale:?}, threads: {}) ==",
        threads()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_quick() {
        assert_eq!(Scale::resolve(None), Scale::Quick);
        assert_eq!(Scale::resolve(Some("full")), Scale::Full);
        assert_eq!(Scale::resolve(Some("FULL")), Scale::Quick, "case-sensitive");
        assert_eq!(Scale::resolve(Some("quick")), Scale::Quick);
    }

    #[test]
    fn order_counts_follow_paper_ratios() {
        assert!(
            num_orders(CityProfile::SynthBeijing, Scale::Quick)
                > num_orders(CityProfile::SynthChengdu, Scale::Quick)
        );
        assert!(
            num_orders(CityProfile::SynthChengdu, Scale::Quick)
                > num_orders(CityProfile::SynthXian, Scale::Quick)
        );
        assert_eq!(
            num_orders(CityProfile::SynthChengdu, Scale::Full),
            3 * num_orders(CityProfile::SynthChengdu, Scale::Quick)
        );
    }

    #[test]
    fn tuned_configs_validate() {
        for p in CITIES {
            tuned_config(p, Scale::Quick).validate().unwrap();
            sweep_config(p, Scale::Full).validate().unwrap();
        }
    }

    #[test]
    fn city_names() {
        assert_eq!(city_name(CityProfile::SynthChengdu), "Chengdu");
        assert_eq!(city_name(CityProfile::SynthXian), "Xi'an");
        assert_eq!(city_name(CityProfile::SynthBeijing), "Beijing");
    }
}

//! Figure 10 + Table 3 inputs — validation MAE vs. training steps for the
//! three deep methods (STNN, MURAT, DeepOD) on Chengdu and Xi'an.

use deepod_baselines::{MuratConfig, MuratPredictor, StnnConfig, StnnPredictor};
use deepod_bench::{banner, city_name, dataset, train_options, tuned_config};
use deepod_core::Trainer;
use deepod_eval::{write_csv, TextTable};
use deepod_roadnet::CityProfile;

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Figure 10: validation MAE vs training steps", scale);

    let mut table = TextTable::new(&["City", "Method", "step", "val_mae", "elapsed_s"]);

    for profile in [CityProfile::SynthChengdu, CityProfile::SynthXian] {
        let ds = dataset(profile, scale);
        println!("{} ({} train orders)", city_name(profile), ds.train.len());

        // STNN.
        let t0 = std::time::Instant::now();
        let mut stnn = StnnPredictor::new(StnnConfig {
            epochs: 12,
            ..Default::default()
        });
        let curve = stnn.fit_with_validation(&ds, 10);
        let stnn_time = t0.elapsed().as_secs_f64();
        for &(step, mae) in &curve {
            table.row(&[
                city_name(profile).into(),
                "STNN".into(),
                step.to_string(),
                format!("{mae:.1}"),
                format!(
                    "{:.2}",
                    stnn_time * step as f64 / curve.last().unwrap().0 as f64
                ),
            ]);
        }
        println!(
            "  STNN:   {} curve points, final val MAE {:.1}s ({stnn_time:.0}s)",
            curve.len(),
            curve.last().map(|c| c.1).unwrap_or(f32::NAN)
        );

        // MURAT.
        let t0 = std::time::Instant::now();
        let mut murat = MuratPredictor::new(MuratConfig {
            epochs: 12,
            ..Default::default()
        })
        .expect("valid slot size");
        let curve = murat.fit_with_validation(&ds, 10);
        let murat_time = t0.elapsed().as_secs_f64();
        for &(step, mae) in &curve {
            table.row(&[
                city_name(profile).into(),
                "MURAT".into(),
                step.to_string(),
                format!("{mae:.1}"),
                format!(
                    "{:.2}",
                    murat_time * step as f64 / curve.last().unwrap().0 as f64
                ),
            ]);
        }
        println!(
            "  MURAT:  {} curve points, final val MAE {:.1}s ({murat_time:.0}s)",
            curve.len(),
            curve.last().map(|c| c.1).unwrap_or(f32::NAN)
        );

        // DeepOD.
        let mut opts = train_options();
        opts.eval_every = 10;
        opts.patience = 0; // full curve, no early stop
        let mut trainer = Trainer::new(&ds, tuned_config(profile, scale), opts).expect("trainer");
        let report = trainer.train();
        for p in &report.curve {
            table.row(&[
                city_name(profile).into(),
                "DeepOD".into(),
                p.step.to_string(),
                format!("{:.1}", p.val_mae),
                format!("{:.2}", p.elapsed_s),
            ]);
        }
        println!(
            "  DeepOD: {} curve points, best val MAE {:.1}s ({:.0}s)",
            report.curve.len(),
            report.best_val_mae,
            report.total_time_s
        );
    }

    match write_csv("fig10_training_curves", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

//! Figure 14(a) — effect of the time-slot size Δt: MAPE on Chengdu for
//! Δt ∈ {1, 5, 10, 30, 60} minutes. The paper finds a U-shape with the
//! optimum at 5 minutes (finer slots are sparser, coarser slots blur the
//! temporal signal).

use deepod_bench::{banner, sweep_config, sweep_dataset, train_options};
use deepod_eval::{run_method, write_csv, DeepOdMethod, Method, TextTable};
use deepod_roadnet::CityProfile;

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Figure 14a: MAPE vs time-slot size", scale);

    let minutes = [1.0f64, 5.0, 10.0, 30.0, 60.0];
    let ds = sweep_dataset(CityProfile::SynthChengdu, scale);
    println!("Chengdu ({} train orders)", ds.train.len());

    let mut table = TextTable::new(&["slot_minutes", "MAPE(%)", "MAE(s)"]);
    for &m in &minutes {
        let mut cfg = sweep_config(CityProfile::SynthChengdu, scale);
        cfg.slot_seconds = m * 60.0;
        let r = run_method(
            Method::DeepOd(DeepOdMethod {
                name: format!("DeepOD Δt={m}min"),
                config: cfg,
                options: train_options(),
            }),
            &ds,
        )
        .expect("method runs");
        println!(
            "  Δt = {m:>4} min: MAPE {:5.1}%  MAE {:6.1}s",
            r.metrics.mape_pct, r.metrics.mae
        );
        table.row(&[
            format!("{m}"),
            format!("{:.2}", r.metrics.mape_pct),
            format!("{:.1}", r.metrics.mae),
        ]);
    }

    println!("\n{}", table.render());
    match write_csv("fig14a_slot_size", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

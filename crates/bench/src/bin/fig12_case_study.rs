//! Figure 12 — case study: 50 random test trips (travel time < 1 h) per
//! city, with estimated vs. actual travel time for every method. The
//! paper plots these as scatter points against the y = x reference line.

use deepod_bench::{banner, city_name, dataset, train_options, tuned_config};
use deepod_eval::{all_baselines, run_method, write_csv, DeepOdMethod, Method, TextTable};
use deepod_roadnet::CityProfile;
use rand::Rng;

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner(
        "Figure 12: estimated vs actual (50 random test trips)",
        scale,
    );

    let mut table = TextTable::new(&["City", "Method", "actual_s", "estimated_s"]);

    for profile in [CityProfile::SynthChengdu, CityProfile::SynthXian] {
        let ds = dataset(profile, scale);

        let mut methods: Vec<Method> = all_baselines();
        methods.push(Method::DeepOd(DeepOdMethod {
            name: "DeepOD".into(),
            config: tuned_config(profile, scale),
            options: train_options(),
        }));

        // Pick 50 random test indices with travel time < 1 hour, shared by
        // all methods (the paper samples once and plots every method).
        let mut rng = deepod_tensor::rng_from_seed(0x000F_1612);
        let eligible: Vec<usize> = (0..ds.test.len())
            .filter(|&i| ds.test[i].travel_time < 3600.0)
            .collect();
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < 50.min(eligible.len()) {
            chosen.insert(eligible[rng.gen_range(0..eligible.len())]);
        }

        for m in methods {
            let r = run_method(m, &ds).expect("method runs");
            // `pairs` is aligned with test order indices only when every
            // prediction succeeded; recompute the mapping defensively.
            let mut close_count = 0usize;
            for (k, &i) in chosen.iter().enumerate() {
                // Pair index: count how many of the first i test orders got
                // predictions. For our predictors all of them do.
                if i < r.pairs.len() {
                    let p = r.pairs[i];
                    table.row(&[
                        city_name(profile).into(),
                        r.name.clone(),
                        format!("{:.0}", p.actual),
                        format!("{:.0}", p.predicted),
                    ]);
                    if (p.predicted - p.actual).abs() / p.actual < 0.2 {
                        close_count += 1;
                    }
                }
                let _ = k;
            }
            println!(
                "{} {:8}: {}/{} within 20% of y=x",
                city_name(profile),
                r.name,
                close_count,
                chosen.len()
            );
        }
    }

    match write_csv("fig12_case_study", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

//! Extensions beyond the paper's evaluation (DESIGN.md §10): the
//! route-based TTE reference predictor and goal-directed routing
//! (A*/ALT vs Dijkstra) — ablation-style evidence for two design choices
//! the core system makes (OD-only inputs; plain Dijkstra in the
//! simulator).

use deepod_baselines::RouteTtePredictor;
use deepod_bench::{banner, city_name, dataset};
use deepod_eval::{metric_cell, run_method, write_csv, Method, TextTable};
use deepod_roadnet::{
    alt_shortest_path, astar_shortest_path, dijkstra_shortest_path, CityProfile, Landmarks, NodeId,
};
use rand::Rng;
use std::time::Instant;

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner(
        "Extensions: RouteTTE reference + goal-directed routing",
        scale,
    );

    // 1. RouteTTE vs the OD-only regime: how much of the error comes from
    //    not knowing the route? RouteTTE routes at query time over learned
    //    per-segment speeds, an upper-bound-ish reference for OD methods.
    let mut table = TextTable::new(&["City", "Method", "MAE(s)", "MAPE(%)"]);
    for profile in [CityProfile::SynthChengdu, CityProfile::SynthXian] {
        let ds = dataset(profile, scale);
        let r = run_method(Method::Baseline(Box::new(RouteTtePredictor::new())), &ds)
            .expect("method runs");
        println!(
            "{} RouteTTE: MAE {:.1}s MAPE {:.1}% (size {} B)",
            city_name(profile),
            r.metrics.mae,
            r.metrics.mape_pct,
            r.model_size_bytes
        );
        table.row(&[
            city_name(profile).into(),
            "RouteTTE".into(),
            metric_cell(r.metrics.mae, 1),
            metric_cell(r.metrics.mape_pct, 2),
        ]);
    }
    let _ = write_csv("ext_route_tte", &table);

    // 2. Goal-directed routing: settled-node counts and wall-clock for
    //    Dijkstra vs A* vs ALT on the Beijing-analogue network.
    let net = deepod_roadnet::CityConfig::profile(CityProfile::SynthBeijing).generate();
    println!("\nrouting on Beijing-analogue ({} nodes):", net.num_nodes());
    let t0 = Instant::now();
    let landmarks = Landmarks::build(&net, 6);
    println!(
        "  landmark preprocessing: {:.2}s (6 landmarks)",
        t0.elapsed().as_secs_f64()
    );

    let mut rng = deepod_tensor::rng_from_seed(0xA57);
    let n = net.num_nodes();
    let queries: Vec<(NodeId, NodeId)> = (0..200)
        .map(|_| {
            (
                NodeId(rng.gen_range(0..n) as u32),
                NodeId(rng.gen_range(0..n) as u32),
            )
        })
        .collect();

    let mut rows = TextTable::new(&["algorithm", "mean_settled", "total_ms"]);
    // Dijkstra baseline (count settles by running to completion per query).
    let t0 = Instant::now();
    let mut d_ok = 0usize;
    for &(a, b) in &queries {
        if dijkstra_shortest_path(&net, a, b, |e| net.edge(e).length).is_ok() {
            d_ok += 1;
        }
    }
    let d_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mut a_settled = 0usize;
    let mut a_ok = 0usize;
    for &(a, b) in &queries {
        if let Some((_, s)) = astar_shortest_path(&net, a, b) {
            a_settled += s;
            a_ok += 1;
        }
    }
    let a_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mut l_settled = 0usize;
    let mut l_ok = 0usize;
    for &(a, b) in &queries {
        if let Some((_, s)) = alt_shortest_path(&net, &landmarks, a, b) {
            l_settled += s;
            l_ok += 1;
        }
    }
    let l_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert_eq!(d_ok, a_ok);
    assert_eq!(d_ok, l_ok);
    println!("  dijkstra: {d_ms:.0} ms for {d_ok} routable queries");
    println!(
        "  a*      : {a_ms:.0} ms, mean settled {}",
        a_settled / a_ok.max(1)
    );
    println!(
        "  alt     : {l_ms:.0} ms, mean settled {}",
        l_settled / l_ok.max(1)
    );
    rows.row(&["dijkstra".into(), "-".into(), format!("{d_ms:.1}")]);
    rows.row(&[
        "astar".into(),
        (a_settled / a_ok.max(1)).to_string(),
        format!("{a_ms:.1}"),
    ]);
    rows.row(&[
        "alt".into(),
        (l_settled / l_ok.max(1)).to_string(),
        format!("{l_ms:.1}"),
    ]);
    let _ = write_csv("ext_routing", &rows);
    println!("\n{}", rows.render());
}

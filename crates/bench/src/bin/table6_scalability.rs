//! Table 6 — scalability: test MAPE of every method when trained on
//! 20 / 40 / 60 / 80 / 100 % of the Beijing training data.

use deepod_bench::{banner, dataset, sweep_config, train_options};
use deepod_eval::{
    all_baselines, metric_cell, run_method, write_csv, DeepOdMethod, Method, TextTable,
};
use deepod_roadnet::CityProfile;

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Table 6: scalability on Beijing", scale);

    let full = dataset(CityProfile::SynthBeijing, scale);
    println!(
        "Beijing: {} train / {} test orders",
        full.train.len(),
        full.test.len()
    );

    let fractions = [0.2f64, 0.4, 0.6, 0.8, 1.0];
    let mut table = TextTable::new(&["scale", "Method", "MAPE(%)", "MAE(s)"]);

    for &frac in &fractions {
        // Chronological prefix (the paper samples; a prefix preserves the
        // time ordering that the chronological split depends on).
        let keep = deepod_tensor::round_count(full.train.len() as f64 * frac);
        let mut ds = deepod_traj::CityDataset {
            net: full.net.clone(),
            traffic: full.traffic.clone(),
            train: full.train[full.train.len() - keep..].to_vec(),
            validation: full.validation.clone(),
            test: full.test.clone(),
            config: full.config.clone(),
        };
        // Keep the most recent `keep` orders (closest to the test period).
        ds.train.sort_by(|a, b| a.od.depart.total_cmp(&b.od.depart));
        println!("-- {:.0}% ({} train orders)", frac * 100.0, ds.train.len());

        let mut methods: Vec<Method> = all_baselines();
        methods.push(Method::DeepOd(DeepOdMethod {
            // Sweep-scale config: five fractions × six methods must finish
            // in minutes; relative MAPE vs data fraction is what Table 6
            // reports.
            name: "DeepOD".into(),
            config: sweep_config(CityProfile::SynthBeijing, scale),
            options: train_options(),
        }));
        for m in methods {
            let r = run_method(m, &ds).expect("method runs");
            println!(
                "   {:8} MAPE {:5.1}%  MAE {:6.1}s",
                r.name, r.metrics.mape_pct, r.metrics.mae
            );
            table.row(&[
                format!("{:.0}%", frac * 100.0),
                r.name.clone(),
                metric_cell(r.metrics.mape_pct, 2),
                metric_cell(r.metrics.mae, 1),
            ]);
        }
    }

    println!("\n{}", table.render());
    match write_csv("table6_scalability", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

//! Figure 14(b) — heat map of the learned time-slot embeddings: train
//! DeepOD on Chengdu, project every weekly slot embedding to 1-D with
//! t-SNE, average over 2-hour buckets, and print the (day × hour-bucket)
//! grid. The paper's finding: neighboring slots are smooth and weekdays
//! resemble each other (daily/weekly periodicity visible).

use deepod_bench::{banner, sweep_config, sweep_dataset, train_options};
use deepod_core::Trainer;
use deepod_eval::{write_csv, TextTable};
use deepod_graphembed::{tsne_1d, TsneConfig};
use deepod_roadnet::CityProfile;

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Figure 14b: t-SNE heat map of time-slot embeddings", scale);

    let ds = sweep_dataset(CityProfile::SynthChengdu, scale);
    let cfg = sweep_config(CityProfile::SynthChengdu, scale);
    let slot_seconds = cfg.slot_seconds;
    let mut trainer = Trainer::new(&ds, cfg, train_options()).expect("trainer");
    trainer.train();

    let model = trainer.model();
    let table_param = model.slot_emb.table;
    let emb = model.store.value(table_param).clone();
    println!("slot embedding table: {} x {}", emb.dim(0), emb.dim(1));

    let mut rng = deepod_tensor::rng_from_seed(0xF16_14B);
    let coords = tsne_1d(&emb, &TsneConfig::default(), &mut rng);

    // Average into (day, 2-hour bucket) cells.
    let slots_per_day = deepod_tensor::round_count(86_400.0 / slot_seconds);
    let buckets_per_day = 12; // 2-hour buckets
    let per_bucket = slots_per_day / buckets_per_day;
    let mut grid = vec![vec![0.0f64; buckets_per_day]; 7];
    for (day, row) in grid.iter_mut().enumerate() {
        for (b, cell) in row.iter_mut().enumerate() {
            let start = day * slots_per_day + b * per_bucket;
            let end = start + per_bucket;
            let vals = &coords[start..end.min(coords.len())];
            *cell = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        }
    }

    // Normalize to [-10, 10] for display parity with the paper's colorbar.
    let maxabs = grid
        .iter()
        .flatten()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-9);
    let mut csv = TextTable::new(&["day", "hour_bucket", "tsne_value"]);
    let days = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
    println!(
        "\n        {}",
        (0..buckets_per_day)
            .map(|b| format!("{:>6}", b * 2))
            .collect::<String>()
    );
    for (d, row) in grid.iter().enumerate() {
        let mut line = format!("{:>6}  ", days[d]);
        for (b, &v) in row.iter().enumerate() {
            let scaled = 10.0 * v / maxabs;
            line.push_str(&format!("{scaled:>6.1}"));
            csv.row(&[days[d].into(), format!("{}", b * 2), format!("{scaled:.3}")]);
        }
        println!("{line}");
    }

    // Smoothness + periodicity diagnostics (the paper's qualitative claims).
    let mut neighbor_diff = 0.0;
    let mut random_diff = 0.0;
    let n = coords.len();
    for i in 0..n {
        neighbor_diff += (coords[i] - coords[(i + 1) % n]).abs();
        random_diff += (coords[i] - coords[(i + n / 2) % n]).abs();
    }
    println!(
        "\nneighbor-slot mean |Δtsne| {:.3} vs antipodal {:.3} (smooth ⇔ smaller)",
        neighbor_diff / n as f64,
        random_diff / n as f64
    );
    let mut day_corr = 0.0;
    for pair in grid.windows(2) {
        for (a, b) in pair[0].iter().zip(&pair[1]) {
            day_corr += (a - b).abs();
        }
    }
    println!(
        "mean |adjacent-day difference| per bucket: {:.3} (daily periodicity ⇔ small)",
        day_corr / (6 * buckets_per_day) as f64
    );

    match write_csv("fig14b_slot_heatmap", &csv) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

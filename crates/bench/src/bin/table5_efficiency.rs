//! Table 5 — efficiency: model size (bytes), offline training time and
//! online estimation latency per 1 000 queries for every method on the
//! three cities.

use deepod_bench::{banner, city_name, dataset, train_options, tuned_config, CITIES};
use deepod_eval::{all_baselines, run_method, write_csv, DeepOdMethod, Method, TextTable};

fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2}M", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2}K", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes}B")
    }
}

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Table 5: efficiency (size / training / estimation)", scale);

    let mut table = TextTable::new(&[
        "City",
        "Method",
        "size_bytes",
        "size",
        "train_s",
        "est_s_per_1k",
    ]);

    for profile in CITIES {
        let ds = dataset(profile, scale);
        println!(
            "{} ({} road segments)",
            city_name(profile),
            ds.net.num_edges()
        );

        let mut methods: Vec<Method> = all_baselines();
        methods.push(Method::DeepOd(DeepOdMethod {
            name: "DeepOD".into(),
            config: tuned_config(profile, scale),
            options: train_options(),
        }));

        for m in methods {
            let r = run_method(m, &ds).expect("method runs");
            println!(
                "  {:8} size {:>9}  train {:7.1}s  est {:6.3}s/1k",
                r.name,
                human_size(r.model_size_bytes),
                r.train_time_s,
                r.est_time_s_per_k
            );
            table.row(&[
                city_name(profile).into(),
                r.name.clone(),
                r.model_size_bytes.to_string(),
                human_size(r.model_size_bytes),
                format!("{:.2}", r.train_time_s),
                format!("{:.4}", r.est_time_s_per_k),
            ]);
        }
    }

    println!("\n{}", table.render());
    match write_csv("table5_efficiency", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

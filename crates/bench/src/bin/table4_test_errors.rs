//! Table 4 — test errors (MAE / MAPE / MARE) of every baseline, every
//! DeepOD ablation, and full DeepOD on the three city datasets.
//!
//! Usage: `cargo run --release -p deepod-bench --bin table4_test_errors
//! [quick|full]`.

use deepod_bench::{banner, city_name, dataset, train_options, tuned_config, CITIES};
use deepod_core::Variant;
use deepod_eval::{
    all_baselines, metric_cell, run_method, write_csv, DeepOdMethod, Method, TextTable,
};

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Table 4: test errors", scale);

    let mut table = TextTable::new(&["City", "Method", "MAE(s)", "MAPE(%)", "MARE(%)"]);

    for profile in CITIES {
        let ds = dataset(profile, scale);
        println!(
            "{}: {} train / {} val / {} test orders, {} road segments",
            city_name(profile),
            ds.train.len(),
            ds.validation.len(),
            ds.test.len(),
            ds.net.num_edges()
        );

        // Five baselines.
        for m in all_baselines() {
            let r = run_method(m, &ds).expect("method runs");
            println!(
                "  {:8} MAE {:7.1}  MAPE {:5.1}%  MARE {:5.1}%",
                r.name, r.metrics.mae, r.metrics.mape_pct, r.metrics.mare_pct
            );
            table.row(&[
                city_name(profile).into(),
                r.name.clone(),
                metric_cell(r.metrics.mae, 1),
                metric_cell(r.metrics.mape_pct, 2),
                metric_cell(r.metrics.mare_pct, 2),
            ]);
        }

        // Ablations + full model.
        let variants = [
            (Variant::NoTrajectory, "N-st"),
            (Variant::NoSpatialPath, "N-sp"),
            (Variant::NoTemporalPath, "N-tp"),
            (Variant::NoExternal, "N-other"),
            (Variant::Full, "DeepOD"),
        ];
        for (variant, name) in variants {
            let mut cfg = tuned_config(profile, scale);
            cfg.variant = variant;
            let r = run_method(
                Method::DeepOd(DeepOdMethod {
                    name: name.to_string(),
                    config: cfg,
                    options: train_options(),
                }),
                &ds,
            )
            .expect("method runs");
            println!(
                "  {:8} MAE {:7.1}  MAPE {:5.1}%  MARE {:5.1}%  (train {:.0}s)",
                r.name, r.metrics.mae, r.metrics.mape_pct, r.metrics.mare_pct, r.train_time_s
            );
            table.row(&[
                city_name(profile).into(),
                r.name.clone(),
                metric_cell(r.metrics.mae, 1),
                metric_cell(r.metrics.mape_pct, 2),
                metric_cell(r.metrics.mare_pct, 2),
            ]);
        }
    }

    println!("\n{}", table.render());
    match write_csv("table4_test_errors", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

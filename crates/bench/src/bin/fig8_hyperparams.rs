//! Figure 8 — hyper-parameter sensitivity: validation MAPE and MARE when
//! varying each of the twelve layer widths (d_s, d_t, d¹_m … d⁹_m, d_h,
//! d_traf) independently around the tuned point, on Chengdu and Xi'an.
//!
//! Quick scale sweeps {8, 16, 32, 64}; full scale sweeps the paper's
//! {32, 64, 128, 256}.

use deepod_bench::{banner, city_name, sweep_config, sweep_dataset, train_options, Scale};
use deepod_core::{DeepOdConfig, PredictRequest, Trainer};
use deepod_eval::{write_csv, TextTable};
use deepod_roadnet::CityProfile;

/// Which hyper-parameter a sweep entry varies.
#[derive(Clone, Copy)]
enum Param {
    Ds,
    Dt,
    D1m,
    D2m,
    D3m,
    D4m,
    D5m,
    D6m,
    D7m,
    D9m,
    Dh,
    Dtraf,
}

impl Param {
    fn all() -> [(Param, &'static str); 12] {
        [
            (Param::Ds, "ds"),
            (Param::Dt, "dt"),
            (Param::D1m, "d1m"),
            (Param::D2m, "d2m"),
            (Param::D3m, "d3m"),
            (Param::D4m, "d4m_d8m"),
            (Param::D5m, "d5m"),
            (Param::D6m, "d6m"),
            (Param::D7m, "d7m"),
            (Param::D9m, "d9m"),
            (Param::Dh, "dh"),
            (Param::Dtraf, "dtraf"),
        ]
    }

    fn apply(self, cfg: &mut DeepOdConfig, v: usize) {
        match self {
            Param::Ds => cfg.ds = v,
            Param::Dt => cfg.dt_dim = v,
            Param::D1m => cfg.d1m = v,
            Param::D2m => cfg.d2m = v,
            Param::D3m => cfg.d3m = v,
            Param::D4m => cfg.d4m = v, // d8m is tied to d4m by construction
            Param::D5m => cfg.d5m = v,
            Param::D6m => cfg.d6m = v,
            Param::D7m => cfg.d7m = v,
            Param::D9m => cfg.d9m = v,
            Param::Dh => cfg.dh = v,
            Param::Dtraf => cfg.dtraf = v,
        }
    }
}

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Figure 8: hyper-parameter sweeps", scale);

    let values: Vec<usize> = match scale {
        Scale::Quick => vec![8, 16, 32, 64],
        Scale::Full => vec![32, 64, 128, 256],
    };

    let mut table = TextTable::new(&["City", "param", "value", "MAPE(%)", "MARE(%)"]);

    // Chengdu by default (the paper's primary sweep target); pass
    // FIG8_BOTH=1 to also sweep Xi'an as in the paper's figure.
    let cities: &[CityProfile] = if std::env::var("FIG8_BOTH").is_ok() {
        &[CityProfile::SynthChengdu, CityProfile::SynthXian]
    } else {
        &[CityProfile::SynthChengdu]
    };
    for &profile in cities {
        let ds = sweep_dataset(profile, scale);
        println!("{} ({} train orders)", city_name(profile), ds.train.len());

        for (param, name) in Param::all() {
            print!("  {name:>8}:");
            for &v in &values {
                let mut cfg = sweep_config(profile, scale);
                param.apply(&mut cfg, v);
                let mut trainer = Trainer::new(&ds, cfg, train_options()).expect("trainer");
                trainer.train();
                // Validation metrics (the paper tunes on validation data).
                let samples = trainer.validation_samples().to_vec();
                let reqs: Vec<PredictRequest> = samples
                    .iter()
                    .map(|s| PredictRequest::Encoded(s.od.clone()))
                    .collect();
                let (ctx, net) = trainer.context();
                let preds = trainer.model_ref().estimate_batch(ctx, net, &reqs, 0);
                let mut mape = 0.0f32;
                let mut abs = 0.0f32;
                let mut tot = 0.0f32;
                for (s, pred) in samples.iter().zip(preds) {
                    let p = pred.expect("encoded request cannot fail").eta_seconds;
                    mape += (p - s.travel_time).abs() / s.travel_time.max(1.0);
                    abs += (p - s.travel_time).abs();
                    tot += s.travel_time;
                }
                let mape = 100.0 * mape / samples.len().max(1) as f32;
                let mare = 100.0 * abs / tot.max(1.0);
                print!(" {v}→{mape:.1}%");
                table.row(&[
                    city_name(profile).into(),
                    name.into(),
                    v.to_string(),
                    format!("{mape:.2}"),
                    format!("{mare:.2}"),
                ]);
            }
            println!();
        }
    }

    println!("\n{}", table.render());
    match write_csv("fig8_hyperparams", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

//! Figure 9 — MAPE vs. the auxiliary-loss weight w ∈ {0.1 … 0.9} on all
//! three cities, reported as per-minibatch box-plot statistics (min, Q1,
//! median, Q3, max) over the validation data like the paper's Box-plots.

use deepod_bench::{banner, city_name, sweep_config, sweep_dataset, train_options, Scale, CITIES};
use deepod_core::{PredictRequest, Trainer};
use deepod_eval::{write_csv, TextTable};

/// Quartile summary of a sample.
fn quartiles(mut v: Vec<f32>) -> (f32, f32, f32, f32, f32) {
    v.sort_by(f32::total_cmp);
    let q = |p: f64| -> f32 {
        if v.is_empty() {
            return f32::NAN;
        }
        let idx = deepod_tensor::round_count((v.len() - 1) as f64 * p);
        v[idx]
    };
    (q(0.0), q(0.25), q(0.5), q(0.75), q(1.0))
}

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Figure 9: MAPE vs loss weight w", scale);

    let weights: Vec<f32> = match scale {
        Scale::Quick => vec![0.1, 0.3, 0.5, 0.7, 0.9],
        Scale::Full => (1..=9).map(|i| i as f32 / 10.0).collect(),
    };

    let mut table = TextTable::new(&["City", "w", "min", "q1", "median", "q3", "max", "mean"]);

    for profile in CITIES {
        let ds = sweep_dataset(profile, scale);
        println!("{} ({} train orders)", city_name(profile), ds.train.len());
        let mut best = (f32::INFINITY, 0.0f32);
        for &w in &weights {
            let mut cfg = sweep_config(profile, scale);
            cfg.loss_weight = w;
            let mut trainer = Trainer::new(&ds, cfg, train_options()).expect("trainer");
            trainer.train();

            // Per-minibatch MAPE over validation (batches of 64, like the
            // paper's per-minibatch boxes).
            let samples = trainer.validation_samples().to_vec();
            let (ctx, net) = trainer.context();
            let mut batch_mapes = Vec::new();
            for chunk in samples.chunks(64) {
                let reqs: Vec<PredictRequest> = chunk
                    .iter()
                    .map(|s| PredictRequest::Encoded(s.od.clone()))
                    .collect();
                let preds = trainer.model_ref().estimate_batch(ctx, net, &reqs, 0);
                let mut acc = 0.0f32;
                for (s, pred) in chunk.iter().zip(preds) {
                    let p = pred.expect("encoded request cannot fail").eta_seconds;
                    acc += (p - s.travel_time).abs() / s.travel_time.max(1.0);
                }
                batch_mapes.push(100.0 * acc / chunk.len() as f32);
            }
            let mean = batch_mapes.iter().sum::<f32>() / batch_mapes.len().max(1) as f32;
            let (mn, q1, med, q3, mx) = quartiles(batch_mapes);
            println!("  w={w:.1}: median MAPE {med:.1}% (q1 {q1:.1}, q3 {q3:.1}, mean {mean:.1})");
            if mean < best.0 {
                best = (mean, w);
            }
            table.row(&[
                city_name(profile).into(),
                format!("{w:.1}"),
                format!("{mn:.2}"),
                format!("{q1:.2}"),
                format!("{med:.2}"),
                format!("{q3:.2}"),
                format!("{mx:.2}"),
                format!("{mean:.2}"),
            ]);
        }
        println!("  -> best w for {} : {:.1}", city_name(profile), best.1);
    }

    println!("\n{}", table.render());
    match write_csv("fig9_loss_weight", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

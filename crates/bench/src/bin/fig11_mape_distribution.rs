//! Figure 11 — the empirical distribution (PDF) of per-trip MAPE on the
//! test data for every method, on Chengdu and Xi'an. The paper's claim:
//! DeepOD's distribution has both a smaller mean and smaller variance.

use deepod_bench::{banner, city_name, dataset, train_options, tuned_config};
use deepod_eval::{
    all_baselines, histogram, run_method, write_csv, DeepOdMethod, Method, TextTable,
};
use deepod_roadnet::CityProfile;

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Figure 11: MAPE distribution per method", scale);

    let mut table = TextTable::new(&["City", "Method", "bin_center", "density"]);
    let mut summary = TextTable::new(&["City", "Method", "mean_ape(%)", "std_ape(%)"]);

    for profile in [CityProfile::SynthChengdu, CityProfile::SynthXian] {
        let ds = dataset(profile, scale);
        println!("{}", city_name(profile));

        let mut methods: Vec<Method> = all_baselines();
        methods.push(Method::DeepOd(DeepOdMethod {
            name: "DeepOD".into(),
            config: tuned_config(profile, scale),
            options: train_options(),
        }));

        for m in methods {
            let r = run_method(m, &ds).expect("method runs");
            let apes: Vec<f32> = r.pairs.iter().map(|p| 100.0 * p.ape()).collect();
            let mean = apes.iter().sum::<f32>() / apes.len().max(1) as f32;
            let var = apes.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>()
                / apes.len().max(1) as f32;
            println!(
                "  {:8} mean APE {:5.1}%  std {:5.1}%",
                r.name,
                mean,
                var.sqrt()
            );
            summary.row(&[
                city_name(profile).into(),
                r.name.clone(),
                format!("{mean:.2}"),
                format!("{:.2}", var.sqrt()),
            ]);

            let (centers, density) = histogram(&apes, 0.0, 120.0, 24);
            for (c, d) in centers.iter().zip(&density) {
                table.row(&[
                    city_name(profile).into(),
                    r.name.clone(),
                    format!("{c:.1}"),
                    format!("{d:.5}"),
                ]);
            }
        }
    }

    println!("\n{}", summary.render());
    match write_csv("fig11_mape_distribution", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    let _ = write_csv("fig11_summary", &summary);
}

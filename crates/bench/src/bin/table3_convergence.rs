//! Table 3 — convergence steps and convergence wall-clock time for the
//! three deep methods (STNN, MURAT, DeepOD) on Chengdu and Xi'an.
//!
//! Convergence is defined as the first recorded step whose validation MAE
//! is within 2 % of the run's best (the paper reports "steps/time to
//! stabilize").

use deepod_baselines::{MuratConfig, MuratPredictor, StnnConfig, StnnPredictor};
use deepod_bench::{banner, city_name, dataset, train_options, tuned_config};
use deepod_core::Trainer;
use deepod_eval::{write_csv, TextTable};
use deepod_roadnet::CityProfile;

/// First step within 2 % of the best MAE on the curve.
fn convergence(curve: &[(usize, f32)]) -> (usize, f32) {
    let best = curve.iter().map(|c| c.1).fold(f32::INFINITY, f32::min);
    for &(step, mae) in curve {
        if mae <= best * 1.02 {
            return (step, mae);
        }
    }
    curve.last().copied().unwrap_or((0, f32::NAN))
}

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Table 3: convergence steps and time", scale);

    let mut table = TextTable::new(&[
        "City",
        "Method",
        "conv_steps",
        "conv_time_s",
        "total_time_s",
    ]);

    for profile in [CityProfile::SynthChengdu, CityProfile::SynthXian] {
        let ds = dataset(profile, scale);
        println!("{} ({} train orders)", city_name(profile), ds.train.len());

        // STNN.
        let t0 = std::time::Instant::now();
        let mut stnn = StnnPredictor::new(StnnConfig {
            epochs: 12,
            ..Default::default()
        });
        let curve = stnn.fit_with_validation(&ds, 10);
        let total = t0.elapsed().as_secs_f64();
        let (cstep, _) = convergence(&curve);
        let last_step = curve.last().map(|c| c.0).unwrap_or(1).max(1);
        let ctime = total * cstep as f64 / last_step as f64;
        println!("  STNN:   {cstep} steps, {ctime:.1}s (total {total:.1}s)");
        table.row(&[
            city_name(profile).into(),
            "STNN".into(),
            cstep.to_string(),
            format!("{ctime:.1}"),
            format!("{total:.1}"),
        ]);

        // MURAT.
        let t0 = std::time::Instant::now();
        let mut murat = MuratPredictor::new(MuratConfig {
            epochs: 12,
            ..Default::default()
        })
        .expect("valid slot size");
        let curve = murat.fit_with_validation(&ds, 10);
        let total = t0.elapsed().as_secs_f64();
        let (cstep, _) = convergence(&curve);
        let last_step = curve.last().map(|c| c.0).unwrap_or(1).max(1);
        let ctime = total * cstep as f64 / last_step as f64;
        println!("  MURAT:  {cstep} steps, {ctime:.1}s (total {total:.1}s)");
        table.row(&[
            city_name(profile).into(),
            "MURAT".into(),
            cstep.to_string(),
            format!("{ctime:.1}"),
            format!("{total:.1}"),
        ]);

        // DeepOD (the Trainer computes convergence itself).
        let mut opts = train_options();
        opts.eval_every = 10;
        opts.patience = 0;
        let mut trainer = Trainer::new(&ds, tuned_config(profile, scale), opts).expect("trainer");
        let report = trainer.train();
        println!(
            "  DeepOD: {} steps, {:.1}s (total {:.1}s)",
            report.convergence_step, report.convergence_time_s, report.total_time_s
        );
        table.row(&[
            city_name(profile).into(),
            "DeepOD".into(),
            report.convergence_step.to_string(),
            format!("{:.1}", report.convergence_time_s),
            format!("{:.1}", report.total_time_s),
        ]);
    }

    println!("\n{}", table.render());
    match write_csv("table3_convergence", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

//! Table 7 — embedding-initialization ablations: T-one (random time-slot
//! init), T-day (day-only temporal graph), T-stamp (raw timestamps), and
//! R-one (random road init) vs. full DeepOD, reported as MAPE with the
//! percentage increase over DeepOD.

use deepod_bench::{banner, city_name, sweep_config, sweep_dataset, train_options, CITIES};
use deepod_core::EmbeddingInit;
use deepod_eval::{run_method, write_csv, DeepOdMethod, Method, TextTable};

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Table 7: embedding-initialization ablations", scale);

    let variants = [
        (EmbeddingInit::Node2Vec, "DeepOD"),
        (EmbeddingInit::TimeRandom, "T-one"),
        (EmbeddingInit::TimeDayGraph, "T-day"),
        (EmbeddingInit::TimeStamp, "T-stamp"),
        (EmbeddingInit::RoadRandom, "R-one"),
    ];

    let mut table = TextTable::new(&["City", "Variant", "MAPE(%)", "vs_DeepOD(%)"]);

    for profile in CITIES {
        let ds = sweep_dataset(profile, scale);
        println!("{} ({} train orders)", city_name(profile), ds.train.len());
        let mut base_mape = f32::NAN;
        for (init, name) in variants {
            let mut cfg = sweep_config(profile, scale);
            cfg.init = init;
            let r = run_method(
                Method::DeepOd(DeepOdMethod {
                    name: name.to_string(),
                    config: cfg,
                    options: train_options(),
                }),
                &ds,
            )
            .expect("method runs");
            if name == "DeepOD" {
                base_mape = r.metrics.mape_pct;
            }
            let delta = 100.0 * (r.metrics.mape_pct - base_mape) / base_mape;
            println!(
                "  {:8} MAPE {:5.1}%  ({:+.1}%)",
                name, r.metrics.mape_pct, delta
            );
            table.row(&[
                city_name(profile).into(),
                name.into(),
                format!("{:.2}", r.metrics.mape_pct),
                format!("{delta:+.1}"),
            ]);
        }
    }

    println!("\n{}", table.render());
    match write_csv("table7_embedding_ablations", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

//! Figure 13 — worst-case study: for each method, the 50 test trips with
//! the highest MAPE, with estimated vs. actual time. The paper finds the
//! worst cases concentrate in the up-left corner (short actual, long
//! estimate) and that TEMP's extreme cases reach 200–300 % MAPE.

use deepod_bench::{banner, city_name, dataset, train_options, tuned_config};
use deepod_eval::{all_baselines, run_method, write_csv, DeepOdMethod, Method, TextTable};
use deepod_roadnet::CityProfile;

fn main() {
    let scale = deepod_bench::startup(std::env::args().nth(1), |k| std::env::var(k).ok());
    banner("Figure 13: worst 50 cases per method (by MAPE)", scale);

    let mut table = TextTable::new(&["City", "Method", "actual_s", "estimated_s", "ape(%)"]);
    let mut summary = TextTable::new(&["City", "Method", "worst50_mean_ape(%)", "max_ape(%)"]);

    for profile in [CityProfile::SynthChengdu, CityProfile::SynthXian] {
        let ds = dataset(profile, scale);
        println!("{}", city_name(profile));

        let mut methods: Vec<Method> = all_baselines();
        methods.push(Method::DeepOd(DeepOdMethod {
            name: "DeepOD".into(),
            config: tuned_config(profile, scale),
            options: train_options(),
        }));

        for m in methods {
            let r = run_method(m, &ds).expect("method runs");
            let mut ranked = r.pairs.clone();
            ranked.sort_by(|a, b| b.ape().total_cmp(&a.ape()));
            ranked.truncate(50);
            let mean_ape =
                100.0 * ranked.iter().map(|p| p.ape()).sum::<f32>() / ranked.len().max(1) as f32;
            let max_ape = 100.0 * ranked.first().map(|p| p.ape()).unwrap_or(0.0);
            println!(
                "  {:8} worst-50 mean APE {:6.1}%  max {:6.1}%",
                r.name, mean_ape, max_ape
            );
            summary.row(&[
                city_name(profile).into(),
                r.name.clone(),
                format!("{mean_ape:.1}"),
                format!("{max_ape:.1}"),
            ]);
            for p in &ranked {
                table.row(&[
                    city_name(profile).into(),
                    r.name.clone(),
                    format!("{:.0}", p.actual),
                    format!("{:.0}", p.predicted),
                    format!("{:.1}", 100.0 * p.ape()),
                ]);
            }
        }
    }

    println!("\n{}", summary.render());
    match write_csv("fig13_worst_cases", &table) {
        Ok(p) => println!("wrote {p}"),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
    let _ = write_csv("fig13_summary", &summary);
}

//! Developer diagnostic: train DeepOD on a synthetic Chengdu dataset with
//! ad-hoc knobs and print validation/test/train MAE plus binding-quality
//! statistics (code↔stcode RMS distance, st-head accuracy).
//!
//! Usage: `probe [epochs] [loss_weight] [orders] [n2v] [big]` with
//! environment toggles `NST=1` (N-st variant), `NOSUP=1` (disable stcode
//! supervision), `STONLY=1` (train the trajectory branch alone),
//! `HUGE=1` (larger dims), `INC=<rate>` (incidents per day).
//! This is a tuning scratchpad, not part of the experiment suite.
use deepod_core::{DeepOdConfig, EmbeddingInit, TrainOptions, Trainer, Variant};
use deepod_roadnet::CityProfile;
use deepod_traj::{DatasetBuilder, DatasetConfig};

fn st_only_probe(ds: &deepod_traj::CityDataset, cfg: DeepOdConfig) {
    use deepod_core::{DeepOdModel, FeatureContext};
    let ctx = FeatureContext::build(ds, cfg.slot_seconds).expect("valid probe config");
    let mut model = DeepOdModel::new(&cfg, ds, &ctx).expect("valid probe config");
    let train = ctx.encode_orders(&ds.net, &ds.train);
    let val = ctx.encode_orders(&ds.net, &ds.validation);
    let mut opt = deepod_nn::AdamOptimizer::new(cfg.lr);
    let mut rng = deepod_tensor::rng_from_seed(1);
    for epoch in 0..cfg.epochs {
        opt.set_lr(cfg.lr / 5.0f32.powi((epoch / 2) as i32));
        let mut order: Vec<usize> = (0..train.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rand::Rng::gen_range(&mut rng, 0..=i);
            order.swap(i, j);
        }
        for chunk in order.chunks(cfg.batch_size) {
            let mut grads = deepod_nn::Gradients::new();
            for &i in chunk {
                let mut g = deepod_nn::Graph::new();
                let loss = model.sample_loss_st_only(&mut g, &train[i]);
                grads.merge(g.backward(loss));
            }
            grads.scale(1.0 / chunk.len() as f32);
            grads.clip_global_norm(5.0);
            opt.step(&mut model.store, &grads);
        }
        // eval st_head on val via forward_sample
        let mut mae = 0.0f32;
        let mut n = 0;
        for s in &val {
            let mut g = deepod_nn::Graph::new();
            let fwd = model.forward_sample(&mut g, s, false);
            if let Some(st) = fwd.stcode {
                let p = model.st_head.forward(&mut g, &model.store, st);
                let p = g.value(p).item();
                mae += (model.denormalize_y(p) - s.travel_time).abs();
                n += 1;
            }
        }
        eprintln!("epoch {epoch}: st_head val MAE {:.1} ({n})", mae / n as f32);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let epochs: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(6);
    let w: f32 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(0.5);
    let n: usize = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(400);
    let mut dcfg = DatasetConfig::for_profile(CityProfile::SynthChengdu, n);
    if let Ok(v) = std::env::var("INC") {
        dcfg.incidents_per_day = v.parse().unwrap();
    }
    let ds = DatasetBuilder::build(&dcfg);
    eprintln!(
        "train {} val {} test {}",
        ds.train.len(),
        ds.validation.len(),
        ds.test.len()
    );
    let mean_y = ds.mean_train_travel_time() as f32;
    let mean_mae: f32 = ds
        .test
        .iter()
        .map(|o| (mean_y - o.travel_time as f32).abs())
        .sum::<f32>()
        / ds.test.len() as f32;
    eprintln!("mean-predictor test MAE {mean_mae:.1}");

    let mut cfg = DeepOdConfig {
        init: if args.get(4).map(|s| s == "n2v").unwrap_or(false) {
            EmbeddingInit::Node2Vec
        } else {
            EmbeddingInit::Random
        },
        ..Default::default()
    };
    let big = args.get(5).map(|s| s == "big").unwrap_or(false);
    if big {
        cfg.ds = 32;
        cfg.dt_dim = 16;
        cfg.d1m = 32;
        cfg.d2m = 16;
        cfg.d3m = 32;
        cfg.d4m = 32;
        cfg.d5m = 16;
        cfg.d6m = 8;
        cfg.d7m = 64;
        cfg.d9m = 64;
        cfg.dh = 32;
        cfg.dtraf = 8;
    }
    if std::env::var("HUGE").is_ok() {
        cfg.ds = 48;
        cfg.dt_dim = 24;
        cfg.d1m = 48;
        cfg.d2m = 24;
        cfg.d3m = 48;
        cfg.d4m = 48;
        cfg.d5m = 24;
        cfg.d6m = 12;
        cfg.d7m = 96;
        cfg.d9m = 96;
        cfg.dh = 48;
        cfg.dtraf = 12;
        cfg.batch_size = 32;
    } else {
        cfg.ds = 8;
        cfg.dt_dim = 8;
        cfg.d1m = 12;
        cfg.d2m = 8;
        cfg.d3m = 12;
        cfg.d4m = 8;
        cfg.d5m = 12;
        cfg.d6m = 8;
        cfg.d7m = 16;
        cfg.d9m = 16;
        cfg.dh = 16;
        cfg.dtraf = 6;
    }
    cfg.epochs = epochs;
    cfg.batch_size = 16;
    cfg.loss_weight = w;
    if std::env::var("NST").is_ok() {
        cfg.variant = Variant::NoTrajectory;
    }
    if std::env::var("NOSUP").is_ok() {
        cfg.stcode_supervision = false;
    }
    if std::env::var("STONLY").is_ok() {
        st_only_probe(&ds, cfg.clone());
        return;
    }
    let t0 = std::time::Instant::now();
    let mut trainer = Trainer::new(
        &ds,
        cfg,
        TrainOptions {
            verbose: false,
            eval_every: 20,
            patience: 10,
            ..Default::default()
        },
    )
    .expect("trainer");
    let report = trainer.train();
    eprintln!(
        "trained in {:.1}s, best val MAE {:.1}",
        t0.elapsed().as_secs_f64(),
        report.best_val_mae
    );
    let preds = trainer.predict_orders(&ds.test);
    let mut mae = 0.0;
    let mut mape = 0.0;
    let mut n = 0;
    for (p, o) in preds.iter().zip(&ds.test) {
        if let Some(p) = p {
            mae += (p - o.travel_time as f32).abs();
            mape += (p - o.travel_time as f32).abs() / o.travel_time as f32;
            n += 1;
        }
    }
    eprintln!(
        "test MAE {:.1} MAPE {:.1}% over {n}",
        mae / n as f32,
        100.0 * mape / n as f32
    );
    // train MAE for overfit diagnosis
    let tp = trainer.predict_orders(&ds.train);
    let mut tmae = 0.0;
    let mut tn = 0;
    for (p, o) in tp.iter().zip(&ds.train) {
        if let Some(p) = p {
            tmae += (p - o.travel_time as f32).abs();
            tn += 1;
        }
    }
    eprintln!("train MAE {:.1} over {tn}", tmae / tn as f32);
    // inspect binding quality on validation samples
    {
        let samples: Vec<_> = trainer
            .validation_samples()
            .iter()
            .take(100)
            .cloned()
            .collect();
        let model = trainer.model();
        let mut dist = 0.0f32;
        let mut st_mae = 0.0f32;
        let mut code_mae = 0.0f32;
        let mut m = 0;
        for s in &samples {
            let mut gr = deepod_nn::Graph::new();
            let fwd = model.forward_sample(&mut gr, s, false);
            if let Some(st) = fwd.stcode {
                let c = gr.value(fwd.code).clone();
                let sv = gr.value(st).clone();
                dist += c.sub(&sv).norm() / (c.numel() as f32).sqrt();
                let stp = model.st_head.forward(&mut gr, &model.store, st);
                let stp = gr.value(stp).item();
                st_mae += (model.denormalize_y(stp) - s.travel_time).abs();
                let cp = gr.value(fwd.prediction).item();
                code_mae += (model.denormalize_y(cp) - s.travel_time).abs();
                m += 1;
            }
        }
        if m > 0 {
            eprintln!(
                "binding: rms-dist {:.3}, st_head MAE {:.1}, code MAE {:.1} ({m} samples)",
                dist / m as f32,
                st_mae / m as f32,
                code_mae / m as f32
            );
        }
    }
}

//! Worker supervision: catch panics, recover the doomed batch, restart
//! with a rebuilt replica (DESIGN.md §14).
//!
//! Every worker thread in `crates/serve` is born here — the
//! `no-unsupervised-spawn` lint forbids `thread::spawn` anywhere else in
//! the crate, so the invariant "a dead worker always comes back, and its
//! in-flight requests are always answered" cannot rot silently.
//!
//! The supervision loop per shard:
//!
//! ```text
//! loop {
//!     replica  = master.clone()            // CoW: Arc-backed weights
//!     outcome  = catch_unwind(worker_loop(replica))
//!     Ok(_)    -> return                   // queue closed and drained
//!     Err(_)   -> counter serve.worker_restarts
//!                 recover in-flight batch: retry budget left?
//!                     yes -> requeue at the front (order preserved)
//!                     no  -> reply Err(WorkerCrashed)
//!                 sleep backoff_ms(restarts); continue
//! }
//! ```
//!
//! The worker stashes each batch in the shard's `in_flight` slot before
//! running it, so the panic path always finds either the doomed batch
//! (recoverable) or nothing (the panic struck between batches — no
//! requests were lost because none were out of the queue).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use deepod_baselines::RouteTtePredictor;
use deepod_core::obs::{self, registry};
use deepod_core::FeatureContext;
use deepod_traj::CityDataset;

use crate::engine::{Backend, Pending, ServeError, Shared};
use crate::shed::backoff_ms;
use crate::worker::worker_loop;

/// The pristine copy of everything a worker needs: the supervisor clones
/// a fresh replica from it on start and after every crash, so a panic
/// can never leave a shard running half-poisoned state.
pub(crate) struct Master {
    pub(crate) backend: Backend,
    pub(crate) fallback: Option<RouteTtePredictor>,
    pub(crate) ctx: Arc<FeatureContext>,
    pub(crate) ds: Arc<CityDataset>,
}

/// Spawns the supervised worker thread for one shard. Together with
/// [`spawn_net`] these are the only `thread::spawn` sites in the crate
/// (enforced by `no-unsupervised-spawn`).
pub(crate) fn spawn_supervised(
    shared: Arc<Shared>,
    shard_idx: usize,
    master: Arc<Master>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || supervise(&shared, shard_idx, &master))
}

/// Spawns a supervised utility thread for the network front end
/// ([`crate::net`]): the body runs under `catch_unwind`, so a bug in one
/// connection's reader/writer loop takes down that connection only —
/// counted (`serve.net_thread_panics`) and logged, never a silent unwind
/// through the accept loop or a poisoned process.
pub(crate) fn spawn_net(
    label: &'static str,
    body: impl FnOnce() + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        if catch_unwind(AssertUnwindSafe(body)).is_err() {
            registry::counter_inc("serve.net_thread_panics");
            obs::warn(
                "serve",
                "network thread panicked; its connection is gone",
                &[("thread", label.into())],
            );
        }
    })
}

/// The supervision loop: run the worker, and on panic recover the doomed
/// batch, back off deterministically, rebuild the replica, and restart.
/// Returns only when the worker exits cleanly (queue closed and drained).
fn supervise(shared: &Shared, shard_idx: usize, master: &Master) {
    let mut restarts: u32 = 0;
    loop {
        let mut backend = master.backend.clone();
        let mut fallback = master.fallback.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(
                shared,
                shard_idx,
                &mut backend,
                &mut fallback,
                &master.ctx,
                &master.ds,
            );
        }));
        if outcome.is_ok() {
            return;
        }
        registry::counter_inc("serve.worker_restarts");
        obs::warn(
            "serve",
            "worker panicked; restarting with a fresh replica",
            &[
                ("shard", (shard_idx as u64).into()),
                ("restarts", u64::from(restarts.saturating_add(1)).into()),
            ],
        );
        recover_in_flight(shared, shard_idx);
        std::thread::sleep(Duration::from_millis(backoff_ms(restarts)));
        restarts = restarts.saturating_add(1);
    }
}

/// Deals with the batch the crashed worker left in the shard's
/// `in_flight` slot: requests with retry budget left go back to the
/// *front* of the queue (preserving their order ahead of newer work,
/// counted under `serve.retries`); exhausted ones are answered with
/// [`ServeError::WorkerCrashed`] — every reply slot resolves, none hang.
fn recover_in_flight(shared: &Shared, shard_idx: usize) {
    let Some(shard) = shared.shards.get(shard_idx) else {
        return;
    };
    let doomed: Vec<Pending> = {
        let mut slot = shard.in_flight.lock().unwrap_or_else(|p| p.into_inner());
        slot.take().unwrap_or_default()
    };
    if doomed.is_empty() {
        return;
    }
    let budget = shared.config.retry_budget;
    let mut requeue: Vec<Pending> = Vec::new();
    for mut p in doomed {
        if p.attempts < budget {
            p.attempts = p.attempts.saturating_add(1);
            registry::counter_inc("serve.retries");
            requeue.push(p);
        } else {
            let _ = p.tx.send(Err(ServeError::WorkerCrashed));
        }
    }
    if requeue.is_empty() {
        return;
    }
    let n = requeue.len();
    {
        let mut q = shard.lock_queue();
        // May transiently overshoot capacity; blocked producers simply
        // stay blocked until the restarted worker drains the overshoot.
        for p in requeue.into_iter().rev() {
            q.items.push_front(p);
        }
    }
    shared.depth.fetch_add(n, Ordering::Relaxed);
    shard.work.notify_one();
}

//! deepod-serve — long-lived batched inference for DeepOD (DESIGN.md §11,
//! §14, §15).
//!
//! The training-side crates answer one query per call; serving wants the
//! opposite shape: load the model **once**, then answer a stream of
//! queries with bounded latency and bounded memory — and keep answering
//! through worker panics, slow batches, and overload. This crate provides:
//!
//! * [`InferenceEngine`] — [`EngineConfig::workers`] sharded bounded MPSC
//!   queues, each drained by a supervised worker thread that coalesces
//!   requests into micro-batches (closing a batch at
//!   [`EngineConfig::max_batch`] requests or after the oldest request has
//!   waited [`EngineConfig::max_wait_ms`]) and runs them through
//!   [`deepod_core::DeepOdModel::estimate_batch`] on a per-worker
//!   copy-on-write model replica.
//! * Supervision — a per-shard supervisor catches worker panics, restarts
//!   the worker with its replica rebuilt (`serve.worker_restarts`), and
//!   either requeues or fails the in-flight batch with a typed
//!   [`ServeError::WorkerCrashed`]; a [`ReplyHandle`] can therefore never
//!   block forever on a dead worker.
//! * Deadlines and retries — [`EngineConfig::deadline_ms`] sheds requests
//!   that expire before batch admission
//!   ([`ServeError::DeadlineExceeded`]); [`EngineConfig::retry_budget`]
//!   bounds crash/queue-full retries on the deterministic
//!   [`shed::backoff_ms`] schedule.
//! * Backpressure and shedding — [`InferenceEngine::submit`] blocks
//!   producers when the queue is full; [`InferenceEngine::try_submit`]
//!   fails fast under the [`shed`] degradation ladder (healthy → degrade →
//!   shed-low → reject, with hysteresis) instead of a binary queue-full
//!   cliff.
//! * Graceful degradation — [`Backend::RouteTte`] serves baseline answers
//!   (marked `degraded`) when the model file is unusable, instead of
//!   taking the process down; with a ladder fallback, requests admitted
//!   under load degrade individually.
//! * [`cache`] — the serving cache tier (DESIGN.md §15): an optional
//!   precomputed [`deepod_core::OdOracle`] plus a bounded in-process LRU
//!   ([`ServeCache`]), consulted **before queue admission** — a hit
//!   replies immediately with the model's own bit-identical answer and
//!   never consumes worker capacity; entries expire on wall-clock
//!   time-slot boundaries, and degraded answers are never cached.
//! * [`protocol`] — the versioned newline-delimited JSON wire format
//!   (`"v":1`) the `deepod serve` subcommand speaks, identically over
//!   stdin/stdout and TCP; pre-epoch departures are rejected per request
//!   at this layer ([`protocol::validate_depart`]) instead of aliasing
//!   slot 0, and errors carry a typed [`protocol::ErrorKind`].
//! * [`net`] — the TCP front end (`deepod serve --listen`): std-only
//!   listener, one reader/writer pair per connection, per-client
//!   admission control (per-connection in-flight caps plus a
//!   max-connections gate) so a greedy client sheds itself, not everyone.
//! * [`client`] — the blocking [`ServeClient`], the single client-side
//!   implementation of the wire protocol, shared by `deepod bench-serve`
//!   and the integration tests.
//!
//! Everything is instrumented through `deepod_core::obs`: queue depth
//! gauge, batch-size and request-latency histograms, request / degraded /
//! rejected / restart / deadline / retry / shed counters — all registered
//! eagerly so metric snapshots carry the keys even for an idle engine.

pub mod cache;
pub mod client;
mod engine;
pub mod net;
pub mod protocol;
pub mod shed;
mod supervisor;
mod worker;

pub use cache::{CacheConfig, CacheStats, ServeCache};
pub use client::ServeClient;
pub use engine::{
    Backend, EngineConfig, EngineReply, InferenceEngine, Priority, ReplyHandle, ServeError,
};
pub use net::{NetConfig, NetServer};
pub use protocol::{ErrorKind, WireError, WireRequest, WireResponse};
pub use shed::{Ladder, LadderConfig, LadderState};

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_core::{DeepOdConfig, DeepOdModel, EmbeddingInit, FeatureContext, PredictRequest};
    use deepod_roadnet::CityProfile;
    use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig, OdInput};
    use std::sync::Arc;

    fn tiny_setup() -> (Arc<CityDataset>, FeatureContext, DeepOdModel) {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 40));
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        (Arc::new(ds), ctx, model)
    }

    fn od_of(ds: &CityDataset, i: usize) -> OdInput {
        ds.train[i % ds.train.len()].od
    }

    #[test]
    fn engine_answers_batched_requests_bit_identically_to_direct_calls() {
        let (ds, ctx, model) = tiny_setup();
        let reqs: Vec<PredictRequest> = (0..10)
            .map(|i| PredictRequest::Raw(od_of(&ds, i)))
            .collect();
        let direct = model.estimate_batch(&ctx, &ds.net, &reqs, 1);

        let engine = InferenceEngine::start(
            Backend::Model(Box::new(model)),
            ctx,
            Arc::clone(&ds),
            EngineConfig {
                max_batch: 4,
                max_wait_ms: 1,
                ..EngineConfig::default()
            },
        );
        let rxs: Vec<_> = reqs
            .iter()
            .map(|r| engine.submit(r.clone()).expect("queue accepts"))
            .collect();
        for (rx, expect) in rxs.into_iter().zip(direct) {
            let reply = rx.recv().expect("engine answers before shutdown");
            assert!(!reply.degraded);
            let got = reply.result.expect("encoded od resolves");
            let want = expect.expect("direct call resolves");
            assert_eq!(got.eta_seconds.to_bits(), want.eta_seconds.to_bits());
        }
        engine.shutdown();
    }

    #[test]
    fn multi_worker_engine_answers_every_request() {
        let (ds, ctx, model) = tiny_setup();
        let reqs: Vec<PredictRequest> = (0..16)
            .map(|i| PredictRequest::Raw(od_of(&ds, i)))
            .collect();
        let direct = model.estimate_batch(&ctx, &ds.net, &reqs, 1);

        let engine = InferenceEngine::start(
            Backend::Model(Box::new(model)),
            ctx,
            Arc::clone(&ds),
            EngineConfig {
                max_batch: 4,
                max_wait_ms: 1,
                workers: 3,
                ..EngineConfig::default()
            },
        );
        let rxs: Vec<_> = reqs
            .iter()
            .map(|r| engine.submit(r.clone()).expect("queue accepts"))
            .collect();
        // Replicas share Arc-backed weights, so every shard answers
        // bit-identically to the master model.
        for (rx, expect) in rxs.into_iter().zip(direct) {
            let reply = rx.recv().expect("engine answers before shutdown");
            assert!(!reply.degraded);
            let got = reply.result.expect("encoded od resolves");
            let want = expect.expect("direct call resolves");
            assert_eq!(got.eta_seconds.to_bits(), want.eta_seconds.to_bits());
        }
        engine.shutdown();
    }

    #[test]
    fn try_submit_rejects_when_full_and_submit_blocks_until_drained() {
        let (ds, ctx, model) = tiny_setup();
        let engine = InferenceEngine::start(
            Backend::Model(Box::new(model)),
            ctx,
            Arc::clone(&ds),
            EngineConfig {
                max_batch: 1,
                max_wait_ms: 0,
                queue_capacity: 1,
                threads: 1,
                ..EngineConfig::default()
            },
        );
        // Flood try_submit: with capacity 1 at least one rejection must
        // surface (the worker can drain between calls, so we only bound
        // the outcome, not pin an exact count). A capacity-1 ladder sits
        // at Reject whenever anything is queued, so both rejection shapes
        // are legitimate.
        let mut accepted = Vec::new();
        let mut rejected = 0usize;
        for i in 0..64 {
            match engine.try_submit(PredictRequest::Raw(od_of(&ds, i))) {
                Ok(rx) => accepted.push(rx),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected += 1;
                }
                Err(ServeError::Overloaded) => rejected += 1,
                Err(other) => unreachable!("engine is not shutting down: {other}"),
            }
        }
        assert_eq!(accepted.len() + rejected, 64, "every request got a verdict");
        // Blocking submit succeeds even under load — it waits for space.
        let rx = engine
            .submit(PredictRequest::Raw(od_of(&ds, 0)))
            .expect("blocking submit waits instead of failing");
        for rx in accepted {
            rx.recv()
                .expect("accepted requests are answered")
                .result
                .expect("resolves");
        }
        rx.recv()
            .expect("blocked submit answered too")
            .result
            .expect("resolves");
        engine.shutdown();
    }

    #[test]
    fn lru_cache_answers_repeat_requests_bit_identically() {
        use deepod_core::oracle::OdKeyer;
        let (ds, ctx, model) = tiny_setup();
        let od = od_of(&ds, 0);
        let direct = model
            .estimate_batch(&ctx, &ds.net, &[PredictRequest::Raw(od)], 1)
            .pop()
            .expect("one answer")
            .expect("train od resolves");
        let keyer = OdKeyer::for_network(&ds.net, 500.0, *ctx.slots());
        let cache = Arc::new(
            ServeCache::new(
                keyer,
                None,
                CacheConfig {
                    capacity: 16,
                    ttl_seconds: 300.0,
                    shards: 2,
                },
            )
            .expect("valid ttl"),
        );
        let engine = InferenceEngine::start_with_cache(
            Backend::Model(Box::new(model)),
            None,
            Some(Arc::clone(&cache)),
            ctx,
            Arc::clone(&ds),
            EngineConfig {
                max_batch: 1,
                max_wait_ms: 1,
                ..EngineConfig::default()
            },
        );
        // First pass: a miss that the worker's answer populates.
        let first = engine
            .submit(PredictRequest::Raw(od))
            .expect("queue accepts")
            .recv()
            .expect("answered");
        assert!(!first.degraded);
        let first_eta = first.result.expect("resolves").eta_seconds;
        assert_eq!(first_eta.to_bits(), direct.eta_seconds.to_bits());
        assert_eq!(cache.stats().misses, 1);
        // Second pass: served from cache, still bit-identical.
        let second = engine
            .submit(PredictRequest::Raw(od))
            .expect("hit bypasses the queue")
            .recv()
            .expect("answered");
        assert!(!second.degraded);
        assert_eq!(
            second.result.expect("resolves").eta_seconds.to_bits(),
            first_eta.to_bits()
        );
        assert_eq!(cache.stats().hits, 1);
        engine.shutdown();
    }

    #[test]
    fn oracle_tier_serves_canonical_requests_without_workers() {
        use deepod_core::oracle::{precompute, PrecomputeSpec};
        let (ds, ctx, model) = tiny_setup();
        let oracle = precompute(
            &model,
            &ctx,
            &ds,
            &PrecomputeSpec {
                cells: 3,
                slots: 3,
                cell_meters: 500.0,
            },
            "fp".into(),
            1,
        );
        assert!(!oracle.entries.is_empty());
        let entry = oracle.entries[0];
        let canonical = oracle.keyer.canonical_od(entry.key, &ds);
        let keyer = oracle.keyer;
        let cache = Arc::new(
            ServeCache::new(keyer, Some(Arc::new(oracle)), CacheConfig::default())
                .expect("valid ttl"),
        );
        let engine = InferenceEngine::start_with_cache(
            Backend::Model(Box::new(model)),
            None,
            Some(Arc::clone(&cache)),
            ctx,
            Arc::clone(&ds),
            EngineConfig::default(),
        );
        let reply = engine
            .try_submit(PredictRequest::Raw(canonical))
            .expect("oracle hit bypasses admission")
            .recv()
            .expect("answered");
        assert!(!reply.degraded);
        assert_eq!(
            reply.result.expect("resolves").eta_seconds.to_bits(),
            entry.eta_seconds.to_bits(),
            "oracle answer must be the precomputed one"
        );
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 0, "no worker involved");
        engine.shutdown();
    }

    #[test]
    fn fallback_backend_marks_every_reply_degraded() {
        use deepod_baselines::{RouteTtePredictor, TtePredictor};
        let (ds, ctx, _model) = tiny_setup();
        let mut fallback = RouteTtePredictor::new();
        fallback.fit(&ds);
        let engine = InferenceEngine::start(
            Backend::RouteTte(Box::new(fallback)),
            ctx,
            Arc::clone(&ds),
            EngineConfig::default(),
        );
        let rx = engine
            .submit(PredictRequest::Raw(od_of(&ds, 1)))
            .expect("queue accepts");
        let reply = rx.recv().expect("answered");
        assert!(reply.degraded, "fallback answers are flagged");
        assert!(reply.result.is_ok(), "train od resolves on the baseline");
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_work_then_refuses_new_work() {
        let (ds, ctx, model) = tiny_setup();
        let engine = InferenceEngine::start(
            Backend::Model(Box::new(model)),
            ctx,
            Arc::clone(&ds),
            EngineConfig {
                max_batch: 64,
                max_wait_ms: 50,
                ..EngineConfig::default()
            },
        );
        let rxs: Vec<_> = (0..6)
            .map(|i| {
                engine
                    .submit(PredictRequest::Raw(od_of(&ds, i)))
                    .expect("queue accepts")
            })
            .collect();
        engine.shutdown();
        for rx in rxs {
            let reply = rx.recv().expect("accepted requests answered before join");
            reply.result.expect("resolves");
        }
    }

    #[test]
    fn expired_requests_are_shed_with_a_typed_error() {
        let (ds, ctx, model) = tiny_setup();
        let engine = InferenceEngine::start(
            Backend::Model(Box::new(model)),
            ctx,
            Arc::clone(&ds),
            EngineConfig {
                max_batch: 64,
                // The batch only closes after 200ms, but every request
                // expires after 1ms — all of them must be swept, none
                // may reach the model.
                max_wait_ms: 200,
                deadline_ms: 1,
                ..EngineConfig::default()
            },
        );
        let rxs: Vec<_> = (0..4)
            .map(|i| {
                engine
                    .submit(PredictRequest::Raw(od_of(&ds, i)))
                    .expect("queue accepts")
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(30));
        for rx in rxs {
            let got = rx.recv();
            assert!(
                matches!(got, Err(ServeError::DeadlineExceeded)),
                "expected a deadline shed, got {got:?}"
            );
        }
        engine.shutdown();
    }
}

//! The batched inference engine: sharded bounded queues, supervised
//! micro-batch workers, and admission control (DESIGN.md §11, §14).
//!
//! One [`InferenceEngine`] loads a model once and answers many
//! [`PredictRequest`]s. Producers enqueue requests with [`submit`]
//! (blocking flow control) or [`try_submit`] (admission-controlled by the
//! [`crate::shed`] degradation ladder); requests are round-robined over
//! [`EngineConfig::workers`] shards, each drained by a supervised worker
//! thread (see [`crate::supervisor`]) that coalesces micro-batches —
//! closing a batch at [`EngineConfig::max_batch`] requests or when the
//! oldest request has waited [`EngineConfig::max_wait_ms`] — and runs
//! each batch through [`DeepOdModel::estimate_batch`]. Each reply travels
//! back on a per-request channel wrapped in a [`ReplyHandle`], which
//! converts a dead reply slot into a typed [`ServeError::WorkerCrashed`]
//! instead of ever blocking a caller forever.
//!
//! [`submit`]: InferenceEngine::submit
//! [`try_submit`]: InferenceEngine::try_submit

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use deepod_baselines::RouteTtePredictor;
use deepod_core::obs::registry;
use deepod_core::oracle::OracleKey;
use deepod_core::{
    DeepOdModel, FeatureContext, ModelError, PredictRequest, PredictResponse, QuantizedModel,
};
use deepod_traj::CityDataset;

use crate::cache::{self, ServeCache};
use crate::shed::{backoff_ms, Ladder, LadderConfig, LadderState};
use crate::supervisor::{self, Master};

/// Typed failures of the queueing layer — distinct from [`ModelError`],
/// which describes a *processed* request that could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is at capacity; the caller should shed load or
    /// retry later. Returned by [`InferenceEngine::try_submit`] only —
    /// [`InferenceEngine::submit`] blocks instead.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
    /// The worker processing the request panicked and its retry budget
    /// (if any) is exhausted; the request was not answered.
    WorkerCrashed,
    /// The request's deadline expired before a worker admitted it into a
    /// batch; it was shed unprocessed.
    DeadlineExceeded,
    /// The degradation ladder is at shed-low and this request was tagged
    /// low-priority.
    ShedLow,
    /// The degradation ladder is at reject: all new requests are shed
    /// until the queue drains.
    Overloaded,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::WorkerCrashed => {
                write!(f, "worker crashed while the request was in flight")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "deadline exceeded before the request was processed")
            }
            ServeError::ShedLow => write!(f, "low-priority request shed under load"),
            ServeError::Overloaded => write!(f, "overloaded (shedding all new requests)"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Scheduling class of a request, consumed by the degradation ladder:
/// at shed-low, `Low` requests are rejected while `Normal` ones still
/// get (possibly degraded) answers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Regular traffic; shed only at the reject level.
    #[default]
    Normal,
    /// Best-effort traffic (bulk refreshes, prefetches); shed first.
    Low,
}

/// Tunables for one engine instance.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Largest micro-batch handed to one `estimate_batch` call.
    pub max_batch: usize,
    /// Longest the oldest queued request waits for companions before its
    /// batch closes anyway (the latency bound of coalescing).
    pub max_wait_ms: u64,
    /// Bounded queue capacity *per worker shard*; beyond it
    /// [`InferenceEngine::try_submit`] rejects and
    /// [`InferenceEngine::submit`] blocks.
    pub queue_capacity: usize,
    /// Worker threads per batch (`0` = process-wide configured default).
    pub threads: usize,
    /// Number of supervised worker shards draining the queue (min 1).
    /// With `1` the engine is behaviorally identical to the historical
    /// single-worker design.
    pub workers: usize,
    /// Per-request deadline in milliseconds (`0` = none): a request that
    /// waits longer than this in the queue is shed with
    /// [`ServeError::DeadlineExceeded`] instead of entering a batch.
    pub deadline_ms: u64,
    /// How many times a request may be retried after a transient failure
    /// (worker crash mid-batch, retryable queue-full) before the error
    /// surfaces to the caller (`0` = fail fast).
    pub retry_budget: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 64,
            max_wait_ms: 5,
            queue_capacity: 256,
            threads: 0,
            workers: 1,
            deadline_ms: 0,
            retry_budget: 0,
        }
    }
}

/// What answers requests: the real model, or the route-tte baseline when
/// the model could not be loaded (graceful degradation — the process
/// keeps serving, each reply is marked degraded).
pub enum Backend {
    /// A loaded DeepOD model; replies are not degraded.
    Model(Box<DeepOdModel>),
    /// The int8-quantized serving path (`--precision int8`): per-row
    /// quantized MLP weights, f32 accumulation, tape-free forward.
    /// Replies are not degraded — selection is gated on eval accuracy.
    Quantized(Box<QuantizedModel>),
    /// The shortest-route-over-historical-speeds fallback (must already be
    /// fit); every reply is marked degraded.
    RouteTte(Box<RouteTtePredictor>),
}

impl Clone for Backend {
    /// Copy-on-write replica: `DeepOdModel` / `QuantizedModel` parameters
    /// are `Arc`-backed, so a clone shares weight storage — this is the
    /// per-worker replica path and the supervisor's rebuild-after-panic
    /// path.
    fn clone(&self) -> Backend {
        match self {
            Backend::Model(m) => Backend::Model(m.clone()),
            Backend::Quantized(m) => Backend::Quantized(m.clone()),
            Backend::RouteTte(p) => Backend::RouteTte(p.clone()),
        }
    }
}

impl Backend {
    /// Short name used in logs and the `serve.precision` metric.
    pub fn precision_name(&self) -> &'static str {
        match self {
            Backend::Model(_) => "f32",
            Backend::Quantized(_) => "int8",
            Backend::RouteTte(_) => "fallback",
        }
    }
}

/// One answer from the engine.
#[derive(Clone, Debug)]
pub struct EngineReply {
    /// The prediction, or the per-request model error.
    pub result: Result<PredictResponse, ModelError>,
    /// `true` when the answer came from the fallback backend (either the
    /// whole engine runs on it, or the ladder degraded this request).
    pub degraded: bool,
}

/// The receiving end of one request's reply slot. Unlike a bare channel
/// receiver, a handle can never block forever: a reply slot dropped by a
/// dying worker surfaces as [`ServeError::WorkerCrashed`].
pub struct ReplyHandle {
    rx: mpsc::Receiver<Result<EngineReply, ServeError>>,
}

impl ReplyHandle {
    /// Waits for the reply. A closed slot (the worker died without
    /// answering and supervision could not recover the request) maps to
    /// [`ServeError::WorkerCrashed`] — the lost-reply hazard of the
    /// single-worker engine is structurally gone.
    pub fn recv(&self) -> Result<EngineReply, ServeError> {
        match self.rx.recv() {
            Ok(reply) => reply,
            Err(mpsc::RecvError) => Err(ServeError::WorkerCrashed),
        }
    }
}

/// Result of the pre-admission cache consult.
enum CacheOutcome {
    /// The cache answered; the handle is already resolved.
    Hit(ReplyHandle),
    /// No cached answer; the key (if the request was keyable) rides along
    /// so the worker can populate the cache.
    Miss(Option<OracleKey>),
}

pub(crate) struct Pending {
    pub(crate) req: PredictRequest,
    pub(crate) tx: mpsc::Sender<Result<EngineReply, ServeError>>,
    pub(crate) enqueued: Instant,
    /// Absolute shed point, when the engine runs with deadlines.
    pub(crate) deadline: Option<Instant>,
    /// Crash-retry count consumed so far (bounded by `retry_budget`).
    pub(crate) attempts: u32,
    /// The ladder was at `Degrade` or worse at admission: a fallback
    /// answer is acceptable for this request.
    pub(crate) degrade_ok: bool,
    /// The cache key this request missed on at admission; a non-degraded
    /// answer populates the cache under it.
    pub(crate) cache_key: Option<OracleKey>,
}

pub(crate) struct QueueState {
    pub(crate) items: VecDeque<Pending>,
    pub(crate) closed: bool,
}

/// One worker's slice of the engine: its queue, its condvars, and the
/// stash the worker fills while a batch is in flight so the supervisor
/// can recover the batch after a panic.
pub(crate) struct Shard {
    pub(crate) queue: Mutex<QueueState>,
    /// Signaled when work arrives or the queue closes (worker waits here).
    pub(crate) work: Condvar,
    /// Signaled when the worker drains items (blocked producers wait here).
    pub(crate) space: Condvar,
    /// The batch currently being processed; taken back on success, or by
    /// the supervisor after a worker panic (the "doomed batch").
    pub(crate) in_flight: Mutex<Option<Vec<Pending>>>,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            in_flight: Mutex::new(None),
        }
    }

    pub(crate) fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState> {
        // A poisoned queue lock means a producer or worker panicked
        // mid-push; the VecDeque itself stays structurally valid, so
        // keep serving.
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// State shared by producers, workers, and the supervisors.
pub(crate) struct Shared {
    pub(crate) shards: Vec<Shard>,
    /// Per-shard queue capacity.
    pub(crate) capacity: usize,
    /// Total queued depth across all shards (the ladder's input).
    pub(crate) depth: AtomicUsize,
    pub(crate) ladder: Mutex<Ladder>,
    pub(crate) config: EngineConfig,
    /// The serving cache tier; consulted before admission, populated by
    /// workers. `None` keeps every path bit-identical to the cacheless
    /// engine.
    pub(crate) cache: Option<Arc<ServeCache>>,
}

/// A long-lived inference engine: [`EngineConfig::workers`] supervised
/// worker threads coalescing sharded queues into micro-batches. Dropping
/// the engine (or calling [`InferenceEngine::shutdown`]) closes the
/// queues, drains what is already enqueued, and joins every worker.
pub struct InferenceEngine {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_shard: AtomicUsize,
    config: EngineConfig,
}

impl InferenceEngine {
    /// Starts the engine with no ladder fallback: requests admitted under
    /// a degraded ladder level still run on the primary backend.
    pub fn start(
        backend: Backend,
        ctx: FeatureContext,
        ds: Arc<CityDataset>,
        config: EngineConfig,
    ) -> InferenceEngine {
        InferenceEngine::start_with_fallback(backend, None, ctx, ds, config)
    }

    /// Starts the engine: registers its metric keys (so every snapshot
    /// carries them, even at zero) and spawns one supervised worker per
    /// shard, each with a copy-on-write replica of the backend. When a
    /// fitted `fallback` is given, requests admitted while the ladder is
    /// at `Degrade` or worse are answered by it (marked degraded) to
    /// shed model latency under load.
    pub fn start_with_fallback(
        backend: Backend,
        fallback: Option<RouteTtePredictor>,
        ctx: FeatureContext,
        ds: Arc<CityDataset>,
        config: EngineConfig,
    ) -> InferenceEngine {
        InferenceEngine::start_with_cache(backend, fallback, None, ctx, ds, config)
    }

    /// [`start_with_fallback`](InferenceEngine::start_with_fallback) plus
    /// a serving cache tier (DESIGN.md §15): raw requests are looked up
    /// in the cache *before* queue admission — a hit replies immediately
    /// without consuming worker capacity — and every non-degraded model
    /// answer populates the cache's LRU tier. `None` is the cacheless
    /// engine, bit-identical to the historical behavior.
    pub fn start_with_cache(
        backend: Backend,
        fallback: Option<RouteTtePredictor>,
        cache_tier: Option<Arc<ServeCache>>,
        ctx: FeatureContext,
        ds: Arc<CityDataset>,
        config: EngineConfig,
    ) -> InferenceEngine {
        registry::counter_add("serve.requests", 0);
        registry::counter_add("serve.degraded", 0);
        registry::counter_add("serve.rejected", 0);
        registry::counter_add("serve.worker_restarts", 0);
        registry::counter_add("serve.deadline_expired", 0);
        registry::counter_add("serve.retries", 0);
        registry::counter_add("serve.shed_low", 0);
        registry::counter_add("serve.shed_reject", 0);
        registry::register_gauge("serve.queue_depth");
        registry::register_histogram("serve.batch_size");
        registry::register_histogram("serve.request_latency_ms");
        cache::register_metrics();
        let config = EngineConfig {
            max_batch: config.max_batch.max(1),
            queue_capacity: config.queue_capacity.max(1),
            workers: config.workers.max(1),
            ..config
        };
        let total_capacity = config.queue_capacity.saturating_mul(config.workers);
        let shared = Arc::new(Shared {
            shards: (0..config.workers).map(|_| Shard::new()).collect(),
            capacity: config.queue_capacity,
            depth: AtomicUsize::new(0),
            ladder: Mutex::new(Ladder::new(LadderConfig::for_capacity(total_capacity))),
            config,
            cache: cache_tier,
        });
        let master = Arc::new(Master {
            backend,
            fallback,
            ctx: Arc::new(ctx),
            ds,
        });
        let workers = (0..config.workers)
            .map(|shard_idx| {
                supervisor::spawn_supervised(Arc::clone(&shared), shard_idx, Arc::clone(&master))
            })
            .collect();
        InferenceEngine {
            shared,
            workers,
            next_shard: AtomicUsize::new(0),
            config,
        }
    }

    /// The configuration the engine is running with (after clamping).
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The shard the next request lands on (round-robin). `None` only if
    /// the engine somehow has zero shards — the constructor clamps
    /// `workers` to 1, so callers treat it as shutdown.
    fn pick_shard(&self) -> Option<&Shard> {
        let n = self.shared.shards.len();
        if n == 0 {
            return None;
        }
        let idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % n;
        self.shared.shards.get(idx)
    }

    /// Enqueues a request, blocking while its shard is at capacity (flow
    /// control for producers reading from a pipe). Returns the handle the
    /// reply will arrive on. The blocking path bypasses the degradation
    /// ladder — backpressure *is* its admission control — so a
    /// single-worker engine with deadlines and retries off behaves
    /// bit-identically to the historical design.
    pub fn submit(&self, req: PredictRequest) -> Result<ReplyHandle, ServeError> {
        let cache_key = match self.consult_cache(&req) {
            CacheOutcome::Hit(handle) => return Ok(handle),
            CacheOutcome::Miss(key) => key,
        };
        let Some(shard) = self.pick_shard() else {
            return Err(ServeError::ShuttingDown);
        };
        let mut q = shard.lock_queue();
        loop {
            if q.closed {
                return Err(ServeError::ShuttingDown);
            }
            if q.items.len() < self.shared.capacity {
                break;
            }
            q = shard.space.wait(q).unwrap_or_else(|p| p.into_inner());
        }
        Ok(self.enqueue(shard, q, req, false, cache_key))
    }

    /// Enqueues a request without blocking, under the degradation ladder:
    /// at `Reject` everything is shed ([`ServeError::Overloaded`]), at
    /// `ShedLow` low-priority requests are shed ([`ServeError::ShedLow`]),
    /// and a full shard still rejects with [`ServeError::QueueFull`]. All
    /// three count under `serve.rejected`.
    pub fn try_submit(&self, req: PredictRequest) -> Result<ReplyHandle, ServeError> {
        self.try_submit_with(req, Priority::Normal)
    }

    /// [`try_submit`](InferenceEngine::try_submit) with an explicit
    /// priority class.
    pub fn try_submit_with(
        &self,
        req: PredictRequest,
        priority: Priority,
    ) -> Result<ReplyHandle, ServeError> {
        // The cache sits *above* the degradation ladder: a hit costs no
        // queue slot, so it must not be shed even under full overload.
        let cache_key = match self.consult_cache(&req) {
            CacheOutcome::Hit(handle) => return Ok(handle),
            CacheOutcome::Miss(key) => key,
        };
        // Observe the ladder before touching any queue lock: the depth is
        // an atomic, so admission control never nests the ladder mutex
        // inside a shard lock.
        let depth = self.shared.depth.load(Ordering::Relaxed);
        let state = {
            let mut ladder = self.shared.ladder.lock().unwrap_or_else(|p| p.into_inner());
            ladder.observe(depth)
        };
        match state {
            LadderState::Reject => {
                registry::counter_inc("serve.shed_reject");
                registry::counter_inc("serve.rejected");
                return Err(ServeError::Overloaded);
            }
            LadderState::ShedLow if priority == Priority::Low => {
                registry::counter_inc("serve.shed_low");
                registry::counter_inc("serve.rejected");
                return Err(ServeError::ShedLow);
            }
            _ => {}
        }
        let Some(shard) = self.pick_shard() else {
            return Err(ServeError::ShuttingDown);
        };
        let q = shard.lock_queue();
        if q.closed {
            return Err(ServeError::ShuttingDown);
        }
        if q.items.len() >= self.shared.capacity {
            registry::counter_inc("serve.rejected");
            return Err(ServeError::QueueFull {
                capacity: self.shared.capacity,
            });
        }
        Ok(self.enqueue(shard, q, req, state >= LadderState::Degrade, cache_key))
    }

    /// Consults the cache tier for a raw request. A hit builds a
    /// pre-resolved [`ReplyHandle`] — the caller returns it without
    /// touching any queue. A miss carries the key forward so the worker
    /// can populate the cache from the computed answer.
    fn consult_cache(&self, req: &PredictRequest) -> CacheOutcome {
        let Some(cache) = &self.shared.cache else {
            return CacheOutcome::Miss(None);
        };
        let PredictRequest::Raw(od) = req else {
            // Encoded requests carry pre-built features the keyer cannot
            // see through; they always take the worker path.
            return CacheOutcome::Miss(None);
        };
        let Some(key) = cache.key_of(od) else {
            return CacheOutcome::Miss(None);
        };
        match cache.lookup(key, cache::now_epoch_s()) {
            Some(eta_seconds) => {
                let (tx, rx) = mpsc::channel();
                let _ = tx.send(Ok(EngineReply {
                    result: Ok(PredictResponse { eta_seconds }),
                    degraded: false,
                }));
                CacheOutcome::Hit(ReplyHandle { rx })
            }
            None => CacheOutcome::Miss(Some(key)),
        }
    }

    /// [`try_submit_with`](InferenceEngine::try_submit_with) plus a
    /// bounded retry loop: a [`ServeError::QueueFull`] rejection retries
    /// up to [`EngineConfig::retry_budget`] times with the deterministic
    /// [`crate::shed::backoff_ms`] schedule (counted under
    /// `serve.retries`). Deliberate sheds — overload, low-priority,
    /// shutdown — are not retried; retrying into an overloaded engine
    /// only deepens the overload.
    pub fn try_submit_retry(
        &self,
        req: PredictRequest,
        priority: Priority,
    ) -> Result<ReplyHandle, ServeError> {
        let mut attempt: u32 = 0;
        loop {
            match self.try_submit_with(req.clone(), priority) {
                Err(ServeError::QueueFull { .. }) if attempt < self.config.retry_budget => {
                    registry::counter_inc("serve.retries");
                    std::thread::sleep(Duration::from_millis(backoff_ms(attempt)));
                    attempt = attempt.saturating_add(1);
                }
                other => return other,
            }
        }
    }

    /// Closes the queues, lets every worker drain what is already
    /// enqueued, and joins them. Equivalent to dropping the engine, but
    /// explicit at call sites that care about ordering.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn enqueue(
        &self,
        shard: &Shard,
        mut q: std::sync::MutexGuard<'_, QueueState>,
        req: PredictRequest,
        degrade_ok: bool,
        cache_key: Option<OracleKey>,
    ) -> ReplyHandle {
        let (tx, rx) = mpsc::channel();
        let deadline = if self.config.deadline_ms > 0 {
            Some(Instant::now() + Duration::from_millis(self.config.deadline_ms))
        } else {
            None
        };
        q.items.push_back(Pending {
            req,
            tx,
            enqueued: Instant::now(),
            deadline,
            attempts: 0,
            degrade_ok,
            cache_key,
        });
        self.shared.depth.fetch_add(1, Ordering::Relaxed);
        drop(q);
        shard.work.notify_one();
        ReplyHandle { rx }
    }

    fn close_and_join(&mut self) {
        for shard in &self.shared.shards {
            let mut q = shard.lock_queue();
            q.closed = true;
            drop(q);
            shard.work.notify_all();
            shard.space.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Belt and braces: a supervisor can only exit with its queue
        // drained, but if one ever died outright, fail its leftovers
        // explicitly instead of leaving reply slots dangling.
        for shard in &self.shared.shards {
            let leftovers: Vec<Pending> = {
                let mut q = shard.lock_queue();
                q.items.drain(..).collect()
            };
            let stranded: Vec<Pending> = {
                let mut slot = shard.in_flight.lock().unwrap_or_else(|p| p.into_inner());
                slot.take().unwrap_or_default()
            };
            for p in leftovers {
                self.shared.depth.fetch_sub(1, Ordering::Relaxed);
                let _ = p.tx.send(Err(ServeError::ShuttingDown));
            }
            for p in stranded {
                let _ = p.tx.send(Err(ServeError::WorkerCrashed));
            }
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

//! The batched inference engine: a bounded request queue, a micro-batch
//! coalescing worker, and backpressure (DESIGN.md §11).
//!
//! One [`InferenceEngine`] loads a model once and answers many
//! [`PredictRequest`]s. Producers enqueue requests with [`submit`]
//! (blocking flow control) or [`try_submit`] (fail fast with
//! [`ServeError::QueueFull`]); a single worker thread drains the queue
//! into micro-batches — closing a batch when it reaches
//! [`EngineConfig::max_batch`] requests or when the oldest request has
//! waited [`EngineConfig::max_wait_ms`] — and runs each batch through
//! [`DeepOdModel::estimate_batch`], which fans out over
//! `deepod_tensor::parallel`. Each reply travels back on a per-request
//! channel, so producers can interleave submission and collection freely.
//!
//! [`submit`]: InferenceEngine::submit
//! [`try_submit`]: InferenceEngine::try_submit

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use deepod_baselines::{RouteTtePredictor, TtePredictor};
use deepod_core::obs::registry;
use deepod_core::{
    DeepOdModel, FeatureContext, ModelError, PredictRequest, PredictResponse, QuantizedModel,
};
use deepod_traj::CityDataset;

/// Typed failures of the queueing layer — distinct from [`ModelError`],
/// which describes a *processed* request that could not be answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue is at capacity; the caller should shed load or
    /// retry later. Returned by [`InferenceEngine::try_submit`] only —
    /// [`InferenceEngine::submit`] blocks instead.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Tunables for one engine instance.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Largest micro-batch handed to one `estimate_batch` call.
    pub max_batch: usize,
    /// Longest the oldest queued request waits for companions before its
    /// batch closes anyway (the latency bound of coalescing).
    pub max_wait_ms: u64,
    /// Bounded queue capacity; beyond it [`InferenceEngine::try_submit`]
    /// rejects and [`InferenceEngine::submit`] blocks.
    pub queue_capacity: usize,
    /// Worker threads per batch (`0` = process-wide configured default).
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 64,
            max_wait_ms: 5,
            queue_capacity: 256,
            threads: 0,
        }
    }
}

/// What answers requests: the real model, or the route-tte baseline when
/// the model could not be loaded (graceful degradation — the process
/// keeps serving, each reply is marked degraded).
pub enum Backend {
    /// A loaded DeepOD model; replies are not degraded.
    Model(Box<DeepOdModel>),
    /// The int8-quantized serving path (`--precision int8`): per-row
    /// quantized MLP weights, f32 accumulation, tape-free forward.
    /// Replies are not degraded — selection is gated on eval accuracy.
    Quantized(Box<QuantizedModel>),
    /// The shortest-route-over-historical-speeds fallback (must already be
    /// fit); every reply is marked degraded.
    RouteTte(Box<RouteTtePredictor>),
}

impl Backend {
    /// Short name used in logs and the `serve.precision` metric.
    pub fn precision_name(&self) -> &'static str {
        match self {
            Backend::Model(_) => "f32",
            Backend::Quantized(_) => "int8",
            Backend::RouteTte(_) => "fallback",
        }
    }
}

/// One answer from the engine.
#[derive(Clone, Debug)]
pub struct EngineReply {
    /// The prediction, or the per-request model error.
    pub result: Result<PredictResponse, ModelError>,
    /// `true` when the answer came from the fallback backend.
    pub degraded: bool,
}

struct Pending {
    req: PredictRequest,
    tx: mpsc::Sender<EngineReply>,
    enqueued: Instant,
}

struct QueueState {
    items: VecDeque<Pending>,
    closed: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    /// Signaled when work arrives or the queue closes (worker waits here).
    work: Condvar,
    /// Signaled when the worker drains items (blocked producers wait here).
    space: Condvar,
    capacity: usize,
}

/// A long-lived inference engine: one background worker coalescing the
/// queue into micro-batches. Dropping the engine (or calling
/// [`InferenceEngine::shutdown`]) closes the queue, drains what is already
/// enqueued, and joins the worker.
pub struct InferenceEngine {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
    config: EngineConfig,
}

impl InferenceEngine {
    /// Starts the engine: registers its metric keys (so every snapshot
    /// carries them, even at zero) and spawns the batching worker, which
    /// takes ownership of the backend, feature context, and dataset.
    pub fn start(
        backend: Backend,
        ctx: FeatureContext,
        ds: Arc<CityDataset>,
        config: EngineConfig,
    ) -> InferenceEngine {
        registry::counter_add("serve.requests", 0);
        registry::counter_add("serve.degraded", 0);
        registry::counter_add("serve.rejected", 0);
        registry::register_gauge("serve.queue_depth");
        registry::register_histogram("serve.batch_size");
        registry::register_histogram("serve.request_latency_ms");
        let config = EngineConfig {
            max_batch: config.max_batch.max(1),
            queue_capacity: config.queue_capacity.max(1),
            ..config
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            capacity: config.queue_capacity,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            let mut backend = backend;
            worker_loop(&worker_shared, &mut backend, &ctx, &ds, config);
        });
        InferenceEngine {
            shared,
            worker: Some(worker),
            config,
        }
    }

    /// The configuration the engine is running with (after clamping).
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Enqueues a request, blocking while the queue is at capacity (flow
    /// control for producers reading from a pipe). Returns the channel the
    /// reply will arrive on.
    pub fn submit(&self, req: PredictRequest) -> Result<mpsc::Receiver<EngineReply>, ServeError> {
        let mut q = self.lock_queue();
        loop {
            if q.closed {
                return Err(ServeError::ShuttingDown);
            }
            if q.items.len() < self.shared.capacity {
                break;
            }
            q = self.shared.space.wait(q).unwrap_or_else(|p| p.into_inner());
        }
        Ok(self.enqueue(q, req))
    }

    /// Enqueues a request without blocking: at capacity the request is
    /// rejected with [`ServeError::QueueFull`] (and counted under
    /// `serve.rejected`) so the caller can shed load explicitly.
    pub fn try_submit(
        &self,
        req: PredictRequest,
    ) -> Result<mpsc::Receiver<EngineReply>, ServeError> {
        let q = self.lock_queue();
        if q.closed {
            return Err(ServeError::ShuttingDown);
        }
        if q.items.len() >= self.shared.capacity {
            registry::counter_inc("serve.rejected");
            return Err(ServeError::QueueFull {
                capacity: self.shared.capacity,
            });
        }
        Ok(self.enqueue(q, req))
    }

    /// Closes the queue, lets the worker drain everything already
    /// enqueued, and joins it. Equivalent to dropping the engine, but
    /// explicit at call sites that care about ordering.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState> {
        // A poisoned queue lock means a producer panicked mid-push; the
        // VecDeque itself stays structurally valid, so keep serving.
        self.shared.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn enqueue(
        &self,
        mut q: std::sync::MutexGuard<'_, QueueState>,
        req: PredictRequest,
    ) -> mpsc::Receiver<EngineReply> {
        let (tx, rx) = mpsc::channel();
        q.items.push_back(Pending {
            req,
            tx,
            enqueued: Instant::now(),
        });
        drop(q);
        self.shared.work.notify_one();
        rx
    }

    fn close_and_join(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.closed = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for InferenceEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// The batching loop: wait for work, coalesce a micro-batch (size- or
/// deadline-triggered), run it, reply, repeat — until the queue is closed
/// *and* drained, so shutdown never drops an accepted request.
fn worker_loop(
    shared: &Shared,
    backend: &mut Backend,
    ctx: &FeatureContext,
    ds: &CityDataset,
    config: EngineConfig,
) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            // Wait for work; the oldest request anchors the coalescing
            // deadline. The batch closes at max_batch requests, or when
            // the *oldest* request has waited max_wait_ms (its latency
            // bound), or at shutdown (drain immediately).
            let deadline = loop {
                if let Some(first) = q.items.front() {
                    break first.enqueued + Duration::from_millis(config.max_wait_ms);
                }
                if q.closed {
                    return;
                }
                q = shared.work.wait(q).unwrap_or_else(|p| p.into_inner());
            };
            while q.items.len() < config.max_batch && !q.closed {
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now) else {
                    break; // deadline already passed
                };
                if remaining.is_zero() {
                    break;
                }
                let (guard, timeout) = shared
                    .work
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = q.items.len().min(config.max_batch);
            let batch: Vec<Pending> = q.items.drain(..take).collect();
            registry::gauge_set("serve.queue_depth", q.items.len() as f64);
            batch
        };
        // Producers blocked on a full queue can move again.
        shared.space.notify_all();

        registry::observe("serve.batch_size", batch.len() as f64);
        registry::counter_add("serve.requests", batch.len() as u64);
        let reqs: Vec<PredictRequest> = batch.iter().map(|p| p.req.clone()).collect();
        let results: Vec<(Result<PredictResponse, ModelError>, bool)> = match backend {
            Backend::Model(model) => model
                .estimate_batch(ctx, &ds.net, &reqs, config.threads)
                .into_iter()
                .map(|r| (r, false))
                .collect(),
            Backend::Quantized(model) => model
                .estimate_batch(ctx, &ds.net, &reqs, config.threads)
                .into_iter()
                .map(|r| (r, false))
                .collect(),
            Backend::RouteTte(predictor) => reqs
                .iter()
                .map(|r| (fallback_answer(predictor, r), true))
                .collect(),
        };
        for (pending, (result, degraded)) in batch.into_iter().zip(results) {
            registry::observe(
                "serve.request_latency_ms",
                pending.enqueued.elapsed().as_secs_f64() * 1e3,
            );
            if degraded {
                registry::counter_inc("serve.degraded");
            }
            // A producer that dropped its receiver no longer wants the
            // answer; that is not the engine's problem.
            let _ = pending.tx.send(EngineReply { result, degraded });
        }
    }
}

/// Answers one request through the route-tte fallback. Encoded requests
/// carry model-specific features the baseline cannot consume, so they get
/// the same per-request error an unmatchable raw request would.
fn fallback_answer(
    predictor: &mut RouteTtePredictor,
    req: &PredictRequest,
) -> Result<PredictResponse, ModelError> {
    match req {
        PredictRequest::Raw(od) => predictor
            .predict(od)
            .map(|eta_seconds| PredictResponse { eta_seconds })
            .ok_or(ModelError::UnmatchedEndpoints),
        PredictRequest::Encoded(_) => Err(ModelError::UnmatchedEndpoints),
    }
}

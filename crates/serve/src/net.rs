//! TCP front end for the inference engine (`deepod serve --listen`),
//! plus the request-decoding path shared with stdin mode — std-only, no
//! async runtime.
//!
//! Topology:
//!
//! ```text
//! accept loop (nonblocking poll, shutdown flag)
//!   ├─ connection cap: beyond max_connections, a typed
//!   │  connection_limit frame is written and the socket dropped
//!   └─ per connection: reader thread + writer thread
//!        reader: newline-delimited frames → decode → per-connection
//!                in-flight cap → admission-controlled engine submit
//!        writer: replies in submission order (mpsc), one line each
//! ```
//!
//! **Per-client admission control.** Stdin mode has one client, so global
//! queue backpressure is per-client backpressure. On TCP that breaks: one
//! greedy client pipelining thousands of frames would fill the shared
//! queue and turn everyone's requests into `queue full`. Two gates keep
//! the blast radius per-client: a per-connection in-flight cap (frames
//! beyond it come back as typed `in_flight_limit` rejects — sized below
//! the queue capacity, so a single connection cannot fill the shared
//! queue) and a max-connections gate (typed `connection_limit` at
//! accept). TCP submissions always run the admission-controlled
//! `try_submit_retry` path — a blocking `submit` would park the greedy
//! client's reader on the full queue and stall polite clients behind it.
//!
//! Every thread here is born via the supervised spawn in
//! [`crate::supervisor`]: a panicking connection loop is counted and
//! logged, and takes down its own connection only.
//!
//! Exactly-one-reply: every decoded frame yields exactly one line —
//! answered, typed engine error, or typed protocol reject — in
//! per-connection submission order. On listener shutdown, readers stop
//! accepting new frames (after a bounded drain of what is already
//! buffered) and writers flush every reply already owed before the
//! socket closes.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use deepod_core::obs::registry;
use deepod_core::PredictRequest;
use deepod_roadnet::Point;
use deepod_traj::{CityDataset, OdInput};

use crate::engine::{EngineReply, InferenceEngine, Priority, ReplyHandle, ServeError};
use crate::protocol::{self, ErrorKind, WireError, WireRequest, WireResponse};
use crate::supervisor::spawn_net;

/// How often blocked reads wake up to poll the shutdown flag, and how
/// often the accept loop polls for new connections.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Tunables of the TCP front end.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Concurrent connections accepted; beyond it new connections get a
    /// typed `connection_limit` frame and are dropped.
    pub max_connections: usize,
    /// Per-connection cap on requests submitted but not yet answered;
    /// frames beyond it are rejected with `in_flight_limit`. Keep this
    /// below the engine queue capacity so one connection cannot fill the
    /// shared queue.
    pub max_in_flight: usize,
    /// Largest accepted request line in bytes; longer frames get a typed
    /// `frame_too_large` reject (the connection survives).
    pub max_frame_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            max_in_flight: 32,
            max_frame_bytes: 64 * 1024,
        }
    }
}

/// Registers every `serve.net_*` metric eagerly so snapshots show zeros
/// from the first scrape instead of names popping into existence.
fn register_metrics() {
    registry::counter_add("serve.net_accepted", 0);
    registry::counter_add("serve.net_conn_rejected", 0);
    registry::counter_add("serve.net_frames_in", 0);
    registry::counter_add("serve.net_frames_out", 0);
    registry::counter_add("serve.net_frame_errors", 0);
    registry::counter_add("serve.net_inflight_rejected", 0);
    registry::counter_add("serve.net_thread_panics", 0);
    registry::register_gauge("serve.net_connections");
}

/// How a decoded request enters the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Block the producer when the queue is full (stdin backpressure —
    /// the historical single-client behavior).
    Block,
    /// Run the degradation ladder and reject instead of blocking
    /// (`--reject-when-full`, and always on TCP).
    Shed,
}

/// A request line decoded and validated, ready to submit.
pub struct DecodedRequest {
    /// Correlation id echoed in the reply.
    pub id: u64,
    /// The engine-level request.
    pub req: PredictRequest,
    /// Scheduling class for the degradation ladder.
    pub priority: Priority,
}

/// One unit of output owed to a client: either a fully rendered line, or
/// a submitted request whose reply line is rendered once the engine
/// answers. Writers emit these strictly in submission order.
pub enum Submission {
    /// A rendered reply line (reject, parse error, or protocol error).
    Ready(String),
    /// A request accepted by the engine; the writer waits on the handle.
    Pending(u64, ReplyHandle),
}

/// Decodes one request line, shared by stdin and TCP so the two modes
/// cannot drift. Returns `None` for blank lines (no reply owed);
/// `Some(Err(line))` is a fully rendered error reply (bad JSON, invalid
/// fields, pre-epoch departure, or a typed protocol reject for an
/// unsupported version).
pub fn decode_line(ds: &CityDataset, line: &str) -> Option<Result<DecodedRequest, String>> {
    if line.trim().is_empty() {
        return None;
    }
    let wire = match WireRequest::parse(line) {
        Ok(wire) => wire,
        // Protocol-level rejects (unsupported version) render as the
        // structured typed frame; plain bad requests keep the flat
        // encoding stdin clients have always seen.
        Err(e) if e.kind.is_protocol_level() => {
            return Some(Err(WireResponse::Err { id: None, error: e }.to_line()))
        }
        Err(e) => return Some(Err(protocol::render_error(None, &e.msg))),
    };
    // Pre-epoch (or non-finite) departures cannot be attributed to a
    // time slot; reject them per request instead of letting the encoder
    // clamp them onto slot 0's conditions.
    if let Err(why) = protocol::validate_depart(wire.depart) {
        return Some(Err(protocol::render_error(Some(wire.id), &why)));
    }
    let od = OdInput {
        origin: Point::new(wire.from.0, wire.from.1),
        destination: Point::new(wire.to.0, wire.to.1),
        depart: wire.depart,
        weather: ds.traffic.weather().at(wire.depart),
    };
    Some(Ok(DecodedRequest {
        id: wire.id,
        req: PredictRequest::Raw(od),
        priority: if wire.low_priority {
            Priority::Low
        } else {
            Priority::Normal
        },
    }))
}

/// Hands a decoded request to the engine under the chosen admission
/// policy. A typed rejection becomes an immediately-ready reply line, so
/// every decoded frame still yields exactly one response.
pub fn submit_decoded(
    engine: &InferenceEngine,
    decoded: DecodedRequest,
    admission: Admission,
) -> Submission {
    let DecodedRequest { id, req, priority } = decoded;
    let submitted = match admission {
        Admission::Block => engine.submit(req),
        // Admission-controlled path: the degradation ladder decides, and
        // queue-full rejections retry on the deterministic backoff up to
        // the engine's retry budget.
        Admission::Shed => engine.try_submit_retry(req, priority),
    };
    match submitted {
        Ok(handle) => Submission::Pending(id, handle),
        Err(e) => Submission::Ready(protocol::render_error(Some(id), &e.to_string())),
    }
}

/// Decode + submit in one step — the whole per-line serving path, shared
/// verbatim by the stdin loop and the TCP reader.
pub fn process_line(
    engine: &InferenceEngine,
    ds: &CityDataset,
    line: &str,
    admission: Admission,
) -> Option<Submission> {
    match decode_line(ds, line)? {
        Ok(decoded) => Some(submit_decoded(engine, decoded, admission)),
        Err(rendered) => Some(Submission::Ready(rendered)),
    }
}

/// Renders the final reply line for a submitted request: the answer, the
/// per-request model error, or the typed queueing failure — all in the
/// stable wire encoding.
pub fn render_reply(id: u64, reply: Result<EngineReply, ServeError>) -> String {
    match reply {
        Ok(reply) => match reply.result {
            Ok(resp) => protocol::render_ok(id, resp.eta_seconds, reply.degraded),
            Err(e) => protocol::render_error(Some(id), &e.to_string()),
        },
        // Typed queueing failure: worker crash past its retry budget, an
        // expired deadline, or shutdown. The handle resolves rather than
        // hangs — exactly one line per id.
        Err(e) => protocol::render_error(Some(id), &e.to_string()),
    }
}

/// A running TCP listener bound to one engine. Dropping (or calling
/// [`NetServer::shutdown`]) stops accepting, drains every connection's
/// owed replies, and joins all threads.
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, port `0` for an ephemeral
    /// port) and starts serving the engine over TCP.
    pub fn start(
        engine: Arc<InferenceEngine>,
        ds: Arc<CityDataset>,
        addr: &str,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        register_metrics();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let accept = spawn_net("accept", move || {
            accept_loop(&listener, &engine, &ds, config, &flag);
        });
        Ok(NetServer {
            local_addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the actual port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, lets every connection drain the replies it owes,
    /// and joins all serving threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Decrements the active-connection count (and gauge) when a connection
/// thread exits — by any path, including a panic unwinding to the
/// supervised spawn.
struct ConnGuard {
    active: Arc<AtomicUsize>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let now = self.active.fetch_sub(1, Ordering::AcqRel).saturating_sub(1);
        registry::gauge_set("serve.net_connections", now as f64);
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<InferenceEngine>,
    ds: &Arc<CityDataset>,
    config: NetConfig,
    shutdown: &Arc<AtomicBool>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished connection threads so the handle list
                // stays bounded by the live-connection count.
                conns.retain(|h| !h.is_finished());
                if active.load(Ordering::Acquire) >= config.max_connections {
                    reject_connection(stream, config.max_connections);
                    continue;
                }
                registry::counter_inc("serve.net_accepted");
                let now = active.fetch_add(1, Ordering::AcqRel) + 1;
                registry::gauge_set("serve.net_connections", now as f64);
                let engine = Arc::clone(engine);
                let ds = Arc::clone(ds);
                let shutdown = Arc::clone(shutdown);
                let guard = ConnGuard {
                    active: Arc::clone(&active),
                };
                conns.push(spawn_net("connection", move || {
                    let _guard = guard;
                    serve_connection(stream, &engine, &ds, config, &shutdown);
                }));
            }
            // Nonblocking accept: nothing waiting — poll the shutdown
            // flag again shortly. Transient accept errors (e.g. the peer
            // resetting mid-handshake) take the same nap.
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Answers a connection beyond the cap with one typed frame, then drops
/// the socket — the client learns *why* instead of seeing a bare RST.
fn reject_connection(mut stream: TcpStream, cap: usize) {
    registry::counter_inc("serve.net_conn_rejected");
    let mut frame = WireResponse::Err {
        id: None,
        error: WireError::protocol(
            ErrorKind::ConnectionLimit,
            format!("server is at its connection limit ({cap}); retry later"),
        ),
    }
    .to_line();
    frame.push('\n');
    let _ = stream.write_all(frame.as_bytes());
}

/// One connection: a reader loop on this thread plus a writer thread,
/// joined before the sockets close so every owed reply is flushed.
fn serve_connection(
    stream: TcpStream,
    engine: &Arc<InferenceEngine>,
    ds: &Arc<CityDataset>,
    config: NetConfig,
    shutdown: &Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    // Short read timeouts let the reader poll the shutdown flag; partial
    // frames survive across timeouts because read_until retains
    // already-read bytes in its buffer.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let in_flight = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<Submission>();
    let writer_in_flight = Arc::clone(&in_flight);
    let writer = spawn_net("conn-writer", move || {
        conn_writer_loop(write_half, &rx, &writer_in_flight);
    });
    conn_reader_loop(stream, engine, ds, config, shutdown, &in_flight, &tx);
    // Close the intake; the writer drains every reply already owed (all
    // handles resolve — a dead worker surfaces as a typed error), then
    // the sockets drop and the client sees EOF after its last reply.
    drop(tx);
    let _ = writer.join();
}

/// Reads newline-delimited frames until EOF, a connection error, or
/// listener shutdown (after a bounded drain of frames already buffered).
fn conn_reader_loop(
    stream: TcpStream,
    engine: &Arc<InferenceEngine>,
    ds: &Arc<CityDataset>,
    config: NetConfig,
    shutdown: &Arc<AtomicBool>,
    in_flight: &AtomicUsize,
    tx: &mpsc::Sender<Submission>,
) {
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    // An oversized frame is answered once, then its remaining bytes are
    // discarded up to the next newline — the connection survives.
    let mut discarding = false;
    // On shutdown, frames already buffered are still served (bounded by
    // the in-flight cap so a client streaming forever cannot pin the
    // listener open), but the first quiet read ends the connection.
    let mut draining = false;
    let mut drained: usize = 0;
    loop {
        if !draining && shutdown.load(Ordering::Acquire) {
            draining = true;
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => {
                // EOF. A final unterminated frame (bytes retained from
                // earlier timeouts) is still served, matching how stdin
                // treats a last line without a newline.
                if !buf.is_empty() && !discarding {
                    let _ = handle_frame(&buf, engine, ds, config, in_flight, tx);
                }
                return;
            }
            Ok(_) => {
                // read_until returns a buffer without the delimiter only
                // at EOF.
                let complete = buf.ends_with(b"\n");
                if discarding {
                    buf.clear();
                    if !complete {
                        return;
                    }
                    discarding = false;
                } else if buf.len() > config.max_frame_bytes {
                    if !reject_oversized(tx, config.max_frame_bytes) {
                        return;
                    }
                    buf.clear();
                    if !complete {
                        return;
                    }
                } else {
                    let ok = handle_frame(&buf, engine, ds, config, in_flight, tx);
                    buf.clear();
                    if !ok || !complete {
                        return;
                    }
                }
                if draining {
                    drained = drained.saturating_add(1);
                    if drained >= config.max_in_flight {
                        return;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if draining {
                    // Quiet socket during drain: everything buffered has
                    // been served; stop reading.
                    return;
                }
                if discarding {
                    // Bound memory while skipping an oversized frame.
                    buf.clear();
                } else if buf.len() > config.max_frame_bytes {
                    if !reject_oversized(tx, config.max_frame_bytes) {
                        return;
                    }
                    discarding = true;
                    buf.clear();
                }
            }
            Err(_) => return,
        }
    }
}

/// Sends the typed `frame_too_large` reject; `false` when the writer is
/// gone and the connection should end.
fn reject_oversized(tx: &mpsc::Sender<Submission>, cap: usize) -> bool {
    registry::counter_inc("serve.net_frame_errors");
    let frame = WireResponse::Err {
        id: None,
        error: WireError::protocol(
            ErrorKind::FrameTooLarge,
            format!("request frame exceeds {cap} bytes"),
        ),
    }
    .to_line();
    tx.send(Submission::Ready(frame)).is_ok()
}

/// Decodes and submits one complete frame; `false` when the writer is
/// gone and the connection should end.
fn handle_frame(
    raw: &[u8],
    engine: &Arc<InferenceEngine>,
    ds: &Arc<CityDataset>,
    config: NetConfig,
    in_flight: &AtomicUsize,
    tx: &mpsc::Sender<Submission>,
) -> bool {
    let mut end = raw.len();
    if end > 0 && raw.get(end - 1) == Some(&b'\n') {
        end -= 1;
    }
    if end > 0 && raw.get(end - 1) == Some(&b'\r') {
        end -= 1;
    }
    let line = String::from_utf8_lossy(raw.get(..end).unwrap_or(raw));
    if line.trim().is_empty() {
        return true;
    }
    registry::counter_inc("serve.net_frames_in");
    let item = match decode_line(ds, &line) {
        None => return true,
        Some(Err(rendered)) => {
            registry::counter_inc("serve.net_frame_errors");
            Submission::Ready(rendered)
        }
        Some(Ok(decoded)) => {
            if in_flight.load(Ordering::Acquire) >= config.max_in_flight {
                // Per-client admission: this connection is over its own
                // cap; reject *its* frame without touching the shared
                // queue other clients depend on.
                registry::counter_inc("serve.net_inflight_rejected");
                Submission::Ready(
                    WireResponse::Err {
                        id: Some(decoded.id),
                        error: WireError::protocol(
                            ErrorKind::InFlightLimit,
                            format!(
                                "too many requests in flight on this connection (cap {})",
                                config.max_in_flight
                            ),
                        ),
                    }
                    .to_line(),
                )
            } else {
                let sub = submit_decoded(engine, decoded, Admission::Shed);
                if matches!(sub, Submission::Pending(..)) {
                    in_flight.fetch_add(1, Ordering::AcqRel);
                }
                sub
            }
        }
    };
    tx.send(item).is_ok()
}

/// Writes replies in submission order; pending handles always resolve
/// (a dead worker surfaces as a typed error), so this loop cannot hang.
fn conn_writer_loop(stream: TcpStream, rx: &mpsc::Receiver<Submission>, in_flight: &AtomicUsize) {
    let mut out = BufWriter::new(stream);
    for item in rx.iter() {
        let line = match item {
            Submission::Ready(line) => line,
            Submission::Pending(id, handle) => {
                let line = render_reply(id, handle.recv());
                in_flight.fetch_sub(1, Ordering::AcqRel);
                line
            }
        };
        if out
            .write_all(line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush())
            .is_err()
        {
            // Client gone: stop writing. Dropping the receiver makes the
            // reader's next send fail, ending the connection; unreceived
            // handles resolve harmlessly when dropped.
            return;
        }
        registry::counter_inc("serve.net_frames_out");
    }
}

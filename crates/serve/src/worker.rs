//! The batching worker: one per shard, draining its bounded queue into
//! micro-batches (DESIGN.md §11, §14).
//!
//! The loop is the historical single-worker engine loop, unchanged where
//! it matters for bit-identity: wait for work, coalesce a batch anchored
//! on the *oldest* request's wait time, run it through the backend, reply
//! in order. The fault-tolerance additions wrap around that core:
//!
//! * expired requests are swept out *before* the batch runs and answered
//!   with [`ServeError::DeadlineExceeded`];
//! * the batch is stashed in the shard's `in_flight` slot while it runs,
//!   so a panic mid-batch leaves the supervisor something to recover
//!   (retry or fail with [`ServeError::WorkerCrashed`]) instead of
//!   silently dropping reply slots;
//! * `serve::slow_batch` / `serve::worker_batch` / `serve::drop_reply`
//!   failpoints fire between those steps for the chaos harness.
//!
//! This module never spawns threads — that is [`crate::supervisor`]'s
//! job, and the `no-unsupervised-spawn` lint keeps it that way.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use deepod_baselines::{RouteTtePredictor, TtePredictor};
use deepod_core::obs::registry;
use deepod_core::{FeatureContext, ModelError, PredictRequest, PredictResponse};
use deepod_tensor::failpoint;
use deepod_traj::CityDataset;

use crate::engine::{Backend, EngineReply, Pending, ServeError, Shard, Shared};

/// The batching loop for shard `shard_idx`: wait for work, coalesce a
/// micro-batch (size- or deadline-triggered), sweep expired requests, run
/// the batch, reply, repeat — until the queue is closed *and* drained, so
/// shutdown never drops an accepted request. Returns normally only on
/// clean shutdown; a panic (model bug or injected fault) unwinds into the
/// supervisor's `catch_unwind`.
pub(crate) fn worker_loop(
    shared: &Shared,
    shard_idx: usize,
    backend: &mut Backend,
    fallback: &mut Option<RouteTtePredictor>,
    ctx: &FeatureContext,
    ds: &CityDataset,
) {
    let Some(shard) = shared.shards.get(shard_idx) else {
        return;
    };
    let config = shared.config;
    loop {
        let mut batch = {
            let mut q = shard.lock_queue();
            // Wait for work; the oldest request anchors the coalescing
            // deadline. The batch closes at max_batch requests, or when
            // the *oldest* request has waited max_wait_ms (its latency
            // bound), or at shutdown (drain immediately).
            let deadline = loop {
                if let Some(first) = q.items.front() {
                    break first.enqueued + Duration::from_millis(config.max_wait_ms);
                }
                if q.closed {
                    return;
                }
                q = shard.work.wait(q).unwrap_or_else(|p| p.into_inner());
            };
            while q.items.len() < config.max_batch && !q.closed {
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now) else {
                    break; // deadline already passed
                };
                if remaining.is_zero() {
                    break;
                }
                let (guard, timeout) = shard
                    .work
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let take = q.items.len().min(config.max_batch);
            let batch: Vec<Pending> = q.items.drain(..take).collect();
            shared.depth.fetch_sub(take, Ordering::Relaxed);
            registry::gauge_set(
                "serve.queue_depth",
                shared.depth.load(Ordering::Relaxed) as f64,
            );
            batch
        };
        // Producers blocked on a full queue can move again.
        shard.space.notify_all();

        // Shed expired requests before admitting the rest into a batch —
        // running a model on an answer nobody will wait for only delays
        // the requests behind it.
        for expired in sweep_expired(&mut batch, Instant::now()) {
            registry::counter_inc("serve.deadline_expired");
            let _ = expired.tx.send(Err(ServeError::DeadlineExceeded));
        }
        if batch.is_empty() {
            continue;
        }
        let env = BatchEnv {
            shard,
            cache: shared.cache.as_deref(),
            ctx,
            ds,
            threads: config.threads,
        };
        process_batch(&env, backend, fallback, batch);
    }
}

/// Removes every request whose deadline is at or before `now`, preserving
/// the order of the survivors. Pure — no clocks, no metrics, no channels —
/// so the shed policy is unit-testable without threads.
pub(crate) fn sweep_expired(batch: &mut Vec<Pending>, now: Instant) -> Vec<Pending> {
    let mut expired = Vec::new();
    let mut keep = Vec::with_capacity(batch.len());
    for p in batch.drain(..) {
        match p.deadline {
            Some(d) if d <= now => expired.push(p),
            _ => keep.push(p),
        }
    }
    *batch = keep;
    expired
}

/// Everything immutable a worker hands `process_batch` alongside the
/// batch itself, bundled so the compute path has one environment rather
/// than a parade of loose parameters.
struct BatchEnv<'a> {
    shard: &'a Shard,
    cache: Option<&'a crate::cache::ServeCache>,
    ctx: &'a FeatureContext,
    ds: &'a CityDataset,
    threads: usize,
}

/// Runs one swept batch: stash it as in-flight (crash recovery), hit the
/// chaos failpoints, compute, take the batch back, reply in order.
fn process_batch(
    env: &BatchEnv<'_>,
    backend: &mut Backend,
    fallback: &mut Option<RouteTtePredictor>,
    batch: Vec<Pending>,
) {
    registry::observe("serve.batch_size", batch.len() as f64);
    registry::counter_add("serve.requests", batch.len() as u64);
    let reqs: Vec<PredictRequest> = batch.iter().map(|p| p.req.clone()).collect();
    let degrade_mask: Vec<bool> = batch.iter().map(|p| p.degrade_ok).collect();

    // Stash the batch before anything can panic: if the compute below
    // unwinds, the supervisor takes this slot and either requeues the
    // requests (retry budget left) or fails them with a typed error.
    {
        let mut slot = env
            .shard
            .in_flight
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        *slot = Some(batch);
    }

    // Chaos failpoints sit after the stash so an injected panic exercises
    // the same recovery path a real model bug would.
    failpoint::hit("serve::slow_batch");
    failpoint::hit("serve::worker_batch");

    let results = compute_results(
        backend,
        fallback,
        env.ctx,
        env.ds,
        env.threads,
        &reqs,
        &degrade_mask,
    );

    let batch: Vec<Pending> = {
        let mut slot = env
            .shard
            .in_flight
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        slot.take().unwrap_or_default()
    };
    for (pending, (result, degraded)) in batch.into_iter().zip(results) {
        registry::observe(
            "serve.request_latency_ms",
            pending.enqueued.elapsed().as_secs_f64() * 1e3,
        );
        if degraded {
            registry::counter_inc("serve.degraded");
        }
        // Populate the cache from a clean model answer. Degraded (fallback)
        // answers are deliberately not cached: they would outlive the
        // overload that produced them and keep serving worse estimates
        // after the ladder recovers.
        if let (Some(cache), Some(key), false, Ok(resp)) =
            (env.cache, pending.cache_key, degraded, &result)
        {
            // Bounded by ServeCache's own LRU capacity + TTL eviction.
            // deepod-lint: allow(no-unbounded-cache)
            cache.insert(key, resp.eta_seconds, crate::cache::now_epoch_s());
        }
        if failpoint::should_fire("serve::drop_reply") {
            // Poisoned-reply injection: drop the slot instead of sending,
            // so the chaos suite can prove the caller still gets a typed
            // `WorkerCrashed` from the closed channel — never a hang.
            continue;
        }
        // A producer that dropped its receiver no longer wants the
        // answer; that is not the engine's problem.
        let _ = pending.tx.send(Ok(EngineReply { result, degraded }));
    }
}

/// Computes one `(result, degraded)` per request, in slot order. With no
/// degrade-eligible slots (or no fallback) the whole batch goes through
/// the backend in a single `estimate_batch` call — the bit-identity path.
/// Otherwise model slots still run batched and degrade-eligible slots are
/// answered by the fallback, merged back in order.
fn compute_results(
    backend: &mut Backend,
    fallback: &mut Option<RouteTtePredictor>,
    ctx: &FeatureContext,
    ds: &CityDataset,
    threads: usize,
    reqs: &[PredictRequest],
    degrade_mask: &[bool],
) -> Vec<(Result<PredictResponse, ModelError>, bool)> {
    let split = match fallback {
        // A route-tte primary backend is already the degraded answer;
        // splitting the batch would only recompute the same thing.
        Some(fb) if !matches!(backend, Backend::RouteTte(_)) => {
            degrade_mask.iter().any(|&m| m).then_some(fb)
        }
        _ => None,
    };
    let Some(fb) = split else {
        return match backend {
            Backend::Model(model) => model
                .estimate_batch(ctx, &ds.net, reqs, threads)
                .into_iter()
                .map(|r| (r, false))
                .collect(),
            Backend::Quantized(model) => model
                .estimate_batch(ctx, &ds.net, reqs, threads)
                .into_iter()
                .map(|r| (r, false))
                .collect(),
            Backend::RouteTte(predictor) => reqs
                .iter()
                .map(|r| (fallback_answer(predictor, r), true))
                .collect(),
        };
    };

    let model_reqs: Vec<PredictRequest> = reqs
        .iter()
        .zip(degrade_mask)
        .filter(|(_, &m)| !m)
        .map(|(r, _)| r.clone())
        .collect();
    let model_results: Vec<Result<PredictResponse, ModelError>> = match backend {
        Backend::Model(model) => model.estimate_batch(ctx, &ds.net, &model_reqs, threads),
        Backend::Quantized(model) => model.estimate_batch(ctx, &ds.net, &model_reqs, threads),
        Backend::RouteTte(_) => Vec::new(),
    };
    let mut model_iter = model_results.into_iter();
    reqs.iter()
        .zip(degrade_mask)
        .map(|(req, &degrade)| {
            if degrade {
                (fallback_answer(fb, req), true)
            } else {
                // `estimate_batch` answers one slot per request, so the
                // iterator cannot run dry; the error arm is unreachable.
                (
                    model_iter
                        .next()
                        .unwrap_or(Err(ModelError::UnmatchedEndpoints)),
                    false,
                )
            }
        })
        .collect()
}

/// Answers one request through the route-tte fallback. Encoded requests
/// carry model-specific features the baseline cannot consume, so they get
/// the same per-request error an unmatchable raw request would.
fn fallback_answer(
    predictor: &mut RouteTtePredictor,
    req: &PredictRequest,
) -> Result<PredictResponse, ModelError> {
    match req {
        PredictRequest::Raw(od) => predictor
            .predict(od)
            .map(|eta_seconds| PredictResponse { eta_seconds })
            .ok_or(ModelError::UnmatchedEndpoints),
        PredictRequest::Encoded(_) => Err(ModelError::UnmatchedEndpoints),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn pending(deadline: Option<Instant>) -> Pending {
        let (tx, _rx) = mpsc::channel();
        Pending {
            req: PredictRequest::Raw(deepod_traj::OdInput {
                origin: deepod_roadnet::Point::new(0.0, 0.0),
                destination: deepod_roadnet::Point::new(1.0, 1.0),
                depart: 0.0,
                weather: deepod_traffic::WeatherType(0),
            }),
            tx,
            enqueued: Instant::now(),
            deadline,
            attempts: 0,
            degrade_ok: false,
            cache_key: None,
        }
    }

    #[test]
    fn sweep_keeps_undeadlined_and_future_requests_in_order() {
        let now = Instant::now();
        let later = now + Duration::from_secs(5);
        let mut batch = vec![pending(None), pending(Some(later)), pending(None)];
        let expired = sweep_expired(&mut batch, now);
        assert!(expired.is_empty());
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn sweep_removes_expired_requests_and_preserves_survivor_order() {
        let now = Instant::now();
        let past = now - Duration::from_millis(1);
        let later = now + Duration::from_secs(5);
        let mut batch = vec![
            pending(Some(past)),
            pending(Some(later)),
            pending(Some(past)),
            pending(None),
        ];
        let expired = sweep_expired(&mut batch, now);
        assert_eq!(expired.len(), 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.first().map(|p| p.deadline), Some(Some(later)));
        assert_eq!(batch.get(1).map(|p| p.deadline), Some(None));
    }

    #[test]
    fn sweep_treats_exactly_now_as_expired() {
        let now = Instant::now();
        let mut batch = vec![pending(Some(now))];
        let expired = sweep_expired(&mut batch, now);
        assert_eq!(expired.len(), 1);
        assert!(batch.is_empty());
    }
}

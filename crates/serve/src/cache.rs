//! The serving cache tier: an optional precomputed [`OdOracle`] plus an
//! in-process bounded LRU, consulted **before** queue admission
//! (DESIGN.md §15).
//!
//! A hit replies immediately on the caller's reply channel and never
//! consumes worker capacity — under a hot-OD workload the batching
//! workers only ever see the cold tail. Two tiers answer a lookup:
//!
//! 1. **LRU** — answers the engine itself computed earlier, keyed by the
//!    same [`OracleKey`] scheme. Entries expire by *time slot*, not by
//!    age: each entry stamps the wall-clock slot it was inserted in, and
//!    dies as soon as the wall clock advances past that slot — traffic
//!    conditions are modeled per slot, so an answer from the previous
//!    slot is wrong, not merely old. Capacity is enforced per shard with
//!    a recency index (`BTreeMap` of insertion ticks — no slice indexing
//!    anywhere on the hot path, so the no-panic audit can certify it).
//! 2. **Oracle** — canonical precomputed answers from `deepod
//!    precompute`. Immutable, never expires (it is keyed by *weekly*
//!    slot, which already encodes time-of-week), validated against the
//!    model fingerprint at startup.
//!
//! All clock reads are injected (`now_s`), so expiry is unit-testable
//! without sleeping; the engine passes UNIX time.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use deepod_core::obs::registry;
use deepod_core::oracle::{OdKeyer, OdOracle, OracleKey};
use deepod_core::{TimeSlotError, TimeSlots};
use deepod_traj::OdInput;

/// Registers the cache metric keys at zero so snapshots carry them even
/// for a cacheless engine.
pub fn register_metrics() {
    registry::counter_add("serve.cache_hits", 0);
    registry::counter_add("serve.cache_misses", 0);
    registry::counter_add("serve.cache_evictions", 0);
    registry::counter_add("serve.cache_stale", 0);
    registry::register_gauge("serve.cache_hit_rate");
}

/// Tunables of the LRU tier.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total LRU entries across all shards; `0` disables the LRU tier
    /// (the oracle tier, if present, still answers).
    pub capacity: usize,
    /// Wall-clock slot size for expiry, in seconds; must divide a week
    /// (the same contract as the model's own slots). Entries inserted in
    /// slot `k` are stale from slot `k+1` on.
    pub ttl_seconds: f64,
    /// LRU shard count (contention knob; clamped to at least 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 0,
            ttl_seconds: 300.0,
            shards: 4,
        }
    }
}

/// Monotone counters of one cache instance (mirrored into the metrics
/// registry; kept locally so tests can assert without snapshotting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by either tier.
    pub hits: u64,
    /// Lookups neither tier could answer.
    pub misses: u64,
    /// LRU entries displaced by capacity.
    pub evictions: u64,
    /// LRU entries dropped because the wall slot advanced past theirs.
    pub stale: u64,
}

struct LruShard {
    /// key → (answer, wall slot at insert, recency tick).
    map: HashMap<OracleKey, (f32, usize, u64)>,
    /// tick → key, oldest first; `pop_first` is the eviction victim.
    order: BTreeMap<u64, OracleKey>,
    next_tick: u64,
}

impl LruShard {
    fn new() -> LruShard {
        LruShard {
            map: HashMap::new(),
            order: BTreeMap::new(),
            next_tick: 0,
        }
    }

    fn touch(&mut self, key: OracleKey, old_tick: u64) -> u64 {
        self.order.remove(&old_tick);
        let tick = self.next_tick;
        self.next_tick = self.next_tick.wrapping_add(1);
        self.order.insert(tick, key);
        tick
    }
}

/// The serving cache: oracle tier + sharded LRU tier. Cheap to share
/// (`Arc` it into the engine); all interior mutability is per-shard.
pub struct ServeCache {
    keyer: OdKeyer,
    oracle: Option<Arc<OdOracle>>,
    /// Wall-clock discretization driving LRU expiry.
    wall: TimeSlots,
    shards: Vec<Mutex<LruShard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale: AtomicU64,
}

impl ServeCache {
    /// Builds a cache over `keyer`'s OD discretization. When an oracle is
    /// supplied, pass its own keyer — the two tiers must agree on what a
    /// key means. Fails only if `ttl_seconds` violates the slot contract.
    pub fn new(
        keyer: OdKeyer,
        oracle: Option<Arc<OdOracle>>,
        cfg: CacheConfig,
    ) -> Result<ServeCache, TimeSlotError> {
        let wall = TimeSlots::new(0.0, cfg.ttl_seconds)?;
        let nshards = cfg.shards.clamp(1, 64);
        let per_shard_capacity = if cfg.capacity == 0 {
            0
        } else {
            cfg.capacity.div_ceil(nshards)
        };
        Ok(ServeCache {
            keyer,
            oracle,
            wall,
            shards: (0..nshards).map(|_| Mutex::new(LruShard::new())).collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale: AtomicU64::new(0),
        })
    }

    /// The key scheme in use (shared with any oracle tier).
    pub fn keyer(&self) -> &OdKeyer {
        &self.keyer
    }

    /// Keys a raw request; `None` for pre-epoch or non-finite inputs,
    /// which must never be served from cache.
    pub fn key_of(&self, od: &OdInput) -> Option<OracleKey> {
        self.keyer.key_of(od)
    }

    /// Whether the LRU tier can hold anything (`insert` is a no-op
    /// otherwise).
    pub fn lru_enabled(&self) -> bool {
        self.per_shard_capacity > 0
    }

    /// `None` only if the shard vector were empty — the constructor
    /// builds at least one, so callers degrade to a miss/no-op.
    fn shard_of(&self, key: &OracleKey) -> Option<&Mutex<LruShard>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let idx = (h.finish() as usize) % self.shards.len().max(1); // deepod-lint: allow(truncating-cast)
        self.shards.get(idx)
    }

    fn lock_shard<'a>(shard: &'a Mutex<LruShard>) -> std::sync::MutexGuard<'a, LruShard> {
        // A poisoned shard means a panic mid-insert; the maps stay
        // structurally valid, so keep serving.
        shard.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn wall_slot(&self, now_s: f64) -> usize {
        self.wall
            .slot_rem_checked(now_s)
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    /// Looks up an answer at wall time `now_s`: LRU first (dropping the
    /// entry as stale if the wall slot advanced past it), then the
    /// oracle. Updates hit/miss/stale accounting and the hit-rate gauge.
    pub fn lookup(&self, key: OracleKey, now_s: f64) -> Option<f32> {
        let now_slot = self.wall_slot(now_s);
        if let Some(mutex) = self.shard_of(&key).filter(|_| self.lru_enabled()) {
            let mut shard = Self::lock_shard(mutex);
            match shard.map.get(&key).copied() {
                Some((_, slot, tick)) if slot < now_slot => {
                    shard.map.remove(&key);
                    shard.order.remove(&tick);
                    self.stale.fetch_add(1, Ordering::Relaxed);
                    registry::counter_inc("serve.cache_stale");
                }
                Some((eta, slot, tick)) => {
                    let new_tick = shard.touch(key, tick);
                    shard.map.insert(key, (eta, slot, new_tick));
                    drop(shard);
                    return Some(self.record_hit(eta));
                }
                None => {}
            }
        }
        if let Some(oracle) = &self.oracle {
            if let Some(eta) = oracle.lookup(key) {
                return Some(self.record_hit(eta));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        registry::counter_inc("serve.cache_misses");
        self.publish_hit_rate();
        None
    }

    fn record_hit(&self, eta: f32) -> f32 {
        self.hits.fetch_add(1, Ordering::Relaxed);
        registry::counter_inc("serve.cache_hits");
        self.publish_hit_rate();
        eta
    }

    /// Stores an engine-computed answer, stamped with the current wall
    /// slot. No-op when the LRU tier is disabled. At capacity the
    /// least-recently-used entry is evicted first.
    pub fn insert(&self, key: OracleKey, eta_seconds: f32, now_s: f64) {
        if !self.lru_enabled() {
            return;
        }
        let now_slot = self.wall_slot(now_s);
        let Some(mutex) = self.shard_of(&key) else {
            return;
        };
        let mut shard = Self::lock_shard(mutex);
        if let Some((_, _, tick)) = shard.map.get(&key).copied() {
            let new_tick = shard.touch(key, tick);
            shard.map.insert(key, (eta_seconds, now_slot, new_tick));
            return;
        }
        while shard.map.len() >= self.per_shard_capacity {
            let Some((_, victim)) = shard.order.pop_first() else {
                break; // order/map out of sync; recover by inserting anyway
            };
            shard.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            registry::counter_inc("serve.cache_evictions");
        }
        let tick = shard.next_tick;
        shard.next_tick = shard.next_tick.wrapping_add(1);
        shard.order.insert(tick, key);
        shard.map.insert(key, (eta_seconds, now_slot, tick));
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
        }
    }

    fn publish_hit_rate(&self) {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m > 0.0 {
            registry::gauge_set("serve.cache_hit_rate", h / (h + m));
        }
    }
}

/// UNIX wall time in seconds, as the cache's `now_s`. A clock before the
/// epoch (impossible on healthy systems) degrades to 0.0 rather than
/// panicking.
pub fn now_epoch_s() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(o: u32, d: u32, s: u32) -> OracleKey {
        OracleKey {
            origin_cell: o,
            dest_cell: d,
            week_slot: s,
        }
    }

    fn lru_only(capacity: usize, ttl: f64) -> ServeCache {
        // A 1×1 grid keyer is enough for pure-LRU tests.
        let keyer = OdKeyer {
            x0: 0.0,
            y0: 0.0,
            cell_meters: 1000.0,
            nx: 1,
            ny: 1,
            slots: TimeSlots::five_minutes(),
        };
        ServeCache::new(
            keyer,
            None,
            CacheConfig {
                capacity,
                ttl_seconds: ttl,
                shards: 1,
            },
        )
        .expect("valid ttl")
    }

    #[test]
    fn miss_then_populate_then_hit() {
        let cache = lru_only(8, 300.0);
        let k = key(1, 2, 3);
        assert_eq!(cache.lookup(k, 10.0), None);
        cache.insert(k, 123.5, 10.0);
        assert_eq!(cache.lookup(k, 20.0), Some(123.5));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                stale: 0
            }
        );
    }

    #[test]
    fn entries_expire_when_the_wall_slot_advances() {
        let cache = lru_only(8, 300.0);
        let k = key(1, 2, 3);
        cache.insert(k, 42.0, 10.0); // slot 0
        assert_eq!(cache.lookup(k, 299.0), Some(42.0), "same slot: fresh");
        assert_eq!(cache.lookup(k, 301.0), None, "next slot: stale");
        assert_eq!(cache.stats().stale, 1);
        // Stale lookup evicted the entry; a later same-slot lookup is a
        // plain miss, not stale again.
        assert_eq!(cache.lookup(k, 302.0), None);
        assert_eq!(cache.stats().stale, 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used_first() {
        let cache = lru_only(2, 300.0);
        let (a, b, c) = (key(1, 0, 0), key(2, 0, 0), key(3, 0, 0));
        cache.insert(a, 1.0, 0.0);
        cache.insert(b, 2.0, 0.0);
        assert_eq!(cache.lookup(a, 1.0), Some(1.0)); // a is now most recent
        cache.insert(c, 3.0, 1.0); // evicts b, the LRU
        assert_eq!(cache.lookup(b, 2.0), None);
        assert_eq!(cache.lookup(a, 2.0), Some(1.0));
        assert_eq!(cache.lookup(c, 2.0), Some(3.0));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_the_lru_tier() {
        let cache = lru_only(0, 300.0);
        let k = key(1, 2, 3);
        cache.insert(k, 1.0, 0.0);
        assert_eq!(cache.lookup(k, 0.0), None);
        assert!(!cache.lru_enabled());
    }

    #[test]
    fn ttl_must_satisfy_the_slot_contract() {
        let keyer = OdKeyer {
            x0: 0.0,
            y0: 0.0,
            cell_meters: 1000.0,
            nx: 1,
            ny: 1,
            slots: TimeSlots::five_minutes(),
        };
        let bad = ServeCache::new(
            keyer,
            None,
            CacheConfig {
                capacity: 4,
                ttl_seconds: 777.0, // not a week divisor
                shards: 1,
            },
        );
        assert!(bad.is_err());
    }

    #[test]
    fn reinsert_refreshes_value_and_slot() {
        let cache = lru_only(4, 300.0);
        let k = key(7, 8, 9);
        cache.insert(k, 10.0, 10.0); // slot 0
        cache.insert(k, 20.0, 310.0); // slot 1: refresh
        assert_eq!(cache.lookup(k, 320.0), Some(20.0));
    }
}

//! The versioned newline-delimited JSON wire protocol of `deepod serve`
//! — one codec shared by stdin mode, the TCP front end ([`crate::net`]),
//! and the client ([`crate::client`]).
//!
//! One request per line:
//!
//! ```text
//! {"v": 1, "id": 1, "from": [1200.0, 3400.0], "to": [4100.0, 800.0], "depart": 3600.0}
//! ```
//!
//! The `"v"` field is the protocol version. It is optional on the way in
//! — a frame without it is treated as v1, which is exactly what every
//! pre-versioning client sent — but [`WireRequest::render`] always emits
//! it explicitly. A frame with any other version is rejected with a typed
//! [`ErrorKind::UnsupportedVersion`] error instead of being guessed at.
//!
//! An optional `"priority": "low"` field tags best-effort traffic that the
//! degradation ladder sheds first under load (`"normal"`, the default, is
//! also accepted explicitly).
//!
//! One response per line, in input order per client:
//!
//! ```text
//! {"id":1,"eta_s":412.5,"degraded":false}                          (answered)
//! {"id":2,"error":"queue full (capacity 256)"}                     (rejected or failed)
//! {"id":null,"error":{"kind":"unsupported_version","msg":"..."}}   (protocol reject)
//! ```
//!
//! Every error carries a typed [`ErrorKind`] internally. On the wire,
//! kinds that the pre-versioning protocol could produce (bad requests,
//! model failures, every [`ServeError`]) keep the historical *flat* string
//! encoding — the stdin byte format is bit-identical to the unversioned
//! protocol for v1 frames. Only the protocol-level rejects that never
//! existed before versioning (unsupported version, oversized frame, and
//! the per-client admission rejects of the TCP front end) use the
//! structured `{"error":{"kind":...,"msg":...}}` frame.
//!
//! `id` is an opaque correlation token chosen by the client; the server
//! echoes it verbatim. Coordinates are meters in the dataset's plane,
//! `depart` is seconds since the dataset epoch.

use crate::engine::ServeError;
use serde::json::{self, Value};

/// The wire protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// Typed classification of every error frame — the wire-level mirror of
/// [`ServeError`] plus the request- and protocol-level failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line could not be parsed or failed validation.
    BadRequest,
    /// The request was processed but the model could not answer it
    /// (e.g. endpoints unmatchable to the road network).
    Model,
    /// [`ServeError::QueueFull`].
    QueueFull,
    /// [`ServeError::ShuttingDown`].
    ShuttingDown,
    /// [`ServeError::WorkerCrashed`].
    WorkerCrashed,
    /// [`ServeError::DeadlineExceeded`].
    DeadlineExceeded,
    /// [`ServeError::ShedLow`].
    ShedLow,
    /// [`ServeError::Overloaded`].
    Overloaded,
    /// The frame declared a protocol version this server does not speak.
    UnsupportedVersion,
    /// The frame exceeded the server's size cap for one line.
    FrameTooLarge,
    /// This connection has too many requests in flight (per-client
    /// admission control of the TCP front end).
    InFlightLimit,
    /// The server is at its connection cap and refused this connection.
    ConnectionLimit,
}

impl ErrorKind {
    /// The stable snake_case name used in structured error frames.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Model => "model",
            ErrorKind::QueueFull => "queue_full",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::WorkerCrashed => "worker_crashed",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::ShedLow => "shed_low",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::UnsupportedVersion => "unsupported_version",
            ErrorKind::FrameTooLarge => "frame_too_large",
            ErrorKind::InFlightLimit => "in_flight_limit",
            ErrorKind::ConnectionLimit => "connection_limit",
        }
    }

    /// Parses a structured frame's kind name; unknown names map to `None`.
    pub fn from_name(name: &str) -> Option<ErrorKind> {
        const ALL: [ErrorKind; 12] = [
            ErrorKind::BadRequest,
            ErrorKind::Model,
            ErrorKind::QueueFull,
            ErrorKind::ShuttingDown,
            ErrorKind::WorkerCrashed,
            ErrorKind::DeadlineExceeded,
            ErrorKind::ShedLow,
            ErrorKind::Overloaded,
            ErrorKind::UnsupportedVersion,
            ErrorKind::FrameTooLarge,
            ErrorKind::InFlightLimit,
            ErrorKind::ConnectionLimit,
        ];
        ALL.into_iter().find(|k| k.as_str() == name)
    }

    /// The kind of a typed queueing failure.
    pub fn of_serve_error(e: &ServeError) -> ErrorKind {
        match e {
            ServeError::QueueFull { .. } => ErrorKind::QueueFull,
            ServeError::ShuttingDown => ErrorKind::ShuttingDown,
            ServeError::WorkerCrashed => ErrorKind::WorkerCrashed,
            ServeError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            ServeError::ShedLow => ErrorKind::ShedLow,
            ServeError::Overloaded => ErrorKind::Overloaded,
        }
    }

    /// Kinds introduced *with* protocol versioning: they render as the
    /// structured `{"error":{"kind":...,"msg":...}}` frame. Everything the
    /// pre-versioning protocol could produce keeps the flat string
    /// encoding so stdin v1 output stays bit-identical.
    pub fn is_protocol_level(self) -> bool {
        matches!(
            self,
            ErrorKind::UnsupportedVersion
                | ErrorKind::FrameTooLarge
                | ErrorKind::InFlightLimit
                | ErrorKind::ConnectionLimit
        )
    }

    /// Recovers the kind of a legacy flat error string. The engine-level
    /// messages are stable [`ServeError`] display strings (exact
    /// prefixes); request-level parse/validation messages carry their
    /// field prefix; anything else was produced by the model.
    fn classify_flat(msg: &str) -> ErrorKind {
        const REQUEST_PREFIXES: [&str; 7] = [
            "bad request JSON:",
            "v:",
            "id:",
            "from:",
            "to:",
            "depart:",
            "priority:",
        ];
        if msg.starts_with("queue full") {
            ErrorKind::QueueFull
        } else if msg.starts_with("engine is shutting down") {
            ErrorKind::ShuttingDown
        } else if msg.starts_with("worker crashed") {
            ErrorKind::WorkerCrashed
        } else if msg.starts_with("deadline exceeded") {
            ErrorKind::DeadlineExceeded
        } else if msg.starts_with("low-priority request shed") {
            ErrorKind::ShedLow
        } else if msg.starts_with("overloaded") {
            ErrorKind::Overloaded
        } else if REQUEST_PREFIXES.iter().any(|p| msg.starts_with(p)) {
            ErrorKind::BadRequest
        } else {
            ErrorKind::Model
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed wire error: the kind plus the human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Typed classification.
    pub kind: ErrorKind,
    /// Human-readable explanation, echoed on the wire.
    pub msg: String,
}

impl WireError {
    /// A request-level parse/validation failure.
    pub fn bad_request(msg: impl Into<String>) -> WireError {
        WireError {
            kind: ErrorKind::BadRequest,
            msg: msg.into(),
        }
    }

    /// A protocol-level failure with an explicit kind.
    pub fn protocol(kind: ErrorKind, msg: impl Into<String>) -> WireError {
        WireError {
            kind,
            msg: msg.into(),
        }
    }
}

impl From<&ServeError> for WireError {
    fn from(e: &ServeError) -> WireError {
        WireError {
            kind: ErrorKind::of_serve_error(e),
            msg: e.to_string(),
        }
    }
}

/// A parsed request line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Origin coordinates (meters).
    pub from: (f64, f64),
    /// Destination coordinates (meters).
    pub to: (f64, f64),
    /// Departure time (seconds since the dataset epoch).
    pub depart: f64,
    /// `true` when the client tagged the request `"priority": "low"` —
    /// shed first when the degradation ladder reaches shed-low.
    pub low_priority: bool,
}

/// One response frame: an answer or a typed error.
#[derive(Clone, Debug, PartialEq)]
pub enum WireResponse {
    /// An answered request.
    Ok {
        /// The request's correlation id, echoed verbatim.
        id: u64,
        /// Estimated travel time in seconds.
        eta_seconds: f32,
        /// The answer came from a degraded (fallback) path.
        degraded: bool,
    },
    /// A rejected or failed request. `id` is `None` when the line could
    /// not be parsed far enough to recover a correlation id (or the error
    /// concerns the connection rather than one request).
    Err {
        /// The request's correlation id, when recoverable.
        id: Option<u64>,
        /// The typed failure.
        error: WireError,
    },
}

fn num_of(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Num(raw) => raw
            .parse::<f64>()
            .map_err(|_| format!("{what}: unparseable number '{raw}'")),
        other => Err(format!("{what}: expected a number, got {other:?}")),
    }
}

fn point_of(v: &Value, what: &str) -> Result<(f64, f64), String> {
    let items = json::expect_arr(v).map_err(|e| format!("{what}: {e}"))?;
    let (Some(x), Some(y), None) = (items.first(), items.get(1), items.get(2)) else {
        return Err(format!(
            "{what}: expected [x, y], got {} items",
            items.len()
        ));
    };
    Ok((num_of(x, what)?, num_of(y, what)?))
}

impl WireRequest {
    /// Parses one request line, with typed errors: an unsupported `"v"`
    /// version is [`ErrorKind::UnsupportedVersion`]; everything else is
    /// [`ErrorKind::BadRequest`]. A frame without `"v"` is treated as v1
    /// — that is exactly what every pre-versioning client sent.
    pub fn parse(line: &str) -> Result<WireRequest, WireError> {
        let v = json::parse(line)
            .map_err(|e| WireError::bad_request(format!("bad request JSON: {e}")))?;
        if let Ok(ver) = json::obj_field(&v, "v") {
            let raw = num_of(ver, "v").map_err(WireError::bad_request)?;
            // Versions are exact small integers by construction.
            // deepod-lint: allow(float-eq)
            if raw != f64::from(PROTOCOL_VERSION) {
                return Err(WireError::protocol(
                    ErrorKind::UnsupportedVersion,
                    format!("v: protocol version {raw} is not supported (this server speaks v{PROTOCOL_VERSION})"),
                ));
            }
        }
        let id_raw = num_of(
            json::obj_field(&v, "id").map_err(|e| WireError::bad_request(e.to_string()))?,
            "id",
        )
        .map_err(WireError::bad_request)?;
        // Intentional exact check: a JSON id is an integer iff fract() == 0.
        // deepod-lint: allow(float-eq)
        if id_raw < 0.0 || id_raw.fract() != 0.0 {
            return Err(WireError::bad_request(format!(
                "id: expected a non-negative integer, got {id_raw}"
            )));
        }
        let id = id_raw as u64; // deepod-lint: allow(truncating-cast)
        let from = point_of(
            json::obj_field(&v, "from").map_err(|e| WireError::bad_request(e.to_string()))?,
            "from",
        )
        .map_err(WireError::bad_request)?;
        let to = point_of(
            json::obj_field(&v, "to").map_err(|e| WireError::bad_request(e.to_string()))?,
            "to",
        )
        .map_err(WireError::bad_request)?;
        let depart = num_of(
            json::obj_field(&v, "depart").map_err(|e| WireError::bad_request(e.to_string()))?,
            "depart",
        )
        .map_err(WireError::bad_request)?;
        // Optional field: absent means normal priority. A present-but-unknown
        // value is an error — a client that *meant* to shed politely should
        // not silently get normal treatment because of a typo.
        let low_priority = match json::obj_field(&v, "priority").ok() {
            None => false,
            Some(Value::Str(p)) if p == "low" => true,
            Some(Value::Str(p)) if p == "normal" => false,
            Some(other) => {
                return Err(WireError::bad_request(format!(
                    "priority: expected \"low\" or \"normal\", got {other:?}"
                )))
            }
        };
        Ok(WireRequest {
            id,
            from,
            to,
            depart,
            low_priority,
        })
    }

    /// Renders the request as one wire line (no trailing newline), always
    /// with an explicit `"v"` field — the client-side encoder used by
    /// [`crate::client::ServeClient`] and the load generator.
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(96);
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"v\":{PROTOCOL_VERSION},\"id\":{},\"from\":[{},{}],\"to\":[{},{}],\"depart\":{}",
            self.id, self.from.0, self.from.1, self.to.0, self.to.1, self.depart
        );
        if self.low_priority {
            out.push_str(",\"priority\":\"low\"");
        }
        out.push('}');
        out
    }
}

impl WireResponse {
    /// The correlation id this frame answers, when it has one.
    pub fn id(&self) -> Option<u64> {
        match self {
            WireResponse::Ok { id, .. } => Some(*id),
            WireResponse::Err { id, .. } => *id,
        }
    }

    /// `true` for an answered request.
    pub fn is_ok(&self) -> bool {
        matches!(self, WireResponse::Ok { .. })
    }

    /// Renders the response as one wire line (no trailing newline).
    /// Answers and pre-versioning error kinds use the historical flat
    /// encoding (bit-identical to the unversioned protocol); protocol-
    /// level kinds use the structured typed frame.
    pub fn to_line(&self) -> String {
        match self {
            WireResponse::Ok {
                id,
                eta_seconds,
                degraded,
            } => render_ok(*id, *eta_seconds, *degraded),
            WireResponse::Err { id, error } if !error.kind.is_protocol_level() => {
                render_error(*id, &error.msg)
            }
            WireResponse::Err { id, error } => {
                let mut out = String::with_capacity(64 + error.msg.len());
                out.push_str("{\"id\":");
                match id {
                    Some(id) => {
                        use std::fmt::Write as _;
                        let _ = write!(out, "{id}");
                    }
                    None => out.push_str("null"),
                }
                out.push_str(",\"error\":{\"kind\":");
                json::escape_str(error.kind.as_str(), &mut out);
                out.push_str(",\"msg\":");
                json::escape_str(&error.msg, &mut out);
                out.push_str("}}");
                out
            }
        }
    }

    /// Parses one response line — both the flat and the structured error
    /// encodings. The error string is a transport-level parse failure
    /// (the frame itself was not a valid response).
    pub fn parse(line: &str) -> Result<WireResponse, String> {
        let v = json::parse(line).map_err(|e| format!("bad response JSON: {e}"))?;
        let id = match json::obj_field(&v, "id") {
            Ok(Value::Null) | Err(_) => None,
            Ok(field) => {
                let raw = num_of(field, "id")?;
                Some(raw as u64) // deepod-lint: allow(truncating-cast)
            }
        };
        if let Ok(err_field) = json::obj_field(&v, "error") {
            return match err_field {
                Value::Str(msg) => Ok(WireResponse::Err {
                    id,
                    error: WireError {
                        kind: ErrorKind::classify_flat(msg),
                        msg: msg.clone(),
                    },
                }),
                Value::Obj(_) => {
                    let kind_name = json::expect_str(
                        json::obj_field(err_field, "kind").map_err(|e| e.to_string())?,
                    )
                    .map_err(|e| format!("error.kind: {e}"))?;
                    let kind = ErrorKind::from_name(kind_name)
                        .ok_or_else(|| format!("error.kind: unknown kind '{kind_name}'"))?;
                    let msg = json::expect_str(
                        json::obj_field(err_field, "msg").map_err(|e| e.to_string())?,
                    )
                    .map_err(|e| format!("error.msg: {e}"))?;
                    Ok(WireResponse::Err {
                        id,
                        error: WireError {
                            kind,
                            msg: msg.to_string(),
                        },
                    })
                }
                other => Err(format!("error: expected string or object, got {other:?}")),
            };
        }
        let id = id.ok_or_else(|| "id: missing on an ok frame".to_string())?;
        let eta = num_of(
            json::obj_field(&v, "eta_s").map_err(|e| e.to_string())?,
            "eta_s",
        )?;
        let degraded = match json::obj_field(&v, "degraded").map_err(|e| e.to_string())? {
            Value::Bool(b) => *b,
            other => return Err(format!("degraded: expected a bool, got {other:?}")),
        };
        Ok(WireResponse::Ok {
            id,
            eta_seconds: eta as f32,
            degraded,
        })
    }
}

/// Parses one request line. Errors are human-readable strings meant to be
/// echoed back on the wire in an error response. Prefer
/// [`WireRequest::parse`], which keeps the typed [`ErrorKind`].
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    WireRequest::parse(line).map_err(|e| e.msg)
}

/// Validates a parsed request's departure time against the dataset's
/// time-slot contract: `depart` must be a finite timestamp at or after
/// the dataset epoch (t = 0). Pre-epoch requests are rejected *here*,
/// per request on the wire, instead of being clamped onto slot 0 deep in
/// the feature encoder — a clamped slot would silently answer with the
/// wrong time-of-week conditions (and alias the wrong cache entry).
pub fn validate_depart(depart: f64) -> Result<(), String> {
    if !depart.is_finite() {
        return Err(format!("depart: expected a finite timestamp, got {depart}"));
    }
    if depart < 0.0 {
        return Err(format!(
            "depart: {depart} is before the dataset epoch (t >= 0); \
             pre-epoch times cannot be attributed to a time slot"
        ));
    }
    Ok(())
}

/// Renders a successful response line (the historical flat encoding).
pub fn render_ok(id: u64, eta_seconds: f32, degraded: bool) -> String {
    format!("{{\"id\":{id},\"eta_s\":{eta_seconds:.1},\"degraded\":{degraded}}}")
}

/// Renders a flat error response line. `id` is `None` when the line could
/// not even be parsed far enough to recover a correlation id.
pub fn render_error(id: Option<u64>, why: &str) -> String {
    let mut out = String::with_capacity(32 + why.len());
    out.push_str("{\"id\":");
    match id {
        Some(id) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{id}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"error\":");
    json::escape_str(why, &mut out);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let w = parse_request(
            r#"{"id": 7, "from": [1200.0, 3400], "to": [4100, 800.5], "depart": 3600.0}"#,
        )
        .expect("valid request");
        assert_eq!(w.id, 7);
        assert_eq!(w.from, (1200.0, 3400.0));
        assert_eq!(w.to, (4100.0, 800.5));
        assert_eq!(w.depart, 3600.0); // deepod-lint: allow(float-eq)
        assert!(!w.low_priority, "absent priority defaults to normal");
    }

    #[test]
    fn parses_priority_tags() {
        let base = r#""from": [1, 2], "to": [3, 4], "depart": 0"#;
        let low =
            parse_request(&format!(r#"{{"id": 1, {base}, "priority": "low"}}"#)).expect("valid");
        assert!(low.low_priority);
        let normal =
            parse_request(&format!(r#"{{"id": 1, {base}, "priority": "normal"}}"#)).expect("valid");
        assert!(!normal.low_priority);
        let err = parse_request(&format!(r#"{{"id": 1, {base}, "priority": "lo"}}"#))
            .expect_err("typo'd priority must not pass silently");
        assert!(err.contains("priority"), "got: {err}");
    }

    #[test]
    fn version_field_gates_parsing() {
        let base = r#""id": 1, "from": [1, 2], "to": [3, 4], "depart": 0"#;
        // Absent and explicit v1 both parse.
        assert!(parse_request(&format!(r#"{{{base}}}"#)).is_ok());
        assert!(parse_request(&format!(r#"{{"v": 1, {base}}}"#)).is_ok());
        // Any other version is a typed protocol-level reject.
        let err =
            WireRequest::parse(&format!(r#"{{"v": 2, {base}}}"#)).expect_err("v2 must be rejected");
        assert_eq!(err.kind, ErrorKind::UnsupportedVersion);
        assert!(err.kind.is_protocol_level());
        let err = WireRequest::parse(&format!(r#"{{"v": 0, {base}}}"#)).expect_err("v0 rejected");
        assert_eq!(err.kind, ErrorKind::UnsupportedVersion);
        // A non-numeric version is a plain bad request.
        let err = WireRequest::parse(&format!(r#"{{"v": "one", {base}}}"#)).expect_err("bad v");
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn request_render_round_trips() {
        for req in [
            WireRequest {
                id: 7,
                from: (1200.5, 3400.0),
                to: (4100.0, 800.25),
                depart: 3600.0,
                low_priority: false,
            },
            WireRequest {
                id: u64::from(u32::MAX),
                from: (-10.0, 0.0),
                to: (0.125, 99999.0),
                depart: 604_800.5,
                low_priority: true,
            },
        ] {
            let line = req.to_line();
            assert!(line.contains("\"v\":1"), "explicit version: {line}");
            let back = WireRequest::parse(&line).expect("rendered request parses");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        assert!(parse_request("not json").unwrap_err().contains("JSON"));
        assert!(parse_request(r#"{"id": 1}"#).unwrap_err().contains("from"));
        assert!(
            parse_request(r#"{"id": 1, "from": [1], "to": [2, 3], "depart": 0}"#)
                .unwrap_err()
                .contains("[x, y]")
        );
        assert!(
            parse_request(r#"{"id": -2, "from": [1, 2], "to": [2, 3], "depart": 0}"#)
                .unwrap_err()
                .contains("non-negative"),
        );
        assert!(
            parse_request(r#"{"id": 1.5, "from": [1, 2], "to": [2, 3], "depart": 0}"#)
                .unwrap_err()
                .contains("integer"),
        );
    }

    #[test]
    fn depart_validation_rejects_pre_epoch_and_non_finite() {
        assert!(validate_depart(0.0).is_ok(), "the epoch itself is valid");
        assert!(validate_depart(604_800.0).is_ok());
        let err = validate_depart(-1.0).expect_err("pre-epoch");
        assert!(err.contains("before the dataset epoch"), "got: {err}");
        assert!(validate_depart(f64::NAN).is_err());
        assert!(validate_depart(f64::INFINITY).is_err());
    }

    #[test]
    fn responses_are_valid_json() {
        let ok = render_ok(3, 412.51, false);
        let v = json::parse(&ok).expect("ok line parses");
        assert_eq!(
            json::obj_field(&v, "eta_s").expect("eta_s"),
            &Value::Num("412.5".into())
        );
        assert_eq!(
            json::obj_field(&v, "degraded").expect("degraded"),
            &Value::Bool(false)
        );
        let err = render_error(Some(9), "queue full (capacity 2)");
        let v = json::parse(&err).expect("error line parses");
        assert_eq!(
            json::obj_field(&v, "id").expect("id"),
            &Value::Num("9".into())
        );
        let err = render_error(None, "bad \"quoted\" input");
        let v = json::parse(&err).expect("escaped error parses");
        assert_eq!(json::obj_field(&v, "id").expect("id"), &Value::Null);
    }

    #[test]
    fn response_codec_round_trips_both_encodings() {
        // Ok frame: flat, bit-identical to the historical renderer.
        let ok = WireResponse::Ok {
            id: 3,
            eta_seconds: 412.5,
            degraded: false,
        };
        assert_eq!(ok.to_line(), render_ok(3, 412.5, false));
        assert_eq!(WireResponse::parse(&ok.to_line()).expect("parses"), ok);

        // Engine-level error: flat, classified back to its typed kind.
        let err = WireResponse::Err {
            id: Some(9),
            error: (&ServeError::QueueFull { capacity: 2 }).into(),
        };
        assert_eq!(
            err.to_line(),
            render_error(Some(9), "queue full (capacity 2)")
        );
        match WireResponse::parse(&err.to_line()).expect("parses") {
            WireResponse::Err { id, error } => {
                assert_eq!(id, Some(9));
                assert_eq!(error.kind, ErrorKind::QueueFull);
            }
            other => panic!("expected error frame, got {other:?}"),
        }

        // Protocol-level error: structured typed frame.
        let reject = WireResponse::Err {
            id: None,
            error: WireError::protocol(ErrorKind::UnsupportedVersion, "v: not supported"),
        };
        let line = reject.to_line();
        assert!(
            line.contains("\"kind\":\"unsupported_version\""),
            "structured frame: {line}"
        );
        assert_eq!(WireResponse::parse(&line).expect("parses"), reject);
    }

    #[test]
    fn every_serve_error_keeps_its_flat_legacy_encoding() {
        for e in [
            ServeError::QueueFull { capacity: 256 },
            ServeError::ShuttingDown,
            ServeError::WorkerCrashed,
            ServeError::DeadlineExceeded,
            ServeError::ShedLow,
            ServeError::Overloaded,
        ] {
            let frame = WireResponse::Err {
                id: Some(1),
                error: (&e).into(),
            };
            assert_eq!(
                frame.to_line(),
                render_error(Some(1), &e.to_string()),
                "{e:?} must stay bit-identical to the unversioned encoding"
            );
            // And the classification recovers the same kind.
            match WireResponse::parse(&frame.to_line()).expect("parses") {
                WireResponse::Err { error, .. } => {
                    assert_eq!(error.kind, ErrorKind::of_serve_error(&e))
                }
                other => panic!("expected error frame, got {other:?}"),
            }
        }
    }

    #[test]
    fn flat_classification_distinguishes_request_and_model_errors() {
        assert_eq!(
            ErrorKind::classify_flat("bad request JSON: trailing characters at byte 3"),
            ErrorKind::BadRequest
        );
        assert_eq!(
            ErrorKind::classify_flat("depart: -1 is before the dataset epoch (t >= 0)"),
            ErrorKind::BadRequest
        );
        assert_eq!(
            ErrorKind::classify_flat("origin or destination cannot be matched to the road network"),
            ErrorKind::Model
        );
    }

    #[test]
    fn error_kind_names_round_trip() {
        for kind in [
            ErrorKind::BadRequest,
            ErrorKind::Model,
            ErrorKind::QueueFull,
            ErrorKind::ShuttingDown,
            ErrorKind::WorkerCrashed,
            ErrorKind::DeadlineExceeded,
            ErrorKind::ShedLow,
            ErrorKind::Overloaded,
            ErrorKind::UnsupportedVersion,
            ErrorKind::FrameTooLarge,
            ErrorKind::InFlightLimit,
            ErrorKind::ConnectionLimit,
        ] {
            assert_eq!(ErrorKind::from_name(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::from_name("nope"), None);
    }
}

//! The newline-delimited JSON wire protocol of `deepod serve`.
//!
//! One request per line on stdin:
//!
//! ```text
//! {"id": 1, "from": [1200.0, 3400.0], "to": [4100.0, 800.0], "depart": 3600.0}
//! ```
//!
//! An optional `"priority": "low"` field tags best-effort traffic that the
//! degradation ladder sheds first under load (`"normal"`, the default, is
//! also accepted explicitly).
//!
//! One response per line on stdout, in input order:
//!
//! ```text
//! {"id":1,"eta_s":412.5,"degraded":false}     (answered)
//! {"id":2,"error":"queue full (capacity 256)"} (rejected or failed)
//! ```
//!
//! `id` is an opaque correlation token chosen by the client; the server
//! echoes it verbatim. Coordinates are meters in the dataset's plane,
//! `depart` is seconds since the dataset epoch.

use serde::json::{self, Value};

/// A parsed request line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Origin coordinates (meters).
    pub from: (f64, f64),
    /// Destination coordinates (meters).
    pub to: (f64, f64),
    /// Departure time (seconds since the dataset epoch).
    pub depart: f64,
    /// `true` when the client tagged the request `"priority": "low"` —
    /// shed first when the degradation ladder reaches shed-low.
    pub low_priority: bool,
}

fn num_of(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Num(raw) => raw
            .parse::<f64>()
            .map_err(|_| format!("{what}: unparseable number '{raw}'")),
        other => Err(format!("{what}: expected a number, got {other:?}")),
    }
}

fn point_of(v: &Value, what: &str) -> Result<(f64, f64), String> {
    let items = json::expect_arr(v).map_err(|e| format!("{what}: {e}"))?;
    let [x, y] = items else {
        return Err(format!(
            "{what}: expected [x, y], got {} items",
            items.len()
        ));
    };
    Ok((num_of(x, what)?, num_of(y, what)?))
}

/// Parses one request line. Errors are human-readable strings meant to be
/// echoed back on the wire in an error response.
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    let v = json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let id_raw = num_of(json::obj_field(&v, "id").map_err(|e| e.to_string())?, "id")?;
    // Intentional exact check: a JSON id is an integer iff fract() == 0.
    // deepod-lint: allow(float-eq)
    if id_raw < 0.0 || id_raw.fract() != 0.0 {
        return Err(format!("id: expected a non-negative integer, got {id_raw}"));
    }
    let id = id_raw as u64; // deepod-lint: allow(truncating-cast)
    let from = point_of(
        json::obj_field(&v, "from").map_err(|e| e.to_string())?,
        "from",
    )?;
    let to = point_of(json::obj_field(&v, "to").map_err(|e| e.to_string())?, "to")?;
    let depart = num_of(
        json::obj_field(&v, "depart").map_err(|e| e.to_string())?,
        "depart",
    )?;
    // Optional field: absent means normal priority. A present-but-unknown
    // value is an error — a client that *meant* to shed politely should
    // not silently get normal treatment because of a typo.
    let low_priority = match json::obj_field(&v, "priority").ok() {
        None => false,
        Some(Value::Str(p)) if p == "low" => true,
        Some(Value::Str(p)) if p == "normal" => false,
        Some(other) => {
            return Err(format!(
                "priority: expected \"low\" or \"normal\", got {other:?}"
            ))
        }
    };
    Ok(WireRequest {
        id,
        from,
        to,
        depart,
        low_priority,
    })
}

/// Validates a parsed request's departure time against the dataset's
/// time-slot contract: `depart` must be a finite timestamp at or after
/// the dataset epoch (t = 0). Pre-epoch requests are rejected *here*,
/// per request on the wire, instead of being clamped onto slot 0 deep in
/// the feature encoder — a clamped slot would silently answer with the
/// wrong time-of-week conditions (and alias the wrong cache entry).
pub fn validate_depart(depart: f64) -> Result<(), String> {
    if !depart.is_finite() {
        return Err(format!("depart: expected a finite timestamp, got {depart}"));
    }
    if depart < 0.0 {
        return Err(format!(
            "depart: {depart} is before the dataset epoch (t >= 0); \
             pre-epoch times cannot be attributed to a time slot"
        ));
    }
    Ok(())
}

/// Renders a successful response line.
pub fn render_ok(id: u64, eta_seconds: f32, degraded: bool) -> String {
    format!("{{\"id\":{id},\"eta_s\":{eta_seconds:.1},\"degraded\":{degraded}}}")
}

/// Renders an error response line. `id` is `None` when the line could not
/// even be parsed far enough to recover a correlation id.
pub fn render_error(id: Option<u64>, why: &str) -> String {
    let mut out = String::with_capacity(32 + why.len());
    out.push_str("{\"id\":");
    match id {
        Some(id) => {
            use std::fmt::Write as _;
            let _ = write!(out, "{id}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"error\":");
    json::escape_str(why, &mut out);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let w = parse_request(
            r#"{"id": 7, "from": [1200.0, 3400], "to": [4100, 800.5], "depart": 3600.0}"#,
        )
        .expect("valid request");
        assert_eq!(w.id, 7);
        assert_eq!(w.from, (1200.0, 3400.0));
        assert_eq!(w.to, (4100.0, 800.5));
        assert_eq!(w.depart, 3600.0); // deepod-lint: allow(float-eq)
        assert!(!w.low_priority, "absent priority defaults to normal");
    }

    #[test]
    fn parses_priority_tags() {
        let base = r#""from": [1, 2], "to": [3, 4], "depart": 0"#;
        let low =
            parse_request(&format!(r#"{{"id": 1, {base}, "priority": "low"}}"#)).expect("valid");
        assert!(low.low_priority);
        let normal =
            parse_request(&format!(r#"{{"id": 1, {base}, "priority": "normal"}}"#)).expect("valid");
        assert!(!normal.low_priority);
        let err = parse_request(&format!(r#"{{"id": 1, {base}, "priority": "lo"}}"#))
            .expect_err("typo'd priority must not pass silently");
        assert!(err.contains("priority"), "got: {err}");
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        assert!(parse_request("not json").unwrap_err().contains("JSON"));
        assert!(parse_request(r#"{"id": 1}"#).unwrap_err().contains("from"));
        assert!(
            parse_request(r#"{"id": 1, "from": [1], "to": [2, 3], "depart": 0}"#)
                .unwrap_err()
                .contains("[x, y]")
        );
        assert!(
            parse_request(r#"{"id": -2, "from": [1, 2], "to": [2, 3], "depart": 0}"#)
                .unwrap_err()
                .contains("non-negative"),
        );
        assert!(
            parse_request(r#"{"id": 1.5, "from": [1, 2], "to": [2, 3], "depart": 0}"#)
                .unwrap_err()
                .contains("integer"),
        );
    }

    #[test]
    fn depart_validation_rejects_pre_epoch_and_non_finite() {
        assert!(validate_depart(0.0).is_ok(), "the epoch itself is valid");
        assert!(validate_depart(604_800.0).is_ok());
        let err = validate_depart(-1.0).expect_err("pre-epoch");
        assert!(err.contains("before the dataset epoch"), "got: {err}");
        assert!(validate_depart(f64::NAN).is_err());
        assert!(validate_depart(f64::INFINITY).is_err());
    }

    #[test]
    fn responses_are_valid_json() {
        let ok = render_ok(3, 412.51, false);
        let v = json::parse(&ok).expect("ok line parses");
        assert_eq!(
            json::obj_field(&v, "eta_s").expect("eta_s"),
            &Value::Num("412.5".into())
        );
        assert_eq!(
            json::obj_field(&v, "degraded").expect("degraded"),
            &Value::Bool(false)
        );
        let err = render_error(Some(9), "queue full (capacity 2)");
        let v = json::parse(&err).expect("error line parses");
        assert_eq!(
            json::obj_field(&v, "id").expect("id"),
            &Value::Num("9".into())
        );
        let err = render_error(None, "bad \"quoted\" input");
        let v = json::parse(&err).expect("escaped error parses");
        assert_eq!(json::obj_field(&v, "id").expect("id"), &Value::Null);
    }
}

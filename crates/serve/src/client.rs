//! Blocking TCP client for the `deepod serve` wire protocol — the single
//! client implementation shared by `deepod bench-serve` and the
//! integration tests, so there is exactly one encoder/decoder on the
//! client side of the wire ([`crate::protocol`] is the other half).

use crate::protocol::{WireRequest, WireResponse};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a `deepod serve --listen` server.
///
/// Requests and responses are matched by correlation id; the server
/// answers each client's frames in submission order, so the simple
/// lock-step [`ServeClient::send_batch`] never deadlocks as long as the
/// batch fits the server's per-connection in-flight cap. For pipelined
/// (open-loop) traffic, [`ServeClient::split`] hands out independent
/// sender and receiver halves.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// The write half of a split [`ServeClient`].
pub struct ClientSender {
    writer: BufWriter<TcpStream>,
}

/// The read half of a split [`ServeClient`].
pub struct ClientReceiver {
    reader: BufReader<TcpStream>,
}

fn write_frame(writer: &mut BufWriter<TcpStream>, req: &WireRequest) -> io::Result<()> {
    let mut line = req.to_line();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn read_frame(reader: &mut BufReader<TcpStream>) -> io::Result<WireResponse> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ));
    }
    WireResponse::parse(line.trim_end()).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

impl ServeClient {
    /// Connects to a serve endpoint (e.g. `"127.0.0.1:7878"`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sets a read timeout for [`ServeClient::recv`]; `None` blocks
    /// forever (the default).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request frame (flushes immediately).
    pub fn send(&mut self, req: &WireRequest) -> io::Result<()> {
        write_frame(&mut self.writer, req)
    }

    /// Receives one response frame. `UnexpectedEof` means the server
    /// closed the connection; `InvalidData` means the frame was not a
    /// valid response.
    pub fn recv(&mut self) -> io::Result<WireResponse> {
        read_frame(&mut self.reader)
    }

    /// Sends every request, then collects exactly one response per
    /// request, in server order. The batch should stay within the
    /// server's per-connection in-flight cap; beyond it the extra
    /// requests come back as typed `in_flight_limit` rejects (still one
    /// response each, so this never hangs).
    pub fn send_batch(&mut self, reqs: &[WireRequest]) -> io::Result<Vec<WireResponse>> {
        for req in reqs {
            let mut line = req.to_line();
            line.push('\n');
            self.writer.write_all(line.as_bytes())?;
        }
        self.writer.flush()?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            out.push(read_frame(&mut self.reader)?);
        }
        Ok(out)
    }

    /// Splits the connection into independent sender and receiver halves
    /// so one thread can pace requests while another drains responses —
    /// the shape an open-loop load generator needs.
    pub fn split(self) -> (ClientSender, ClientReceiver) {
        (
            ClientSender {
                writer: self.writer,
            },
            ClientReceiver {
                reader: self.reader,
            },
        )
    }
}

impl ClientSender {
    /// Sends one request frame (flushes immediately).
    pub fn send(&mut self, req: &WireRequest) -> io::Result<()> {
        write_frame(&mut self.writer, req)
    }

    /// Shuts down the write direction, signalling end-of-input to the
    /// server while leaving the read half open to drain replies.
    pub fn finish(mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)
    }
}

impl ClientReceiver {
    /// Receives one response frame (see [`ServeClient::recv`]).
    pub fn recv(&mut self) -> io::Result<WireResponse> {
        read_frame(&mut self.reader)
    }

    /// Sets a read timeout for [`ClientReceiver::recv`].
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }
}

//! The degradation ladder: queue-depth-driven admission control with
//! hysteresis (DESIGN.md §14).
//!
//! Overload used to be binary — below capacity everything is admitted,
//! at capacity `try_submit` rejects with `QueueFull`. That cliff makes
//! the engine oscillate between "fine" and "shedding everything" with
//! nothing in between. The ladder replaces it with four levels driven by
//! watermarks on the *total* queued depth:
//!
//! ```text
//! depth (pct of capacity):  0 ···· 60% ······ 80% ······ 95% ···· 100%
//! level:               Healthy | Degrade | ShedLow      | Reject
//! ```
//!
//! * **Healthy** — admit everything, answer on the primary backend.
//! * **Degrade** — admit everything, but mark new requests eligible for
//!   the cheap fallback backend (route-tte), trading accuracy for
//!   latency headroom.
//! * **ShedLow** — additionally reject requests tagged low-priority
//!   (`ServeError::ShedLow`).
//! * **Reject** — reject all new requests (`ServeError::Overloaded`);
//!   only work already admitted drains.
//!
//! Transitions *up* (toward Reject) are immediate — overload protection
//! must not lag. Transitions *down* require the depth to clear the
//! watermark by a hysteresis band (10% of capacity) and step one level
//! at a time, so a depth oscillating around a watermark cannot flap the
//! ladder on every observation.
//!
//! The ladder is a pure state machine — no clocks, no locks, no threads —
//! so the whole transition table is unit-testable line by line.

/// Admission level, ordered from least to most degraded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderState {
    /// Admit everything on the primary backend.
    Healthy,
    /// Admit everything; new requests may be answered by the fallback.
    Degrade,
    /// Reject low-priority requests, degrade the rest.
    ShedLow,
    /// Reject all new requests until the queue drains.
    Reject,
}

impl LadderState {
    /// Short name used in logs and metrics labels.
    pub fn as_str(self) -> &'static str {
        match self {
            LadderState::Healthy => "healthy",
            LadderState::Degrade => "degrade",
            LadderState::ShedLow => "shed-low",
            LadderState::Reject => "reject",
        }
    }
}

/// Watermark configuration, in percent of queue capacity.
#[derive(Clone, Copy, Debug)]
pub struct LadderConfig {
    /// Total queue capacity the percentages apply to (all shards).
    pub capacity: usize,
    /// Depth (pct) at or above which new requests become degrade-eligible.
    pub degrade_pct: usize,
    /// Depth (pct) at or above which low-priority requests are shed.
    pub shed_low_pct: usize,
    /// Depth (pct) at or above which everything is rejected.
    pub reject_pct: usize,
    /// Band (pct) the depth must clear *below* a watermark before the
    /// ladder steps back down — the anti-flapping margin.
    pub hysteresis_pct: usize,
}

impl LadderConfig {
    /// The default watermarks for a queue of `capacity` slots:
    /// degrade at 60%, shed-low at 80%, reject at 95%, 10% hysteresis.
    pub fn for_capacity(capacity: usize) -> LadderConfig {
        LadderConfig {
            capacity: capacity.max(1),
            degrade_pct: 60,
            shed_low_pct: 80,
            reject_pct: 95,
            hysteresis_pct: 10,
        }
    }

    /// A watermark in slots: `pct` of capacity, at least one slot so a
    /// tiny queue still has distinct levels where possible.
    fn slots(&self, pct: usize) -> usize {
        (self.capacity.saturating_mul(pct) / 100).max(1)
    }

    /// The up-transition threshold (in slots) for entering `state`.
    fn up_threshold(&self, state: LadderState) -> usize {
        match state {
            LadderState::Healthy => 0,
            LadderState::Degrade => self.slots(self.degrade_pct),
            LadderState::ShedLow => self.slots(self.shed_low_pct),
            LadderState::Reject => self.slots(self.reject_pct),
        }
    }
}

/// The ladder itself: current level plus the watermark table.
#[derive(Clone, Debug)]
pub struct Ladder {
    config: LadderConfig,
    state: LadderState,
}

impl Ladder {
    /// A ladder starting at `Healthy`.
    pub fn new(config: LadderConfig) -> Ladder {
        Ladder {
            config,
            state: LadderState::Healthy,
        }
    }

    /// The current level without observing a new depth.
    pub fn state(&self) -> LadderState {
        self.state
    }

    /// Feeds one queue-depth observation and returns the (possibly
    /// updated) level. Upward transitions jump straight to the highest
    /// crossed watermark; downward transitions require the depth to
    /// clear the watermark by the hysteresis band and step one level at
    /// a time.
    pub fn observe(&mut self, depth: usize) -> LadderState {
        let target = self.level_for(depth);
        if target > self.state {
            self.state = target;
        } else if target < self.state {
            let band = self
                .config
                .capacity
                .saturating_mul(self.config.hysteresis_pct)
                / 100;
            let current_floor = self.config.up_threshold(self.state);
            // Step down only when the depth sits a full band below the
            // watermark that put us at this level.
            if depth.saturating_add(band) < current_floor {
                self.state = match self.state {
                    LadderState::Reject => LadderState::ShedLow,
                    LadderState::ShedLow => LadderState::Degrade,
                    LadderState::Degrade | LadderState::Healthy => LadderState::Healthy,
                };
            }
        }
        self.state
    }

    /// The level a depth maps to with no history (the up-transition map).
    fn level_for(&self, depth: usize) -> LadderState {
        if depth >= self.config.up_threshold(LadderState::Reject) {
            LadderState::Reject
        } else if depth >= self.config.up_threshold(LadderState::ShedLow) {
            LadderState::ShedLow
        } else if depth >= self.config.up_threshold(LadderState::Degrade) {
            LadderState::Degrade
        } else {
            LadderState::Healthy
        }
    }
}

/// Deterministic backoff schedule shared by submit-retry and worker
/// restart (the same shape as `io_guard`'s write retries: short, fixed,
/// reproducible — never randomized, so chaos runs replay identically).
pub const RETRY_BACKOFF_MS: [u64; 4] = [1, 4, 16, 64];

/// Backoff delay before retry attempt `attempt` (0-based); attempts past
/// the table reuse its last entry.
pub fn backoff_ms(attempt: u32) -> u64 {
    let idx = (attempt as usize).min(RETRY_BACKOFF_MS.len() - 1);
    RETRY_BACKOFF_MS.get(idx).copied().unwrap_or(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder100() -> Ladder {
        // capacity 100 → watermarks at depths 60 / 80 / 95, band 10.
        Ladder::new(LadderConfig::for_capacity(100))
    }

    #[test]
    fn watermark_crossings_move_up_immediately() {
        // (depth, expected level after observing it, starting fresh)
        let table: &[(usize, LadderState)] = &[
            (0, LadderState::Healthy),
            (59, LadderState::Healthy),
            (60, LadderState::Degrade),
            (79, LadderState::Degrade),
            (80, LadderState::ShedLow),
            (94, LadderState::ShedLow),
            (95, LadderState::Reject),
            (100, LadderState::Reject),
        ];
        for &(depth, want) in table {
            let mut l = ladder100();
            assert_eq!(l.observe(depth), want, "fresh ladder at depth {depth}");
        }
        // A single observation can jump multiple levels up.
        let mut l = ladder100();
        assert_eq!(l.observe(97), LadderState::Reject, "healthy -> reject");
    }

    #[test]
    fn hysteresis_band_blocks_immediate_downshift() {
        // (observation sequence, expected final level)
        let table: &[(&[usize], LadderState)] = &[
            // Enter Degrade at 60; 55 is inside the band (needs < 50).
            (&[60, 55], LadderState::Degrade),
            (&[60, 50], LadderState::Degrade),
            (&[60, 49], LadderState::Healthy),
            // Enter ShedLow at 80; needs < 70 to step down one level.
            (&[80, 75], LadderState::ShedLow),
            (&[80, 69], LadderState::Degrade),
            // Enter Reject at 95; needs < 85 to step down one level.
            (&[95, 90], LadderState::Reject),
            (&[95, 84], LadderState::ShedLow),
        ];
        for (seq, want) in table {
            let mut l = ladder100();
            let mut got = l.state();
            for &d in *seq {
                got = l.observe(d);
            }
            assert_eq!(got, *want, "sequence {seq:?}");
        }
    }

    #[test]
    fn downshift_steps_one_level_at_a_time() {
        let mut l = ladder100();
        assert_eq!(l.observe(100), LadderState::Reject);
        // Depth collapses to zero: the ladder walks down level by level,
        // one observation per step — never snaps straight to Healthy.
        assert_eq!(l.observe(0), LadderState::ShedLow);
        assert_eq!(l.observe(0), LadderState::Degrade);
        assert_eq!(l.observe(0), LadderState::Healthy);
        assert_eq!(l.observe(0), LadderState::Healthy);
    }

    #[test]
    fn oscillating_trace_around_a_watermark_does_not_flap() {
        // Depth bounces across the Degrade watermark (60) within the
        // hysteresis band: once Degrade is entered it must stay entered —
        // zero transitions back — until the trace truly clears the band.
        let mut l = ladder100();
        l.observe(60);
        assert_eq!(l.state(), LadderState::Degrade);
        let mut transitions = 0;
        let mut prev = l.state();
        for depth in [58, 62, 55, 61, 59, 63, 57, 60, 56, 62] {
            let s = l.observe(depth);
            if s != prev {
                transitions += 1;
                prev = s;
            }
        }
        assert_eq!(transitions, 0, "band-bounded oscillation must not flap");
        assert_eq!(l.state(), LadderState::Degrade);
        // Clearing the band by one slot finally releases the level.
        assert_eq!(l.observe(49), LadderState::Healthy);
    }

    #[test]
    fn tiny_capacity_still_has_a_reject_level() {
        // capacity 1: every watermark clamps to 1 slot — one queued item
        // is already full-on Reject, empty is Healthy (after walking the
        // ladder down).
        let mut l = Ladder::new(LadderConfig::for_capacity(1));
        assert_eq!(l.observe(1), LadderState::Reject);
        l.observe(0);
        l.observe(0);
        assert_eq!(l.observe(0), LadderState::Healthy);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_clamped() {
        assert_eq!(backoff_ms(0), 1);
        assert_eq!(backoff_ms(1), 4);
        assert_eq!(backoff_ms(2), 16);
        assert_eq!(backoff_ms(3), 64);
        assert_eq!(backoff_ms(4), 64, "past the table reuses the last entry");
        assert_eq!(backoff_ms(u32::MAX), 64);
    }
}

//! Property test: [`DeepOdModel::estimate_batch`] is bit-identical to
//! answering the same requests one at a time through the deprecated
//! sequential API, for any thread count and any batch composition
//! (raw / encoded / unmatchable, in any order).
//!
//! This is the contract that lets the serving layer coalesce arbitrary
//! micro-batches without changing a single answer (DESIGN.md §11).

use std::sync::{Arc, OnceLock};

use deepod_core::{
    DeepOdConfig, DeepOdModel, EmbeddingInit, FeatureContext, ModelError, PredictRequest,
};
use deepod_roadnet::{CityProfile, Point};
use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig, OdInput};
use proptest::prelude::*;

struct Fixture {
    ds: Arc<CityDataset>,
    ctx: FeatureContext,
    model: DeepOdModel,
}

/// Built once per test process: dataset synthesis and model construction
/// dominate the runtime, while each proptest case only reshuffles requests.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 40));
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        Fixture {
            ds: Arc::new(ds),
            ctx,
            model,
        }
    })
}

/// Sequential reference: one single-request `estimate_batch` call per
/// request, in order, at one thread — the degenerate batching that any
/// batched/threaded configuration must match bit for bit.
fn sequential_answers(fx: &Fixture, reqs: &[PredictRequest]) -> Vec<Result<f32, ModelError>> {
    reqs.iter()
        .flat_map(|req| {
            fx.model
                .estimate_batch(&fx.ctx, &fx.ds.net, std::slice::from_ref(req), 1)
        })
        .map(|r| r.map(|resp| resp.eta_seconds))
        .collect()
}

/// One request drawn from the fixture: a raw train-order OD, the same OD
/// pre-encoded, or a raw OD far outside the network (unmatchable).
fn request_strategy() -> impl Strategy<Value = PredictRequest> {
    let fx = fixture();
    let n = fx.ds.train.len();
    (0..n, 0..3u8).prop_map(|(i, kind)| {
        let fx = fixture();
        let od = fx.ds.train[i].od;
        match kind {
            0 => PredictRequest::Raw(od),
            1 => {
                let enc = fx
                    .ctx
                    .encode_od(&fx.ds.net, &od)
                    .expect("train ods match the network");
                PredictRequest::Encoded(enc)
            }
            _ => PredictRequest::Raw(OdInput {
                origin: Point::new(-9.9e6, -9.9e6),
                destination: Point::new(9.9e6, 9.9e6),
                ..od
            }),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batched_matches_sequential_bit_for_bit(
        reqs in proptest::collection::vec(request_strategy(), 1..12),
        threads in 1..5usize,
    ) {
        let fx = fixture();
        let batched = fx.model.estimate_batch(&fx.ctx, &fx.ds.net, &reqs, threads);
        let sequential = sequential_answers(fx, &reqs);
        prop_assert_eq!(batched.len(), reqs.len());
        for (got, want) in batched.iter().zip(&sequential) {
            match (got, want) {
                (Ok(resp), Ok(eta)) => {
                    prop_assert_eq!(resp.eta_seconds.to_bits(), eta.to_bits());
                }
                (Err(e), Err(w)) => prop_assert_eq!(e, w),
                (got, want) => prop_assert!(
                    false,
                    "batched {:?} disagrees with sequential {:?}",
                    got,
                    want
                ),
            }
        }
    }
}

#[test]
fn empty_batch_yields_empty_answers() {
    let fx = fixture();
    assert!(fx
        .model
        .estimate_batch(&fx.ctx, &fx.ds.net, &[], 4)
        .is_empty());
}

//! RAII timing spans: measure a scope's wall time into a histogram and an
//! optional trace event, without touching any deterministic output.

use super::registry;

/// Times a scope from construction to drop. On drop the duration lands in
/// the histogram named by `metric` (which must end in `_ms` so the
/// registry picks duration buckets) and, when [`super::Level::Trace`] is
/// enabled, in a trace event under `target`.
///
/// ```
/// # use deepod_core::obs::TimingSpan;
/// {
///     let _span = TimingSpan::start("checkpoint", "checkpoint.save_ms");
///     // ... timed work ...
/// } // recorded here
/// ```
pub struct TimingSpan {
    target: &'static str,
    metric: &'static str,
    // deepod-lint: allow(nondeterminism) — wall time is observability-only
    start: std::time::Instant,
}

impl TimingSpan {
    /// Starts the clock for `metric` (emitted under `target` at trace).
    pub fn start(target: &'static str, metric: &'static str) -> TimingSpan {
        debug_assert!(
            metric.ends_with("_ms"),
            "timing span metrics are histograms of milliseconds"
        );
        TimingSpan {
            target,
            metric,
            // deepod-lint: allow(nondeterminism)
            start: std::time::Instant::now(),
        }
    }

    /// Milliseconds elapsed so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

impl Drop for TimingSpan {
    fn drop(&mut self) {
        let ms = self.elapsed_ms();
        registry::observe(self.metric, ms);
        super::trace(self.target, self.metric, &[("ms", ms.into())]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_one_histogram_observation_per_drop() {
        let before = registry::snapshot()
            .histograms
            .get("test.span.work_ms")
            .map_or(0, |h| h.count);
        {
            let span = TimingSpan::start("test", "test.span.work_ms");
            assert!(span.elapsed_ms() >= 0.0);
        }
        let after = registry::snapshot().histograms["test.span.work_ms"].count;
        assert_eq!(after, before + 1);
    }
}

//! Zero-dependency structured observability: leveled events, a
//! process-wide metrics registry, and RAII timing spans (DESIGN.md §9).
//!
//! # Events
//!
//! An event is a level, a target (the subsystem emitting it), a message,
//! and key=value fields. Events render to **stderr** — stdout stays
//! reserved for command output — in one of two formats selected by
//! [`set_format`] / `DEEPOD_LOG_FORMAT` / the CLI's `--log-format`:
//!
//! ```text
//! [warn] cli: model load failed path=m.json why="bad magic"      (text)
//! {"level":"warn","target":"cli","msg":"model load failed",...}  (json)
//! ```
//!
//! Every line is written under one process-wide writer lock, so events
//! from parallel workers never interleave mid-line.
//!
//! The threshold (`off`, `error`, `warn`, `info`, `debug`, `trace`;
//! default `warn`) is installed programmatically: binaries resolve
//! `DEEPOD_LOG` into a [`crate::RuntimeConfig`] and call [`set_max_level`]
//! — library code never reads the environment. [`raise_max_level`] lets a
//! flag like `--verbose` widen the *default* without overriding an
//! explicit `DEEPOD_LOG` choice.
//!
//! # Determinism carve-out
//!
//! Observability must never perturb results: timestamps and durations
//! exist only in event lines and in registry histogram/gauge values, and
//! none of those feed a checksummed or bit-compared artifact. Registry
//! **counters** are held to a stricter contract — pure functions of
//! `(input, seed)`, invariant under the thread count — which is what lets
//! the integration suite diff them across `threads=1` and `threads=N`.
//!
//! The tensor layer (which `deepod-core` depends on, not the reverse)
//! reports through the narrow sink in `deepod_tensor::telemetry`;
//! [`ensure_init`] installs the forwarder into this registry.

pub mod registry;
pub mod span;

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Mutex;

pub use registry::{flush_to_path, snapshot, MetricsSnapshot};
pub use span::TimingSpan;

/// Event severity, ordered from most to least urgent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed; the process is degrading or aborting.
    Error = 1,
    /// Something unexpected that the process works around (default gate).
    Warn = 2,
    /// Coarse progress: epochs, evals, artifact writes.
    Info = 3,
    /// Fine-grained progress: steps, retries, span timings.
    Debug = 4,
    /// Everything, including per-span RAII timer drops.
    Trace = 5,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `DEEPOD_LOG` value. `None` for an unrecognized string;
    /// `Some(None)` means logging is explicitly `off`.
    pub fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// Wire format for event lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-oriented `[level] target: msg k=v` lines.
    Text,
    /// One JSON object per line (machine-parseable; golden-tested).
    Json,
}

impl LogFormat {
    /// Parses a `--log-format` / `DEEPOD_LOG_FORMAT` value.
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s.trim().to_ascii_lowercase().as_str() {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// A field value attached to an event. Constructed via `From` impls so
/// call sites read `("step", step.into())`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Float field (rendered `null` in JSON when non-finite).
    F64(f64),
    /// Boolean field.
    Bool(bool),
    /// String field (escaped in JSON, quoted in text when it has spaces).
    Str(String),
}

macro_rules! value_from {
    ($($t:ty => $variant:ident via $conv:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::$variant(v as $conv)
            }
        }
    )*};
}

value_from!(
    u32 => U64 via u64,
    usize => U64 via u64,
    i32 => I64 via i64,
);

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

// ---- process-wide configuration -------------------------------------------

/// `MAX_LEVEL` encoding: 0 = off, 1..=5 = `Level`, `UNINIT` = not yet
/// initialized (first use installs the default `warn` gate).
const UNINIT: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
/// Whether the level came from [`set_max_level`] (explicit choices win
/// over [`raise_max_level`]).
static LEVEL_EXPLICIT: AtomicBool = AtomicBool::new(false);
/// 0 = text, 1 = json.
static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Idempotent initialization: installs the tensor-layer telemetry bridge
/// and the default `warn` gate (non-explicit, so [`raise_max_level`] can
/// widen it). Called lazily by every entry point; binaries that want a
/// different threshold or format apply a `crate::RuntimeConfig` right
/// after startup, which calls [`set_max_level`] / [`set_format`].
pub fn ensure_init() {
    if MAX_LEVEL.load(Ordering::Acquire) != UNINIT {
        return;
    }
    struct Bridge;
    impl deepod_tensor::telemetry::TelemetrySink for Bridge {
        fn gauge_set(&self, name: &'static str, value: f64) {
            registry::gauge_set(name, value);
        }
        fn observe(&self, name: &'static str, value: f64) {
            registry::observe(name, value);
        }
    }
    static BRIDGE: Bridge = Bridge;
    deepod_tensor::telemetry::install(&BRIDGE);

    LEVEL_EXPLICIT.store(false, Ordering::Release);
    MAX_LEVEL.store(Level::Warn as u8, Ordering::Release);
}

/// Eagerly materializes the tensor-layer parallel telemetry keys. The
/// emitting code lives in `deepod-tensor` (behind the sink bridge) and
/// cannot see the registry, so the registration lives here. Called once
/// per process from `RuntimeConfig::apply` — deliberately *not* from
/// [`ensure_init`], which runs inside the registry's own lazy init.
pub fn register_parallel_metrics() {
    registry::register_gauge("parallel.spans_last");
    registry::register_histogram("parallel.span_size");
    registry::register_histogram("parallel.worker_wall_ms");
}

/// Whether events at `level` would currently be written.
pub fn enabled(level: Level) -> bool {
    ensure_init();
    level as u8 <= MAX_LEVEL.load(Ordering::Acquire)
}

/// Programmatic override of the level gate (`None` = off). Counts as
/// explicit: later [`raise_max_level`] calls will not widen it.
pub fn set_max_level(level: Option<Level>) {
    ensure_init();
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Release);
    LEVEL_EXPLICIT.store(true, Ordering::Release);
}

/// Widens the *default* gate to at least `level` — used by `--verbose` so
/// progress events show without clobbering an explicit `DEEPOD_LOG`.
pub fn raise_max_level(level: Level) {
    ensure_init();
    if !LEVEL_EXPLICIT.load(Ordering::Acquire) && MAX_LEVEL.load(Ordering::Acquire) < level as u8 {
        MAX_LEVEL.store(level as u8, Ordering::Release);
    }
}

/// Selects the event wire format.
pub fn set_format(format: LogFormat) {
    FORMAT.store(
        match format {
            LogFormat::Text => 0,
            LogFormat::Json => 1,
        },
        Ordering::Release,
    );
}

/// The currently selected event wire format.
pub fn format() -> LogFormat {
    if FORMAT.load(Ordering::Acquire) == 1 {
        LogFormat::Json
    } else {
        LogFormat::Text
    }
}

/// Milliseconds since the first observability call in this process. Used
/// only to order event lines for humans — never checksummed or compared.
fn elapsed_ms() -> f64 {
    use std::sync::OnceLock;
    // deepod-lint: allow(nondeterminism) — observability-only clock
    static START: OnceLock<std::time::Instant> = OnceLock::new();
    // deepod-lint: allow(nondeterminism)
    let start = START.get_or_init(std::time::Instant::now);
    start.elapsed().as_secs_f64() * 1e3
}

// ---- emission --------------------------------------------------------------

/// Emits one structured event if `level` passes the gate. The line is
/// formatted off-lock, then written to stderr under the single process-wide
/// writer lock so parallel workers cannot interleave partial lines.
pub fn emit(level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let line = match format() {
        LogFormat::Text => format_text(level, target, msg, fields),
        LogFormat::Json => format_json(level, target, msg, fields),
    };
    static WRITER: Mutex<()> = Mutex::new(());
    // A poisoned writer lock only means another thread panicked while
    // holding it; the lock itself is stateless, so keep writing.
    let _guard = WRITER.lock().unwrap_or_else(|p| p.into_inner());
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

/// [`emit`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, Value)]) {
    emit(Level::Error, target, msg, fields);
}

/// [`emit`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, Value)]) {
    emit(Level::Warn, target, msg, fields);
}

/// [`emit`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, Value)]) {
    emit(Level::Info, target, msg, fields);
}

/// [`emit`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, Value)]) {
    emit(Level::Debug, target, msg, fields);
}

/// [`emit`] at [`Level::Trace`].
pub fn trace(target: &str, msg: &str, fields: &[(&str, Value)]) {
    emit(Level::Trace, target, msg, fields);
}

fn format_text(level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("[{}] {target}: {msg}", level.name());
    for (key, value) in fields {
        out.push(' ');
        out.push_str(key);
        out.push('=');
        match value {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Str(s) if s.contains([' ', '=', '"']) => {
                let _ = write!(out, "{s:?}");
            }
            Value::Str(s) => out.push_str(s),
        }
    }
    out
}

fn format_json(level: Level, target: &str, msg: &str, fields: &[(&str, Value)]) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"level\":");
    serde::json::escape_str(level.name(), &mut out);
    out.push_str(",\"target\":");
    serde::json::escape_str(target, &mut out);
    out.push_str(",\"msg\":");
    serde::json::escape_str(msg, &mut out);
    let t = elapsed_ms();
    if t.is_finite() {
        use std::fmt::Write as _;
        let _ = write!(out, ",\"t_ms\":{t:.3}");
    }
    if !fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            serde::json::escape_str(key, &mut out);
            out.push(':');
            json_value(value, &mut out);
        }
        out.push('}');
    }
    out.push('}');
    out
}

fn json_value(value: &Value, out: &mut String) {
    use std::fmt::Write as _;
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        // JSON has no NaN/Inf; mirror the vendored serde facade's `null`.
        Value::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => serde::json::escape_str(s, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_accepts_names_and_off() {
        assert_eq!(Level::parse("warn"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("TRACE"), Some(Some(Level::Trace)));
        assert_eq!(Level::parse(" off "), Some(None));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn format_parse_accepts_both_formats() {
        assert_eq!(LogFormat::parse("text"), Some(LogFormat::Text));
        assert_eq!(LogFormat::parse("JSON"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("yaml"), None);
    }

    #[test]
    fn json_lines_parse_and_carry_fields() {
        let line = format_json(
            Level::Warn,
            "cli",
            "model \"load\" failed",
            &[
                ("step", 7usize.into()),
                ("mae", 12.5f32.into()),
                ("path", "a b".into()),
                ("nan", f64::NAN.into()),
                ("ok", false.into()),
            ],
        );
        let v = serde::json::parse(&line).expect("event line must be valid JSON");
        let field = |name: &str| serde::json::obj_field(&v, name).expect(name).clone();
        assert_eq!(field("level"), serde::json::Value::Str("warn".into()));
        assert_eq!(
            field("msg"),
            serde::json::Value::Str("model \"load\" failed".into())
        );
        let fields = field("fields");
        let sub = |name: &str| serde::json::obj_field(&fields, name).expect(name).clone();
        assert_eq!(sub("step"), serde::json::Value::Num("7".into()));
        assert_eq!(sub("path"), serde::json::Value::Str("a b".into()));
        assert_eq!(sub("nan"), serde::json::Value::Null);
        assert_eq!(sub("ok"), serde::json::Value::Bool(false));
    }

    #[test]
    fn text_lines_quote_awkward_strings() {
        let line = format_text(
            Level::Info,
            "train",
            "epoch done",
            &[("loss", 1.25f64.into()), ("note", "has space".into())],
        );
        assert_eq!(
            line,
            "[info] train: epoch done loss=1.25 note=\"has space\""
        );
    }

    // The level gate itself (DEEPOD_LOG wiring, default warn, --verbose
    // raise) is process-global state, so it is exercised end-to-end by the
    // CLI-driving integration suite (crates/cli/tests/observability.rs)
    // where each case owns a fresh process.
}

//! Process-wide metrics registry: counters, gauges, fixed-bucket
//! histograms, and indexed series, flushed through `io_guard` as a
//! checksummed `metrics.json` artifact.
//!
//! # Determinism contract (DESIGN.md §9)
//!
//! * **Counters** are progress counts — pure functions of `(input, seed)`
//!   and invariant under the thread count. The integration suite diffs the
//!   full counter map across `threads=1` and `threads=N` runs.
//! * **Gauges / histograms** may carry wall-clock durations, byte sizes,
//!   and fan-out shapes: anything useful for diagnosis, no invariance
//!   promised.
//! * **Series** are `(index, value)` curves (per-epoch loss, per-eval val
//!   MAE) — deterministic for a fixed `(seed, threads)` pair but, like the
//!   losses themselves, not across thread counts.
//!
//! All maps are `BTreeMap`s so snapshots serialize in one canonical order.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use crate::io_guard::{self, IoGuardError};

/// Histogram bucket bounds for duration metrics (`*_ms`), in milliseconds.
const MS_BOUNDS: &[f64] = &[
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
];

/// Histogram bucket bounds for size metrics (`*_bytes`), in bytes.
const BYTES_BOUNDS: &[f64] = &[
    256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
];

/// Histogram bucket bounds for everything else (dimensionless values such
/// as gradient norms or span sizes).
const GENERIC_BOUNDS: &[f64] = &[0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0, 1000.0, 10000.0];

/// Picks bucket bounds from the metric-name suffix, so call sites never
/// configure buckets: `*_ms` → durations, `*_bytes` → sizes, else generic.
fn bounds_for(name: &str) -> &'static [f64] {
    if name.ends_with("_ms") {
        MS_BOUNDS
    } else if name.ends_with("_bytes") {
        BYTES_BOUNDS
    } else {
        GENERIC_BOUNDS
    }
}

/// One histogram's state: cumulative bucket counts plus summary stats.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets (ascending); an implicit
    /// overflow bucket follows, so `counts.len() == bounds.len() + 1`.
    pub bounds: Vec<f64>,
    /// Observations per bucket (last entry = overflow).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    fn new(bounds: &'static [f64]) -> Self {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        // In-bounds by construction (`counts.len() == bounds.len() + 1`),
        // but checked anyway: a histogram deserialized from a hand-edited
        // snapshot with mismatched lengths must not panic the serving
        // thread that observes into it.
        if let Some(c) = self.counts.get_mut(slot) {
            *c += 1;
        }
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }
}

/// One point of an indexed series (`index` = epoch, step, ...).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Position of the point on the series' axis.
    pub index: u64,
    /// Observed value at that position.
    pub value: f64,
}

/// A point-in-time copy of the whole registry — what `metrics.json` holds.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic, thread-invariant progress counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins instantaneous values.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket distributions (durations, sizes, norms).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Indexed curves (per-epoch loss, per-eval val MAE).
    pub series: BTreeMap<String, Vec<SeriesPoint>>,
}

fn registry() -> &'static Mutex<MetricsSnapshot> {
    static REG: OnceLock<Mutex<MetricsSnapshot>> = OnceLock::new();
    REG.get_or_init(|| {
        // First registry touch also wires the tensor-layer sink.
        super::ensure_init();
        Mutex::new(MetricsSnapshot::default())
    })
}

fn with<R>(f: impl FnOnce(&mut MetricsSnapshot) -> R) -> R {
    // Poisoning only marks a panic elsewhere; the maps stay valid.
    let mut inner = registry().lock().unwrap_or_else(|p| p.into_inner());
    f(&mut inner)
}

/// Adds `delta` to a counter, creating it at zero first. Passing
/// `delta = 0` is meaningful: it materializes the key so downstream
/// consumers can distinguish "never happened" from "not instrumented".
pub fn counter_add(name: &str, delta: u64) {
    with(|r| {
        *r.counters.entry(name.to_string()).or_insert(0) += delta;
    });
}

/// Increments a counter by one.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Sets a gauge to an absolute value (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    with(|r| {
        r.gauges.insert(name.to_string(), value);
    });
}

/// Records one observation into the named histogram; buckets are chosen
/// from the name suffix (see [`bounds_for`]).
pub fn observe(name: &str, value: f64) {
    with(|r| {
        r.histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramSnapshot::new(bounds_for(name)))
            .observe(value);
    });
}

/// Appends an `(index, value)` point to the named series.
pub fn series_push(name: &str, index: u64, value: f64) {
    with(|r| {
        r.series
            .entry(name.to_string())
            .or_default()
            .push(SeriesPoint { index, value });
    });
}

/// Eagerly materializes a gauge at `0.0` (no-op if it already exists),
/// so snapshots carry the key before the first real write. The gauge
/// analogue of `counter_add(name, 0)`.
pub fn register_gauge(name: &str) {
    with(|r| {
        r.gauges.entry(name.to_string()).or_insert(0.0);
    });
}

/// Eagerly materializes an *empty* histogram with the name-derived
/// buckets — unlike `observe(name, 0.0)`, no spurious sample is added.
pub fn register_histogram(name: &str) {
    with(|r| {
        r.histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramSnapshot::new(bounds_for(name)));
    });
}

/// Eagerly materializes an empty series.
pub fn register_series(name: &str) {
    with(|r| {
        r.series.entry(name.to_string()).or_default();
    });
}

/// A consistent copy of the registry at this instant.
pub fn snapshot() -> MetricsSnapshot {
    with(|r| r.clone())
}

/// Serializes a snapshot and writes it through [`io_guard`] as a
/// checksummed artifact (`payload ‖ DPODSUM1 footer`), so a `metrics.json`
/// survives the same corruption checks as a checkpoint.
pub fn flush_to_path(path: &Path) -> Result<(), IoGuardError> {
    let json = snapshot().to_json();
    io_guard::write_checksummed(path, json.as_bytes())
}

// ---- JSON ------------------------------------------------------------------
//
// The vendored serde facade serializes maps as [key, value] pair arrays;
// metrics.json is a user-facing artifact, so the snapshot hand-writes
// plain JSON objects instead and parses them back off `serde::json`'s
// value model.

fn json_f64(value: f64, out: &mut String) {
    use std::fmt::Write as _;
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

fn json_map<V>(
    map: &BTreeMap<String, V>,
    out: &mut String,
    mut write_value: impl FnMut(&V, &mut String),
) {
    out.push('{');
    for (i, (key, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        serde::json::escape_str(key, out);
        out.push(':');
        write_value(value, out);
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Renders the snapshot as a canonical (sorted-key) JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":");
        json_map(&self.counters, &mut out, |v, out| {
            let _ = write!(out, "{v}");
        });
        out.push_str(",\"gauges\":");
        json_map(&self.gauges, &mut out, |v, out| json_f64(*v, out));
        out.push_str(",\"histograms\":");
        json_map(&self.histograms, &mut out, |h, out| {
            out.push_str("{\"bounds\":[");
            for (i, b) in h.bounds.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_f64(*b, out);
            }
            out.push_str("],\"counts\":[");
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(out, "],\"count\":{},\"sum\":", h.count);
            json_f64(h.sum, out);
            out.push_str(",\"min\":");
            json_f64(h.min, out);
            out.push_str(",\"max\":");
            json_f64(h.max, out);
            out.push('}');
        });
        out.push_str(",\"series\":");
        json_map(&self.series, &mut out, |points, out| {
            out.push('[');
            for (i, p) in points.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"index\":{},\"value\":", p.index);
                json_f64(p.value, out);
                out.push('}');
            }
            out.push(']');
        });
        out.push('}');
        out
    }

    /// Parses a [`MetricsSnapshot::to_json`] document back into a snapshot.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, serde::json::Error> {
        use serde::json::{expect_arr, obj_field, Error, Value};

        fn as_u64(v: &Value) -> Result<u64, Error> {
            match v {
                Value::Num(s) => s
                    .parse::<u64>()
                    .map_err(|_| Error::msg(format!("bad count `{s}`"))),
                other => Err(Error::msg(format!("expected integer, got {other:?}"))),
            }
        }

        fn as_f64(v: &Value) -> Result<f64, Error> {
            match v {
                Value::Num(s) => s
                    .parse::<f64>()
                    .map_err(|_| Error::msg(format!("bad float `{s}`"))),
                Value::Null => Ok(f64::NAN),
                other => Err(Error::msg(format!("expected number, got {other:?}"))),
            }
        }

        fn entries(v: &Value, section: &str) -> Result<Vec<(String, Value)>, Error> {
            match v {
                Value::Obj(pairs) => Ok(pairs.clone()),
                other => Err(Error::msg(format!(
                    "expected object for `{section}`, got {other:?}"
                ))),
            }
        }

        let doc = serde::json::parse(text)?;
        let mut snap = MetricsSnapshot::default();
        for (key, value) in entries(obj_field(&doc, "counters")?, "counters")? {
            snap.counters.insert(key, as_u64(&value)?);
        }
        for (key, value) in entries(obj_field(&doc, "gauges")?, "gauges")? {
            snap.gauges.insert(key, as_f64(&value)?);
        }
        for (key, value) in entries(obj_field(&doc, "histograms")?, "histograms")? {
            let hist = HistogramSnapshot {
                bounds: expect_arr(obj_field(&value, "bounds")?)?
                    .iter()
                    .map(as_f64)
                    .collect::<Result<_, _>>()?,
                counts: expect_arr(obj_field(&value, "counts")?)?
                    .iter()
                    .map(as_u64)
                    .collect::<Result<_, _>>()?,
                count: as_u64(obj_field(&value, "count")?)?,
                sum: as_f64(obj_field(&value, "sum")?)?,
                min: as_f64(obj_field(&value, "min")?)?,
                max: as_f64(obj_field(&value, "max")?)?,
            };
            snap.histograms.insert(key, hist);
        }
        for (key, value) in entries(obj_field(&doc, "series")?, "series")? {
            let points = expect_arr(&value)?
                .iter()
                .map(|p| {
                    Ok(SeriesPoint {
                        index: as_u64(obj_field(p, "index")?)?,
                        value: as_f64(obj_field(p, "value")?)?,
                    })
                })
                .collect::<Result<Vec<_>, Error>>()?;
            snap.series.insert(key, points);
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and unit tests share one process, so
    // every test uses metric names under its own `test.<case>.` prefix.

    #[test]
    fn counters_accumulate_and_zero_adds_materialize() {
        counter_add("test.acc.hits", 0);
        counter_inc("test.acc.hits");
        counter_add("test.acc.hits", 2);
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.acc.hits"), Some(&3));
        // The zero-delta idiom alone must still create the key.
        counter_add("test.acc.empty", 0);
        assert_eq!(snapshot().counters.get("test.acc.empty"), Some(&0));
    }

    #[test]
    fn gauges_are_last_write_wins() {
        gauge_set("test.gauge.v", 1.0);
        gauge_set("test.gauge.v", -2.5);
        assert_eq!(snapshot().gauges.get("test.gauge.v"), Some(&-2.5));
    }

    #[test]
    fn histograms_bucket_by_name_suffix() {
        observe("test.hist.lat_ms", 0.3);
        observe("test.hist.lat_ms", 9999.0);
        let snap = snapshot();
        let h = &snap.histograms["test.hist.lat_ms"];
        assert_eq!(h.bounds, MS_BOUNDS.to_vec());
        assert_eq!(h.count, 2);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
        assert_eq!(h.counts[h.counts.len() - 1], 1, "9999ms is overflow");
        assert_eq!(h.min, 0.3);
        assert_eq!(h.max, 9999.0);

        observe("test.hist.size_bytes", 512.0);
        assert_eq!(
            snapshot().histograms["test.hist.size_bytes"].bounds,
            BYTES_BOUNDS.to_vec()
        );
        observe("test.hist.norm", 0.7);
        assert_eq!(
            snapshot().histograms["test.hist.norm"].bounds,
            GENERIC_BOUNDS.to_vec()
        );
    }

    #[test]
    fn series_preserve_push_order() {
        series_push("test.series.loss", 0, 3.5);
        series_push("test.series.loss", 1, 2.25);
        let snap = snapshot();
        assert_eq!(
            snap.series["test.series.loss"],
            vec![
                SeriesPoint {
                    index: 0,
                    value: 3.5
                },
                SeriesPoint {
                    index: 1,
                    value: 2.25
                },
            ]
        );
    }

    #[test]
    fn snapshot_json_round_trips() {
        counter_add("test.json.count", 7);
        gauge_set("test.json.gauge", 0.125);
        observe("test.json.t_ms", 1.5);
        series_push("test.json.curve", 3, -0.5);
        let snap = snapshot();
        let text = snap.to_json();
        let back = MetricsSnapshot::from_json(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn flush_writes_a_checksummed_artifact() {
        counter_add("test.flush.marker", 1);
        let dir = std::env::temp_dir().join("deepod_obs_tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("metrics_{}.json", std::process::id()));
        flush_to_path(&path).expect("flush");
        let payload = io_guard::read_checksummed(&path).expect("verifies");
        let text = String::from_utf8(payload).expect("utf-8");
        let back = MetricsSnapshot::from_json(&text).expect("parses");
        assert!(back.counters.contains_key("test.flush.marker"));
        std::fs::remove_file(&path).ok();
    }
}

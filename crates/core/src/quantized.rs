//! Inference-only quantized model: the serving hot path of Alg. 1's
//! `Estimation` (M_O + M_E) with per-row int8 MLP weights and a tape-free
//! forward pass.
//!
//! [`QuantizedModel`] is derived from a trained [`DeepOdModel`] by
//! [`QuantizedModel::from_model`]: the three MLPs on the estimation path
//! (the external encoder's `ocode` MLP, MLP1 producing `code`, and the
//! M_E head) are quantized per row via [`deepod_tensor::kernels`] —
//! int8 weights, f32 accumulation, scale+bias dequantization fused into
//! the epilogue. Everything whose precision the prediction is sensitive
//! to stays f32: embeddings, conv kernels, batch-norm statistics, and the
//! average pool. The forward pass mirrors the graph evaluation of
//! `OdEncoder::encode` / `ExternalFeaturesEncoder::encode` / `Mlp2::
//! forward` operation for operation, but without building an autodiff
//! tape — the per-request `Graph` allocation is the other half of the
//! f32 path's serving cost.
//!
//! Accuracy is *gated*, not assumed: serving selects `--precision int8`
//! only after the eval-side precision gate confirms the MAPE delta vs the
//! f32 model is within the configured bound (see `deepod-eval`'s
//! `precision_gate` and DESIGN.md §12).
//!
//! # Determinism
//!
//! The quantized path inherits the kernel module's contract: every
//! accumulation is ascending-`k` f32 regardless of ISA, so predictions
//! are bit-stable across machines, thread counts, and batch sizes — the
//! same guarantee the f32 path gives, at a different (fixed) set of bits.

use crate::features::{EncodedOd, FeatureContext};
use crate::model::{DeepOdModel, ModelError, PredictRequest, PredictResponse};
use deepod_nn::layers::{BatchNorm2d, Linear, Mlp2};
use deepod_nn::ParamStore;
use deepod_tensor::kernels;
use deepod_tensor::{Activation, Tensor};
use deepod_traffic::NUM_WEATHER_TYPES;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A fully-connected layer with per-row int8 weights in the packed panel
/// layout [`kernels::pack_quantized`] produces; bias stays f32 and is
/// fused into the dequantization epilogue.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct QuantLinear {
    packed: Vec<i8>,
    scales: Vec<f32>,
    bias: Vec<f32>,
    in_dim: usize,
    out_dim: usize,
}

impl QuantLinear {
    fn from_linear(store: &ParamStore, l: &Linear) -> Self {
        let w = store.value(l.w);
        let qr = kernels::quantize_rows(w.as_slice(), l.out_dim, l.in_dim);
        QuantLinear {
            packed: kernels::pack_quantized(&qr),
            scales: qr.scales,
            bias: store.value(l.b).as_slice().to_vec(),
            in_dim: l.in_dim,
            out_dim: l.out_dim,
        }
    }

    fn forward(&self, x: &[f32], act: Activation, out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim, "quantized layer input width");
        kernels::matvec_i8_bias_act(&self.packed, &self.scales, &self.bias, x, act, out);
    }
}

/// The two-layer MLP in quantized form: `y = W2q · ReLU(W1q x + b1) + b2`,
/// matching `Mlp2::forward`'s fused hidden layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct QuantMlp2 {
    l1: QuantLinear,
    l2: QuantLinear,
}

impl QuantMlp2 {
    fn from_mlp(store: &ParamStore, mlp: &Mlp2) -> Self {
        QuantMlp2 {
            l1: QuantLinear::from_linear(store, &mlp.l1),
            l2: QuantLinear::from_linear(store, &mlp.l2),
        }
    }

    fn forward(&self, x: &[f32]) -> Vec<f32> {
        let mut hidden = vec![0.0f32; self.l1.out_dim];
        self.l1.forward(x, Activation::Relu, &mut hidden);
        let mut out = vec![0.0f32; self.l2.out_dim];
        self.l2.forward(&hidden, Activation::Identity, &mut out);
        out
    }
}

/// Frozen batch-norm statistics for eval-mode application, identical in
/// arithmetic to `Graph::batch_norm` followed by `Graph::relu`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BnEval {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    mean: Vec<f32>,
    var: Vec<f32>,
    eps: f32,
}

impl BnEval {
    fn from_bn(store: &ParamStore, bn: &BatchNorm2d) -> Self {
        BnEval {
            gamma: store.value(bn.gamma).as_slice().to_vec(),
            beta: store.value(bn.beta).as_slice().to_vec(),
            mean: bn.running_mean.clone(),
            var: bn.running_var.clone(),
            eps: bn.eps,
        }
    }

    /// In-place `relu(batch_norm(z))` over a `[c, h, w]` tensor. The
    /// normalization matches the graph's eval formula bit for bit; fusing
    /// the ReLU is exact (`max` of the identical value).
    fn apply_relu(&self, z: &mut Tensor) {
        let (c, h, w) = (z.dim(0), z.dim(1), z.dim(2));
        let hw = h * w;
        let data = z.as_mut_slice();
        for ch in 0..c {
            let inv_std = 1.0 / (self.var[ch] + self.eps).sqrt();
            for v in &mut data[ch * hw..(ch + 1) * hw] {
                *v = (self.gamma[ch] * ((*v - self.mean[ch]) * inv_std) + self.beta[ch]).max(0.0);
            }
        }
    }
}

/// The int8 serving artifact: everything `estimate_batch` needs for the
/// estimation path (M_O + M_E), with the three MLPs quantized.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QuantizedModel {
    road_emb: Tensor,
    slot_emb: Tensor,
    k1: Tensor,
    k2: Tensor,
    k3: Tensor,
    bn1: BnEval,
    bn2: BnEval,
    bn3: BnEval,
    ext_mlp: QuantMlp2,
    od_mlp: QuantMlp2,
    head: QuantMlp2,
    dtraf: usize,
    uses_external: bool,
    embeds_time: bool,
    y_mean: f32,
    y_std: f32,
}

impl QuantizedModel {
    /// Quantizes a trained model's estimation path. The source model is
    /// unchanged; the result is a self-contained artifact.
    pub fn from_model(m: &DeepOdModel) -> QuantizedModel {
        let store = &m.store;
        QuantizedModel {
            road_emb: store.value(m.road_emb.table).clone(),
            slot_emb: store.value(m.slot_emb.table).clone(),
            k1: store.value(m.external_enc.k1).clone(),
            k2: store.value(m.external_enc.k2).clone(),
            k3: store.value(m.external_enc.k3).clone(),
            bn1: BnEval::from_bn(store, &m.external_enc.bn1),
            bn2: BnEval::from_bn(store, &m.external_enc.bn2),
            bn3: BnEval::from_bn(store, &m.external_enc.bn3),
            ext_mlp: QuantMlp2::from_mlp(store, &m.external_enc.mlp),
            od_mlp: QuantMlp2::from_mlp(store, &m.od_enc.mlp),
            head: QuantMlp2::from_mlp(store, &m.head),
            dtraf: m.external_enc.dtraf,
            uses_external: m.od_enc.uses_external(),
            embeds_time: m.od_enc.embeds_time(),
            y_mean: m.y_mean,
            y_std: m.y_std,
        }
    }

    /// `ocode`: the external-feature encoding of
    /// `ExternalFeaturesEncoder::encode`, tape-free. Convolutions,
    /// batch norm and pooling are exact f32; only the final MLP is int8.
    fn external_forward(&self, weather_onehot: &[f32], speed_matrix: &Tensor) -> Vec<f32> {
        let mut z = deepod_nn::conv2d_forward(speed_matrix, &self.k1);
        self.bn1.apply_relu(&mut z);
        let mut z = deepod_nn::conv2d_forward(&z, &self.k2);
        self.bn2.apply_relu(&mut z);
        let mut z = deepod_nn::conv2d_forward(&z, &self.k3);
        self.bn3.apply_relu(&mut z);

        // Global average pool per channel, expressed as the same matmul
        // against a constant 1/(h·w) vector the graph path records.
        let (h, w) = (z.dim(1), z.dim(2));
        let zm = z.reshape(&[self.dtraf, h * w]);
        let ones = Tensor::full(&[h * w, 1], 1.0 / (h * w) as f32);
        let pooled = zm.matmul(&ones);

        let mut z8 = Vec::with_capacity(NUM_WEATHER_TYPES + self.dtraf);
        z8.extend_from_slice(weather_onehot);
        z8.extend_from_slice(pooled.as_slice());
        self.ext_mlp.forward(&z8)
    }

    /// Estimation of one pre-encoded OD: `Z⁹ → MLP1 → code → M_E`,
    /// mirroring `OdEncoder::encode` + the head, then de-standardized.
    pub fn eval_encoded(&self, od: &EncodedOd) -> f32 {
        let ds = self.road_emb.dim(1);
        let mut z9 = Vec::with_capacity(self.od_mlp.l1.in_dim);
        z9.extend_from_slice(&self.road_emb.as_slice()[od.origin_edge * ds..][..ds]);
        z9.extend_from_slice(&self.road_emb.as_slice()[od.dest_edge * ds..][..ds]);
        if self.embeds_time {
            let dt = self.slot_emb.dim(1);
            z9.extend_from_slice(&self.slot_emb.as_slice()[od.depart_node * dt..][..dt]);
        } else {
            z9.push(od.depart_raw);
        }
        if self.uses_external {
            let ocode = self.external_forward(&od.weather_onehot, &od.speed_matrix);
            z9.extend_from_slice(&ocode);
        }
        z9.extend_from_slice(&[od.r_start, od.r_end, od.depart_rem]);

        let code = self.od_mlp.forward(&z9);
        let y = self.head.forward(&code)[0];
        (y * self.y_std + self.y_mean).max(0.0)
    }

    fn answer(
        &self,
        ctx: &FeatureContext,
        net: &deepod_roadnet::RoadNetwork,
        req: &PredictRequest,
    ) -> Result<PredictResponse, ModelError> {
        let eta_seconds = match req {
            PredictRequest::Raw(od) => {
                let enc = ctx
                    .encode_od(net, od)
                    .ok_or(ModelError::UnmatchedEndpoints)?;
                self.eval_encoded(&enc)
            }
            PredictRequest::Encoded(enc) => self.eval_encoded(enc),
        };
        Ok(PredictResponse { eta_seconds })
    }

    /// Batched estimation with the same contract as
    /// [`DeepOdModel::estimate_batch`]: per-request failures, contiguous
    /// spans in span order, bit-identical results for any
    /// `(threads, batch size)`. The quantized forward is stateless, so
    /// workers share `self` with no per-span clone at all.
    pub fn estimate_batch(
        &self,
        ctx: &FeatureContext,
        net: &deepod_roadnet::RoadNetwork,
        reqs: &[PredictRequest],
        threads: usize,
    ) -> Vec<Result<PredictResponse, ModelError>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let mut t = deepod_tensor::parallel::resolve_threads(threads)
            .min(reqs.len())
            .max(1);
        if threads == 0 {
            // Default-threaded serving never fans out wider than the
            // machine (same clamp as Tensor::matmul).
            t = t.min(deepod_tensor::parallel::hardware_parallelism());
        }
        deepod_tensor::parallel::map_ranges(reqs.len(), t, |span| {
            // Same out-of-contract degradation as DeepOdModel: an empty
            // slice, not a panic, if a span is ever out of bounds.
            reqs.get(span)
                .unwrap_or(&[])
                .iter()
                .map(|r| self.answer(ctx, net, r))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Serialized artifact size in bytes (reported by serving metrics).
    pub fn size_bytes(&self) -> usize {
        let tensors = [&self.road_emb, &self.slot_emb, &self.k1, &self.k2, &self.k3];
        let f32_bytes: usize = tensors.iter().map(|t| t.numel() * 4).sum();
        let q_bytes = [&self.ext_mlp, &self.od_mlp, &self.head]
            .iter()
            .map(|m| {
                m.l1.packed.len()
                    + m.l2.packed.len()
                    + (m.l1.scales.len() + m.l1.bias.len() + m.l2.scales.len() + m.l2.bias.len())
                        * 4
            })
            .sum::<usize>();
        f32_bytes + q_bytes
    }

    /// Writes the artifact through the checksummed io_guard envelope, so
    /// a torn or corrupt file is rejected at load instead of serving
    /// garbage predictions.
    pub fn save_to(&self, path: &Path) -> Result<(), ModelError> {
        let json =
            serde_json::to_string(self).map_err(|e| ModelError::Serialization(e.to_string()))?;
        crate::io_guard::write_checksummed(path, json.as_bytes())?;
        Ok(())
    }

    /// Loads a checksummed artifact written by [`Self::save_to`].
    pub fn load_from(path: &Path) -> Result<Self, ModelError> {
        let bytes = crate::io_guard::read_checksummed(path)?;
        let text =
            String::from_utf8(bytes).map_err(|e| ModelError::Serialization(e.to_string()))?;
        serde_json::from_str(&text).map_err(|e| ModelError::Serialization(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::EmbeddingInit;
    use crate::config::DeepOdConfig;
    use deepod_roadnet::CityProfile;
    use deepod_traj::{CityDataset, DatasetBuilder, DatasetConfig};

    fn tiny_setup() -> (CityDataset, FeatureContext, DeepOdModel) {
        let ds = DatasetBuilder::build(&DatasetConfig::for_profile(CityProfile::SynthChengdu, 40));
        let cfg = DeepOdConfig {
            init: EmbeddingInit::Random,
            ds: 6,
            dt_dim: 6,
            d1m: 8,
            d2m: 6,
            d3m: 8,
            d4m: 6,
            d5m: 8,
            d6m: 6,
            d7m: 8,
            d9m: 8,
            dh: 8,
            dtraf: 4,
            ..DeepOdConfig::default()
        };
        let ctx = FeatureContext::build(&ds, cfg.slot_seconds).expect("valid slot size");
        let model = DeepOdModel::new(&cfg, &ds, &ctx).expect("valid test config");
        (ds, ctx, model)
    }

    #[test]
    fn quantized_predictions_track_f32_closely() {
        let (ds, ctx, model) = tiny_setup();
        let qm = QuantizedModel::from_model(&model);
        let reqs: Vec<PredictRequest> = ds
            .train
            .iter()
            .take(8)
            .map(|o| PredictRequest::Raw(o.od))
            .collect();
        let f32_out = model.estimate_batch(&ctx, &ds.net, &reqs, 1);
        let i8_out = qm.estimate_batch(&ctx, &ds.net, &reqs, 1);
        assert_eq!(f32_out.len(), i8_out.len());
        for (a, b) in f32_out.iter().zip(&i8_out) {
            let (a, b) = (a.as_ref().expect("matched"), b.as_ref().expect("matched"));
            let rel = (a.eta_seconds - b.eta_seconds).abs() / a.eta_seconds.max(1.0);
            assert!(
                rel < 0.05,
                "int8 drifted {rel:.4} ({} vs {})",
                a.eta_seconds,
                b.eta_seconds
            );
            assert!(b.eta_seconds >= 0.0);
        }
    }

    #[test]
    fn quantized_is_bit_deterministic_across_threads_and_batches() {
        let (ds, ctx, model) = tiny_setup();
        let qm = QuantizedModel::from_model(&model);
        let reqs: Vec<PredictRequest> = ds
            .train
            .iter()
            .take(9)
            .map(|o| PredictRequest::Raw(o.od))
            .collect();
        let serial = qm.estimate_batch(&ctx, &ds.net, &reqs, 1);
        for threads in [2usize, 3, 8] {
            let par = qm.estimate_batch(&ctx, &ds.net, &reqs, threads);
            for (a, b) in serial.iter().zip(&par) {
                let (a, b) = (a.as_ref().expect("matched"), b.as_ref().expect("matched"));
                assert_eq!(a.eta_seconds.to_bits(), b.eta_seconds.to_bits());
            }
        }
        // One-by-one equals batched.
        for (i, req) in reqs.iter().enumerate() {
            let one = qm.estimate_batch(&ctx, &ds.net, std::slice::from_ref(req), 1);
            assert_eq!(
                one[0].as_ref().expect("matched").eta_seconds.to_bits(),
                serial[i].as_ref().expect("matched").eta_seconds.to_bits()
            );
        }
    }

    #[test]
    fn unmatched_endpoints_fail_per_request() {
        let (ds, ctx, model) = tiny_setup();
        let qm = QuantizedModel::from_model(&model);
        let good = ds.train[0].od;
        let mut bad = good;
        bad.origin = deepod_roadnet::Point::new(-1e7, -1e7);
        let out = qm.estimate_batch(
            &ctx,
            &ds.net,
            &[PredictRequest::Raw(good), PredictRequest::Raw(bad)],
            1,
        );
        assert!(out[0].is_ok());
        assert_eq!(out[1], Err(ModelError::UnmatchedEndpoints));
    }

    #[test]
    fn artifact_round_trip_preserves_bits() {
        let (ds, ctx, model) = tiny_setup();
        let qm = QuantizedModel::from_model(&model);
        let dir = std::env::temp_dir().join(format!("deepod-quant-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.int8");
        qm.save_to(&path).expect("artifact writes");
        let loaded = QuantizedModel::load_from(&path).expect("artifact loads");
        let req = [PredictRequest::Raw(ds.train[0].od)];
        let a = qm.estimate_batch(&ctx, &ds.net, &req, 1);
        let b = loaded.estimate_batch(&ctx, &ds.net, &req, 1);
        assert_eq!(
            a[0].as_ref().expect("matched").eta_seconds.to_bits(),
            b[0].as_ref().expect("matched").eta_seconds.to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_rejected() {
        let (_ds, _ctx, model) = tiny_setup();
        let qm = QuantizedModel::from_model(&model);
        let dir = std::env::temp_dir().join(format!("deepod-quant-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("model.int8");
        qm.save_to(&path).expect("artifact writes");
        // Flip a payload byte: the checksum footer must reject the load.
        let mut bytes = std::fs::read(&path).expect("readable");
        bytes[10] ^= 0xff;
        std::fs::write(&path, &bytes).expect("writable");
        assert!(matches!(
            QuantizedModel::load_from(&path),
            Err(ModelError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_is_smaller_than_f32_mlps() {
        let (_ds, _ctx, model) = tiny_setup();
        let qm = QuantizedModel::from_model(&model);
        assert!(qm.size_bytes() > 0);
        assert!(qm.size_bytes() < model.size_bytes());
    }
}

//! The OD encoding module M_O of §4.6: the origin and destination road
//! segments are embedded, the departure time slot is embedded (plus its
//! remainder), external features become `ocode`, and everything is
//! concatenated with the position ratios into Z⁹ and encoded by MLP1 into
//! `code` (Eq. 19).

use crate::ablation::{EmbeddingInit, Variant};
use crate::external_encoder::ExternalFeaturesEncoder;
use crate::features::EncodedOd;
use deepod_nn::layers::{Embedding, Mlp2};
use deepod_nn::{Graph, ParamStore, VarId};
use deepod_tensor::Tensor;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The OD encoder's parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OdEncoder {
    /// MLP1: Z⁹ → d⁷_m → d⁸_m (= d⁴_m) producing `code`.
    pub mlp: Mlp2,
    /// Structural variant (N-other drops the external part).
    variant: Variant,
    /// Embedding-init policy (T-stamp feeds raw timestamps instead of slot
    /// embeddings).
    init: EmbeddingInit,
}

impl OdEncoder {
    /// Registers MLP1. The input width depends on the variant and init:
    /// `2·d_s + d_t + d⁶_m + 3` in the full model (Eq. 19);
    /// without external features the `d⁶_m` part disappears (N-other);
    /// T-stamp replaces the `d_t` slot embedding by one scalar.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        ds: usize,
        dt_dim: usize,
        d6m: usize,
        d7m: usize,
        d8m: usize,
        variant: Variant,
        init: EmbeddingInit,
        rng: &mut StdRng,
    ) -> Self {
        let time_dim = if init.embeds_time() { dt_dim } else { 1 };
        let ext_dim = if variant.uses_external() { d6m } else { 0 };
        let in_dim = 2 * ds + time_dim + ext_dim + 3;
        OdEncoder {
            mlp: Mlp2::new(store, "od.mlp1", in_dim, d7m, d8m, rng),
            variant,
            init,
        }
    }

    /// Output width of `code` (= d⁸_m = d⁴_m).
    pub fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }

    /// Whether Z⁹ includes the external-features `ocode` (false for the
    /// N-other ablation). Exposed for quantized-model export.
    pub fn uses_external(&self) -> bool {
        self.variant.uses_external()
    }

    /// Whether the temporal part is a slot embedding (true) or the raw
    /// timestamp scalar of the T-stamp ablation (false).
    pub fn embeds_time(&self) -> bool {
        self.init.embeds_time()
    }

    /// Encodes an OD input into `code`.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's module signature
    pub fn encode(
        &mut self,
        g: &mut Graph,
        store: &ParamStore,
        road_emb: &Embedding,
        slot_emb: &Embedding,
        external: &mut ExternalFeaturesEncoder,
        od: &EncodedOd,
        training: bool,
    ) -> VarId {
        // D^s_1, D^s_n: origin/destination segment embeddings.
        let e1 = road_emb.lookup(g, store, od.origin_edge);
        let en = road_emb.lookup(g, store, od.dest_edge);

        // Temporal part: slot embedding + remainder, or raw timestamp for
        // the T-stamp ablation.
        let time_part = if self.init.embeds_time() {
            slot_emb.lookup(g, store, od.depart_node)
        } else {
            g.input(Tensor::from_vec(vec![od.depart_raw], &[1]))
        };

        // Scalars: r[1], r[-1], t_r.
        let scalars = g.input(Tensor::from_vec(
            vec![od.r_start, od.r_end, od.depart_rem],
            &[3],
        ));

        let z9 = if self.variant.uses_external() {
            let ocode = external.encode(g, store, &od.weather_onehot, &od.speed_matrix, training);
            g.concat(&[e1, en, time_part, ocode, scalars])
        } else {
            g.concat(&[e1, en, time_part, scalars])
        };
        self.mlp.forward(g, store, z9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepod_tensor::rng_from_seed;
    use deepod_traffic::NUM_WEATHER_TYPES;
    use std::sync::Arc;

    fn setup(
        variant: Variant,
        init: EmbeddingInit,
    ) -> (
        ParamStore,
        OdEncoder,
        Embedding,
        Embedding,
        ExternalFeaturesEncoder,
    ) {
        let mut rng = rng_from_seed(4);
        let mut store = ParamStore::new();
        let road = Embedding::new(&mut store, "roads", 30, 6, &mut rng);
        let slot = Embedding::new(&mut store, "slots", 50, 8, &mut rng);
        let ext = ExternalFeaturesEncoder::new(&mut store, 4, 16, 10, &mut rng);
        let od = OdEncoder::new(&mut store, 6, 8, 10, 24, 12, variant, init, &mut rng);
        (store, od, road, slot, ext)
    }

    fn sample_od() -> EncodedOd {
        let mut onehot = vec![0.0; NUM_WEATHER_TYPES];
        onehot[2] = 1.0;
        EncodedOd {
            origin_edge: 3,
            dest_edge: 17,
            r_start: 0.25,
            r_end: 0.5,
            depart_node: 42,
            depart_rem: 0.3,
            depart_raw: 55.5,
            weather_onehot: onehot,
            speed_matrix: Arc::new(Tensor::full(&[1, 6, 6], 0.9)),
        }
    }

    #[test]
    fn code_shape_full_and_ablations() {
        for (v, i) in [
            (Variant::Full, EmbeddingInit::Node2Vec),
            (Variant::NoExternal, EmbeddingInit::Node2Vec),
            (Variant::Full, EmbeddingInit::TimeStamp),
        ] {
            let (store, mut enc, road, slot, mut ext) = setup(v, i);
            let mut g = Graph::new();
            let code = enc.encode(&mut g, &store, &road, &slot, &mut ext, &sample_od(), false);
            assert_eq!(g.value(code).dims(), &[12], "{v:?}/{i:?}");
            assert!(!g.value(code).has_non_finite());
        }
    }

    #[test]
    fn different_od_different_code() {
        let (store, mut enc, road, slot, mut ext) = setup(Variant::Full, EmbeddingInit::Node2Vec);
        let mut g = Graph::new();
        let a = enc.encode(&mut g, &store, &road, &slot, &mut ext, &sample_od(), false);
        let mut other = sample_od();
        other.origin_edge = 9;
        other.depart_node = 7;
        let b = enc.encode(&mut g, &store, &road, &slot, &mut ext, &other, false);
        assert_ne!(g.value(a).as_slice(), g.value(b).as_slice());
    }

    #[test]
    fn n_other_ignores_external_features() {
        let (store, mut enc, road, slot, mut ext) =
            setup(Variant::NoExternal, EmbeddingInit::Node2Vec);
        let mut g = Graph::new();
        let a = enc.encode(&mut g, &store, &road, &slot, &mut ext, &sample_od(), false);
        let mut stormy = sample_od();
        stormy.weather_onehot = {
            let mut v = vec![0.0; NUM_WEATHER_TYPES];
            v[11] = 1.0;
            v
        };
        stormy.speed_matrix = Arc::new(Tensor::full(&[1, 6, 6], 0.1));
        let b = enc.encode(&mut g, &store, &road, &slot, &mut ext, &stormy, false);
        assert_eq!(g.value(a).as_slice(), g.value(b).as_slice());
    }

    #[test]
    fn tstamp_ignores_slot_embedding_but_uses_raw_time() {
        let (store, mut enc, road, slot, mut ext) = setup(Variant::Full, EmbeddingInit::TimeStamp);
        let mut g = Graph::new();
        let a = enc.encode(&mut g, &store, &road, &slot, &mut ext, &sample_od(), false);
        let mut later = sample_od();
        later.depart_raw = 1000.0;
        later.depart_node = 13; // must have no effect
        let b = enc.encode(&mut g, &store, &road, &slot, &mut ext, &later, false);
        let (va, vb) = (g.value(a).as_slice(), g.value(b).as_slice());
        assert!(va.iter().zip(vb).any(|(x, y)| (x - y).abs() > 1e-6));

        let mut same_time_diff_node = sample_od();
        same_time_diff_node.depart_node = 13;
        let c = enc.encode(
            &mut g,
            &store,
            &road,
            &slot,
            &mut ext,
            &same_time_diff_node,
            false,
        );
        assert_eq!(g.value(a).as_slice(), g.value(c).as_slice());
    }

    #[test]
    fn gradients_flow_to_embeddings() {
        let (store, mut enc, road, slot, mut ext) = setup(Variant::Full, EmbeddingInit::Node2Vec);
        let mut g = Graph::new();
        let code = enc.encode(&mut g, &store, &road, &slot, &mut ext, &sample_od(), true);
        let s = g.sum_all(code);
        let grads = g.backward(s);
        assert!(grads.get(road.table).is_some());
        assert!(grads.get(slot.table).is_some());
        assert!(grads.get(enc.mlp.l1.w).is_some());
        assert!(grads.get(ext.k1).is_some());
    }
}
